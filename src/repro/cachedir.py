"""Shared cache-directory helpers for the on-disk stores.

Both persistent stores — the analysis-bundle :class:`~repro.experiments.store.ResultStore`
and the access-trace :class:`~repro.trace.store.TraceStore` — live under one
cache root and obey the same environment controls.  The helpers are factored
out here (below both stores in the layer diagram) so the trace layer does not
depend on the experiments layer.

* ``REPRO_CACHE_DIR`` overrides the root (default ``~/.cache/repro``).
* ``REPRO_DISABLE_DISK_CACHE=1`` disables all on-disk persistence.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk caches when set to a truthy value.
CACHE_DISABLE_ENV = "REPRO_DISABLE_DISK_CACHE"


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def disk_cache_disabled() -> bool:
    """True when ``REPRO_DISABLE_DISK_CACHE`` is set to a truthy value."""
    return os.environ.get(CACHE_DISABLE_ENV, "").lower() in ("1", "true",
                                                             "yes", "on")


def params_slug(params: Dict[str, Any]) -> str:
    """A readable, filesystem-safe, collision-resistant name for ``params``.

    The digest covers the canonical repr of every parameter; the readable
    prefix keeps ``ls`` on the cache directory informative.
    """
    canonical = "&".join(f"{k}={params[k]!r}" for k in sorted(params))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    readable = "-".join(
        f"{k}={params[k]}" for k in sorted(params)
        if isinstance(params[k], (str, int, bool)))
    readable = "".join(c if c.isalnum() or c in "=.-_" else "_"
                       for c in readable)[:120]
    return f"{readable}-{digest}" if readable else digest
