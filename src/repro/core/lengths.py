"""Temporal-stream length distribution (Figure 4, left).

The paper reports, per application and context, the cumulative distribution
of stream lengths *weighted by their total contribution to temporal streams*:
each stream occurrence contributes its length in misses, so the 50th
percentile of the CDF is the stream length experienced by the median
stream-covered miss.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .streams import StreamAnalysis, StreamOccurrence


@dataclass
class LengthDistribution:
    """Miss-weighted cumulative distribution of temporal-stream lengths."""

    #: Sorted distinct stream lengths.
    lengths: List[int]
    #: Cumulative fraction of stream-covered misses at or below each length.
    cumulative: List[float]
    #: Total number of stream-covered misses the distribution is built from.
    total_weight: int

    def percentile(self, q: float) -> int:
        """Smallest stream length at which the CDF reaches fraction ``q``."""
        if not self.lengths:
            return 0
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        idx = bisect.bisect_left(self.cumulative, q)
        idx = min(idx, len(self.lengths) - 1)
        return self.lengths[idx]

    @property
    def median(self) -> int:
        """Median stream length, miss-weighted (Section 4.4)."""
        return self.percentile(0.5)

    def cdf_at(self, length: int) -> float:
        """Cumulative fraction of stream misses in streams of length <= ``length``."""
        if not self.lengths:
            return 0.0
        idx = bisect.bisect_right(self.lengths, length) - 1
        if idx < 0:
            return 0.0
        return self.cumulative[idx]

    def series(self, points: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256,
                                              512, 1024, 4096, 10000)) -> List[Tuple[int, float]]:
        """CDF sampled at fixed lengths (for plotting / table output)."""
        return [(p, self.cdf_at(p)) for p in points]


def length_distribution(occurrences: Iterable[StreamOccurrence]) -> LengthDistribution:
    """Build the miss-weighted length CDF from top-level stream occurrences."""
    weight_by_length: Dict[int, int] = {}
    for occ in occurrences:
        weight_by_length[occ.length] = weight_by_length.get(occ.length, 0) + occ.length
    if not weight_by_length:
        return LengthDistribution(lengths=[], cumulative=[], total_weight=0)
    lengths = sorted(weight_by_length)
    total = sum(weight_by_length.values())
    cumulative: List[float] = []
    running = 0
    for length in lengths:
        running += weight_by_length[length]
        cumulative.append(running / total)
    return LengthDistribution(lengths=lengths, cumulative=cumulative,
                              total_weight=total)


def length_distribution_from_analysis(analysis: StreamAnalysis) -> LengthDistribution:
    """Convenience wrapper taking a :class:`StreamAnalysis`."""
    return length_distribution(analysis.occurrences)
