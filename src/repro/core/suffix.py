"""Alternative temporal-stream finder based on greedy longest-previous-match.

The paper uses SEQUITUR to locate repetitive subsequences; this module
provides an independent detector used for cross-validation (ablation A2 in
DESIGN.md) and as a model of how an actual temporal-streaming prefetcher
locates streams: keep an index of previously-seen digrams, and on each miss
greedily extend a match against the most recent earlier occurrence.

The two detectors need not agree exactly — SEQUITUR builds maximal shared
structure while the greedy matcher is online — but the repetitive fraction
they report should be close, which the ablation benchmark checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple


@dataclass
class GreedyStreamMatch:
    """One recurring stream occurrence found by the greedy matcher."""

    start: int
    length: int
    #: Start position of the earlier occurrence the match was made against.
    earlier_start: int


@dataclass
class GreedyStreamAnalysis:
    """Result of the greedy stream detection."""

    #: Per-position flag: True if the position is part of a recurring match
    #: of length >= ``min_length``.
    recurring: List[bool]
    matches: List[GreedyStreamMatch]

    @property
    def fraction_recurring(self) -> float:
        if not self.recurring:
            return 0.0
        return sum(self.recurring) / len(self.recurring)


def find_streams_greedy(sequence: Sequence[Hashable],
                        min_length: int = 2) -> GreedyStreamAnalysis:
    """Find recurring stream occurrences by greedy longest-previous-match.

    Walks the sequence once.  At each position, if the digram starting there
    has occurred before, the match is extended greedily against the most
    recent prior occurrence; if the match reaches ``min_length`` the covered
    positions are marked recurring and the walk skips past the match.
    """
    if min_length < 2:
        raise ValueError("min_length must be >= 2")
    n = len(sequence)
    recurring = [False] * n
    matches: List[GreedyStreamMatch] = []
    #: digram -> most recent position at which it started
    last_seen: Dict[Tuple[Hashable, Hashable], int] = {}
    i = 0
    while i < n - 1:
        digram = (sequence[i], sequence[i + 1])
        earlier = last_seen.get(digram)
        if earlier is not None and earlier + 1 < i:
            # Extend the match as far as both copies agree.
            length = 2
            while (i + length < n and earlier + length < i
                   and sequence[earlier + length] == sequence[i + length]):
                length += 1
            if length >= min_length:
                for p in range(i, i + length):
                    recurring[p] = True
                matches.append(GreedyStreamMatch(start=i, length=length,
                                                 earlier_start=earlier))
                # Index the digrams inside the match before skipping them.
                for p in range(i, min(i + length, n - 1)):
                    last_seen[(sequence[p], sequence[p + 1])] = p
                i += length
                continue
        # Remember this digram's position, but never overwrite an earlier
        # position with an immediately-adjacent one: that would make runs of
        # identical symbols permanently self-overlapping and unmatched.
        if earlier is None or earlier + 1 < i:
            last_seen[digram] = i
        i += 1
    return GreedyStreamAnalysis(recurring=recurring, matches=matches)
