"""Core analysis: SEQUITUR, temporal streams, strides, reuse, module origins.

This package is the paper's primary contribution: a hardware-independent,
information-theoretic characterization of temporal streams in miss traces.

Public API
----------
* :func:`~repro.core.sequitur.build_grammar`, :class:`~repro.core.sequitur.Grammar`
* :func:`~repro.core.streams.analyze_trace`, :func:`~repro.core.streams.analyze_sequence`,
  :class:`~repro.core.streams.StreamAnalysis`, :class:`~repro.core.streams.StreamLabel`
* :func:`~repro.core.lengths.length_distribution`,
  :func:`~repro.core.reuse.reuse_distance_distribution`
* :class:`~repro.core.stride.StrideDetector`,
  :func:`~repro.core.stride.stride_stream_breakdown`
* :func:`~repro.core.modules.module_breakdown`, category registry in
  :mod:`repro.core.modules`
* :func:`~repro.core.classification.classify_offchip`,
  :func:`~repro.core.classification.classify_intrachip`
* :func:`~repro.core.suffix.find_streams_greedy` (cross-validation)
* text rendering helpers in :mod:`repro.core.report`
"""

from .classification import (ClassificationBreakdown, classify_intrachip,
                             classify_offchip)
from .lengths import (LengthDistribution, length_distribution,
                      length_distribution_from_analysis)
from .modules import (CATEGORIES, Category, CategoryRow, ModuleBreakdown,
                      UNCATEGORIZED, category_names, get_category,
                      is_known_category, module_breakdown)
from .reuse import (DEFAULT_BIN_EDGES, ReuseDistanceDistribution,
                    reuse_distance_distribution, reuse_distances)
from .sequitur import Grammar, Rule, build_grammar
from .streams import (StreamAnalysis, StreamLabel, StreamOccurrence,
                      analyze_sequence, analyze_trace)
from .stride import (StrideDetector, StrideStreamBreakdown, stride_stream_breakdown,
                     strided_flags)
from .suffix import GreedyStreamAnalysis, GreedyStreamMatch, find_streams_greedy

__all__ = [
    "CATEGORIES", "Category", "CategoryRow", "ClassificationBreakdown",
    "DEFAULT_BIN_EDGES", "Grammar", "GreedyStreamAnalysis",
    "GreedyStreamMatch", "LengthDistribution", "ModuleBreakdown", "Rule",
    "StreamAnalysis", "StreamLabel", "StreamOccurrence", "StrideDetector",
    "StrideStreamBreakdown", "UNCATEGORIZED", "analyze_sequence",
    "analyze_trace", "build_grammar", "category_names", "classify_intrachip",
    "classify_offchip", "find_streams_greedy", "get_category",
    "is_known_category", "length_distribution",
    "length_distribution_from_analysis", "module_breakdown",
    "reuse_distance_distribution", "reuse_distances",
    "stride_stream_breakdown", "strided_flags",
]
