"""Plain-text rendering of the paper's figures and tables.

These helpers turn the analysis dataclasses into aligned text tables so the
benchmark harness and examples can print output directly comparable to the
paper's figures and tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..mem.records import IntraChipClass, MissClass
from .classification import ClassificationBreakdown
from .lengths import LengthDistribution
from .modules import CATEGORIES, ModuleBreakdown, UNCATEGORIZED
from .reuse import ReuseDistanceDistribution
from .stride import StrideStreamBreakdown
from .streams import StreamAnalysis


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def pct(value: float) -> str:
    """Format a fraction as a percentage string like the paper's tables."""
    return f"{100.0 * value:.1f}%"


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
_OFFCHIP_LABELS = {
    int(MissClass.COMPULSORY): "Compulsory",
    int(MissClass.IO_COHERENCE): "I/O Coherence",
    int(MissClass.REPLACEMENT): "Replacement",
    int(MissClass.COHERENCE): "Coherence",
}

_INTRACHIP_LABELS = {
    int(IntraChipClass.OFF_CHIP): "Off-chip",
    int(IntraChipClass.REPLACEMENT_L2): "Replacement:L2",
    int(IntraChipClass.COHERENCE_L2): "Coherence:L2",
    int(IntraChipClass.COHERENCE_PEER_L1): "Coherence:Peer-L1",
}


def format_offchip_classification(name: str,
                                  breakdown: ClassificationBreakdown) -> str:
    """One Figure 1 (left) bar as a text table."""
    rows = [[label, f"{breakdown.mpki(cls):.3f}", pct(breakdown.fraction(cls))]
            for cls, label in _OFFCHIP_LABELS.items()]
    rows.append(["Total", f"{breakdown.total_mpki:.3f}", pct(1.0 if breakdown.total_misses else 0.0)])
    return (f"{name}\n"
            + _format_table(["Class", "Misses/1000 instr", "Share"], rows))


def format_intrachip_classification(name: str,
                                     breakdown: ClassificationBreakdown) -> str:
    """One Figure 1 (right) bar as a text table."""
    rows = [[label, f"{breakdown.mpki(cls):.3f}", pct(breakdown.fraction(cls))]
            for cls, label in _INTRACHIP_LABELS.items()]
    rows.append(["Total", f"{breakdown.total_mpki:.3f}", pct(1.0 if breakdown.total_misses else 0.0)])
    return (f"{name}\n"
            + _format_table(["Class", "Misses/1000 instr", "Share"], rows))


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #
def format_stream_fractions(rows: Mapping[str, StreamAnalysis]) -> str:
    """Figure 2: fraction of misses in temporal streams, one row per bar."""
    table = []
    for name, analysis in rows.items():
        table.append([name,
                      pct(analysis.fraction_non_repetitive),
                      pct(analysis.fraction_new),
                      pct(analysis.fraction_recurring),
                      pct(analysis.fraction_in_streams)])
    return _format_table(
        ["Workload/context", "Non-repetitive", "New stream", "Recurring",
         "In streams"], table)


# --------------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------------- #
def format_stride_breakdown(rows: Mapping[str, StrideStreamBreakdown]) -> str:
    table = []
    for name, b in rows.items():
        table.append([name,
                      pct(b.repetitive_strided), pct(b.repetitive_non_strided),
                      pct(b.non_repetitive_strided),
                      pct(b.non_repetitive_non_strided)])
    return _format_table(
        ["Workload/context", "Rep+Strided", "Rep+Non-strided",
         "NonRep+Strided", "NonRep+Non-strided"], table)


# --------------------------------------------------------------------------- #
# Figure 4
# --------------------------------------------------------------------------- #
def format_length_cdf(name: str, dist: LengthDistribution,
                      points: Sequence[int] = (2, 4, 8, 16, 64, 256, 1024, 10000),
                      ) -> str:
    rows = [[str(p), pct(dist.cdf_at(p))] for p in points]
    rows.append(["median", str(dist.median)])
    return f"{name}\n" + _format_table(["Stream length <=", "Cum. % stream misses"],
                                       rows)


def format_reuse_pdf(name: str, dist: ReuseDistanceDistribution) -> str:
    rows = [[f"10^{i}" if edge >= 10 else "1", pct(frac)]
            for i, (edge, frac) in enumerate(dist.bins())]
    return f"{name}\n" + _format_table(["Distance bin (>=)", "% misses in streams"],
                                       rows)


# --------------------------------------------------------------------------- #
# Tables 3-5
# --------------------------------------------------------------------------- #
def format_module_table(title: str,
                        contexts: Mapping[str, ModuleBreakdown],
                        scope: str) -> str:
    """Render a Table 3/4/5-style stream-origins table.

    ``contexts`` maps context names (multi-chip / single-chip / intra-chip)
    to breakdowns; ``scope`` selects which application-specific categories to
    include ("web" or "db2").
    """
    wanted = [c.name for c in CATEGORIES
              if c.scope in ("cross", "other", scope)]
    headers = ["Category"]
    for context in contexts:
        headers.extend([f"{context} %misses", f"{context} %in streams"])
    rows: List[List[str]] = []
    for category in wanted:
        row = [category]
        any_nonzero = False
        for breakdown in contexts.values():
            r = breakdown.row(category)
            row.extend([pct(r.pct_misses), pct(r.pct_in_streams)])
            if r.pct_misses > 0:
                any_nonzero = True
        if any_nonzero or category == UNCATEGORIZED:
            rows.append(row)
    overall = ["Overall % in streams"]
    for breakdown in contexts.values():
        overall.extend(["", pct(breakdown.overall_in_streams)])
    rows.append(overall)
    return f"{title}\n" + _format_table(headers, rows)
