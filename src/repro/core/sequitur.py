"""SEQUITUR hierarchical grammar compression (Nevill-Manning & Witten, 1997).

The paper identifies temporal streams by running SEQUITUR over the
miss-address trace (Section 3): the grammar's production rules correspond to
distinct repetitive subsequences.  SEQUITUR builds the grammar online, one
symbol at a time, while maintaining two invariants:

* **digram uniqueness** — no pair of adjacent symbols appears more than once
  in the grammar; a repeated digram is replaced by a non-terminal.
* **rule utility** — every rule (except the root) is referenced at least
  twice; a rule whose reference count drops to one is inlined and removed.

This is the classic doubly-linked-list implementation with a digram index
(following the reference C++ implementation structure), running in time
linear in the input length.

Terminals are arbitrary hashable Python objects (the analyses pass cache
block addresses, i.e. integers).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple


class _Symbol:
    """A node in a rule's doubly-linked symbol list.

    A symbol is either a *terminal* (``value`` set, ``rule`` None), a
    *non-terminal* reference to a :class:`Rule`, or a rule's guard sentinel
    (both unset, ``owner`` set to the guarded rule).
    """

    __slots__ = ("value", "rule", "owner", "prev", "next")

    def __init__(self, value: Optional[Hashable] = None,
                 rule: Optional["Rule"] = None,
                 owner: Optional["Rule"] = None) -> None:
        self.value = value
        self.rule = rule
        self.owner = owner
        self.prev: Optional["_Symbol"] = None
        self.next: Optional["_Symbol"] = None
        if rule is not None:
            rule.refcount += 1

    @property
    def is_guard(self) -> bool:
        return self.value is None and self.rule is None

    @property
    def is_nonterminal(self) -> bool:
        return self.rule is not None

    def token(self) -> Tuple:
        """Hashable identity of this symbol's content (terminal or rule)."""
        if self.rule is not None:
            return ("R", self.rule.id)
        return ("T", self.value)

    def digram_key(self) -> Optional[Tuple]:
        """Hashable key identifying the digram (self, self.next)."""
        nxt = self.next
        if nxt is None or self.is_guard or nxt.is_guard:
            return None
        return (self.token(), nxt.token())


class Rule:
    """A production rule: a guard sentinel heading a circular symbol list."""

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        self.refcount = 0
        self.guard = _Symbol(owner=self)
        self.guard.prev = self.guard
        self.guard.next = self.guard

    @property
    def first(self) -> _Symbol:
        return self.guard.next  # type: ignore[return-value]

    @property
    def last(self) -> _Symbol:
        return self.guard.prev  # type: ignore[return-value]

    def is_empty(self) -> bool:
        return self.guard.next is self.guard

    def symbols(self) -> Iterator[_Symbol]:
        sym = self.guard.next
        while sym is not None and not sym.is_guard:
            yield sym
            sym = sym.next

    def body(self) -> List:
        """The rule body as a list of terminals and :class:`Rule` references."""
        out: List = []
        for sym in self.symbols():
            out.append(sym.rule if sym.rule is not None else sym.value)
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.symbols())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for item in self.body():
            parts.append(f"R{item.id}" if isinstance(item, Rule) else repr(item))
        return f"Rule({self.id}: {' '.join(parts)})"


class Grammar:
    """A SEQUITUR grammar built incrementally with :meth:`append`."""

    def __init__(self) -> None:
        self._next_rule_id = 0
        self.root = self._new_rule()
        #: digram key -> the left symbol of the (unique) indexed occurrence
        self._digrams: Dict[Tuple, _Symbol] = {}
        self._length = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _new_rule(self) -> Rule:
        rule = Rule(self._next_rule_id)
        self._next_rule_id += 1
        return rule

    def append(self, value: Hashable) -> None:
        """Append one terminal to the input sequence."""
        sym = _Symbol(value=value, owner=self.root)
        self._link(self.root.last, sym)
        self._link(sym, self.root.guard)
        self._length += 1
        prev = sym.prev
        if prev is not None and not prev.is_guard:
            self._check(prev)

    def extend(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        """Number of terminals appended so far."""
        return self._length

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    # The default pickle protocol would recurse through the doubly-linked
    # symbol lists and overflow the interpreter stack on any non-trivial
    # grammar.  Serialise iteratively as (rule id -> token list) instead and
    # rebuild the linked structure, refcounts, and digram index on load, so
    # grammars can cross process boundaries (parallel suite runner) and live
    # in the on-disk result store.

    def __getstate__(self) -> Dict:
        # Record which occurrence each digram-index entry points at as
        # (rule id, position): for overlapping runs of identical symbols the
        # indexed occurrence is build-history-dependent and cannot be
        # recovered from the rule bodies alone.
        indexed = []
        for rule in self.rules():
            for position, sym in enumerate(rule.symbols()):
                key = sym.digram_key()
                if key is not None and self._digrams.get(key) is sym:
                    indexed.append((rule.id, position))
        return {
            "next_rule_id": self._next_rule_id,
            "length": self._length,
            "root": self.root.id,
            "rules": [(rule.id, [sym.token() for sym in rule.symbols()])
                      for rule in self.rules()],
            "indexed": indexed,
        }

    def __setstate__(self, state: Dict) -> None:
        self._next_rule_id = state["next_rule_id"]
        self._length = state["length"]
        self._digrams = {}
        by_id: Dict[int, Rule] = {rid: Rule(rid) for rid, _ in state["rules"]}
        self.root = by_id[state["root"]]
        for rid, tokens in state["rules"]:
            rule = by_id[rid]
            for kind, payload in tokens:
                if kind == "R":
                    sym = _Symbol(rule=by_id[payload], owner=rule)
                else:
                    sym = _Symbol(value=payload, owner=rule)
                self._link(rule.guard.prev, sym)
                self._link(sym, rule.guard)
        # Restore the digram index to exactly the recorded occurrences, so
        # appending to an unpickled grammar behaves identically to appending
        # to the original.
        symbols_at = {
            rid: list(by_id[rid].symbols()) for rid, _ in state["rules"]}
        for rid, position in state["indexed"]:
            sym = symbols_at[rid][position]
            self._digrams[sym.digram_key()] = sym

    # ------------------------------------------------------------------ #
    # Linked-list and index primitives
    # ------------------------------------------------------------------ #
    @staticmethod
    def _link(left: _Symbol, right: _Symbol) -> None:
        left.next = right
        right.prev = left

    def _index(self, sym: _Symbol) -> None:
        key = sym.digram_key()
        if key is not None:
            self._digrams[key] = sym

    def _deindex(self, sym: _Symbol) -> None:
        key = sym.digram_key()
        if key is not None and self._digrams.get(key) is sym:
            del self._digrams[key]

    def _delete_symbol(self, sym: _Symbol) -> None:
        """Unlink ``sym`` from its list and clean up index/refcounts."""
        assert sym.prev is not None and sym.next is not None
        if not sym.prev.is_guard:
            self._deindex(sym.prev)
        self._deindex(sym)
        self._link(sym.prev, sym.next)
        if sym.rule is not None:
            sym.rule.refcount -= 1

    # ------------------------------------------------------------------ #
    # Invariant enforcement
    # ------------------------------------------------------------------ #
    def _check(self, left: _Symbol) -> bool:
        """Enforce digram uniqueness for the digram starting at ``left``.

        Returns True if the digram matched an existing one and a substitution
        took place (in which case ``left`` may no longer be linked).
        """
        key = left.digram_key()
        if key is None:
            return False
        existing = self._digrams.get(key)
        if existing is None:
            self._digrams[key] = left
            return False
        if existing is left:
            return False
        if existing.next is left or left.next is existing:
            # Overlapping occurrence (e.g. "aaa"): leave the index alone.
            return False
        self._match(left, existing)
        return True

    def _match(self, new_sym: _Symbol, existing: _Symbol) -> None:
        """Handle a repeated digram: reuse an existing rule or create one."""
        existing_rule = existing.owner
        assert existing_rule is not None
        if (existing_rule is not self.root
                and existing.prev is existing_rule.guard
                and existing.next is not None
                and existing.next.next is existing_rule.guard):
            # The matching digram is exactly a rule body: reuse that rule.
            rule = existing_rule
            self._substitute(new_sym, rule)
        else:
            rule = self._new_rule()
            first = _Symbol(value=new_sym.value, rule=new_sym.rule, owner=rule)
            assert new_sym.next is not None
            second = _Symbol(value=new_sym.next.value, rule=new_sym.next.rule,
                             owner=rule)
            self._link(rule.guard, first)
            self._link(first, second)
            self._link(second, rule.guard)
            # Replace both occurrences with references to the new rule.
            # Substitute the *existing* occurrence first (canonical order).
            self._substitute(existing, rule)
            self._substitute(new_sym, rule)
            self._index(first)
        # Rule utility: if the referenced rule's body begins or ends with a
        # non-terminal now used only once, inline it.
        first_body = rule.first
        if first_body.is_nonterminal and first_body.rule is not None \
                and first_body.rule.refcount == 1:
            self._expand(first_body)

    def _substitute(self, left: _Symbol, rule: Rule) -> None:
        """Replace the digram (left, left.next) with a reference to ``rule``."""
        prev = left.prev
        assert prev is not None
        right = left.next
        assert right is not None
        after = right.next
        assert after is not None
        owner = left.owner
        self._delete_symbol(left)
        self._delete_symbol(right)
        ref = _Symbol(rule=rule, owner=owner)
        self._link(prev, ref)
        self._link(ref, after)
        # Check the two digrams created by the substitution.  If the left
        # check performed a substitution, ``ref`` may be gone; skip the right.
        if not prev.is_guard:
            if self._check(prev):
                return
        if ref.next is not None and not ref.next.is_guard:
            self._check(ref)

    def _expand(self, ref: _Symbol) -> None:
        """Inline a rule referenced only once (rule-utility invariant).

        The rule's body symbols are spliced directly in place of ``ref`` so
        interior digram-index entries remain valid.
        """
        rule = ref.rule
        assert rule is not None and rule.refcount == 1
        prev = ref.prev
        nxt = ref.next
        assert prev is not None and nxt is not None
        if not prev.is_guard:
            self._deindex(prev)
        self._deindex(ref)
        first = rule.first
        last = rule.last
        if rule.is_empty():  # pragma: no cover - cannot happen for live rules
            self._link(prev, nxt)
        else:
            self._link(prev, first)
            self._link(last, nxt)
            owner = prev.owner
            sym: Optional[_Symbol] = first
            while sym is not None and sym is not nxt:
                sym.owner = owner
                sym = sym.next
            # Index the digram formed at the right seam.
            self._index(last)
        rule.refcount -= 1
        # Detach the dead rule's guard so accidental reuse is detectable.
        rule.guard.next = rule.guard
        rule.guard.prev = rule.guard

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def rules(self) -> List[Rule]:
        """All live rules reachable from the root (root first)."""
        seen: Dict[int, Rule] = {}
        order: List[Rule] = []

        def visit(rule: Rule) -> None:
            if rule.id in seen:
                return
            seen[rule.id] = rule
            order.append(rule)
            for sym in rule.symbols():
                if sym.rule is not None:
                    visit(sym.rule)

        visit(self.root)
        return order

    def expansion_lengths(self) -> Dict[int, int]:
        """Map rule id -> number of terminals the rule expands to."""
        lengths: Dict[int, int] = {}

        def length_of(rule: Rule) -> int:
            if rule.id in lengths:
                return lengths[rule.id]
            total = 0
            for sym in rule.symbols():
                total += length_of(sym.rule) if sym.rule is not None else 1
            lengths[rule.id] = total
            return total

        for rule in self.rules():
            length_of(rule)
        return lengths

    def expand(self) -> List[Hashable]:
        """Reconstruct the original input sequence (round-trip check)."""
        out: List[Hashable] = []
        iters: List[Iterator[_Symbol]] = [self.root.symbols()]
        while iters:
            try:
                sym = next(iters[-1])
            except StopIteration:
                iters.pop()
                continue
            if sym.rule is not None:
                iters.append(sym.rule.symbols())
            else:
                out.append(sym.value)
        return out

    def grammar_size(self) -> int:
        """Total number of symbols across all rule bodies (compression metric)."""
        return sum(len(rule) for rule in self.rules())

    def check_invariants(self, strict_digrams: bool = True) -> None:
        """Verify rule utility (and optionally digram uniqueness).

        Raises ``AssertionError`` on violation.  ``strict_digrams`` may be
        disabled for very long adversarial inputs where transient duplicate
        digrams at rule seams are tolerated.
        """
        live = self.rules()
        # Recompute reference counts from the live grammar.
        counted: Dict[int, int] = {rule.id: 0 for rule in live}
        for rule in live:
            for sym in rule.symbols():
                if sym.rule is not None:
                    counted[sym.rule.id] = counted.get(sym.rule.id, 0) + 1
        for rule in live:
            if rule is self.root:
                continue
            if counted.get(rule.id, 0) < 2:
                raise AssertionError(
                    f"rule {rule.id} referenced {counted.get(rule.id, 0)} "
                    "(<2) times in the live grammar")
            if len(rule) < 2:
                raise AssertionError(f"rule {rule.id} has a body of < 2 symbols")
        if strict_digrams:
            seen: Dict[Tuple, Tuple[int, int]] = {}
            for rule in live:
                for position, sym in enumerate(rule.symbols()):
                    key = sym.digram_key()
                    if key is None:
                        continue
                    where = (rule.id, position)
                    if key in seen:
                        prev_rule, prev_pos = seen[key]
                        overlapping = (key[0] == key[1]
                                       and prev_rule == rule.id
                                       and abs(prev_pos - position) == 1)
                        if not overlapping:
                            raise AssertionError(
                                f"digram {key} appears at {seen[key]} and {where}")
                    seen[key] = where


def build_grammar(sequence: Iterable[Hashable]) -> Grammar:
    """Convenience constructor: build a grammar over ``sequence``."""
    grammar = Grammar()
    grammar.extend(sequence)
    return grammar
