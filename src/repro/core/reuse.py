"""Temporal-stream reuse-distance analysis (Figure 4, right).

The reuse distance of a stream occurrence is the number of misses between it
and the previous occurrence of the same stream.  Because the two occurrences
may happen on different processors, the paper counts the intervening misses
*on the first processor* — the processor that observed the earlier
occurrence — since that is the number of entries a per-processor miss log
would need to retain to find the stream again (Section 4.5).

The result is a probability density over logarithmically-spaced distance
bins, weighted by the number of stream misses at each distance, and
normalised by the total number of misses in the trace (so the heights read
as "% of misses in streams", matching the paper's vertical axis).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem.trace import MissTrace
from .streams import StreamAnalysis, StreamOccurrence

#: Default logarithmic bin edges: [1, 10), [10, 100), ... up to 10^7, matching
#: the horizontal axis of Figure 4 (right).  Distances beyond the last edge
#: are truncated into the final bin, as in the paper.
DEFAULT_BIN_EDGES: Tuple[int, ...] = tuple(10 ** k for k in range(0, 8))


@dataclass
class ReuseDistanceDistribution:
    """Histogram of stream reuse distances over logarithmic bins."""

    #: Lower edges of each bin (the bin spans [edge[i], edge[i+1])).
    bin_edges: List[int]
    #: Fraction of all trace misses falling in recurring streams whose reuse
    #: distance lands in each bin.
    fractions: List[float]
    #: Raw miss weight per bin.
    weights: List[int]
    #: Total misses in the underlying trace (normalisation denominator).
    total_misses: int

    def bins(self) -> List[Tuple[int, float]]:
        return list(zip(self.bin_edges, self.fractions))

    @property
    def total_fraction(self) -> float:
        """Total fraction of misses accounted for (recurring stream misses)."""
        return sum(self.fractions)

    def mass_below(self, distance: int) -> float:
        """Fraction of misses in streams with reuse distance < ``distance``."""
        total = 0.0
        for edge, frac in zip(self.bin_edges, self.fractions):
            if edge < distance:
                total += frac
        return total

    def dominant_bin(self) -> Optional[int]:
        """Lower edge of the bin holding the most mass (None if empty)."""
        if not self.weights or sum(self.weights) == 0:
            return None
        return self.bin_edges[self.weights.index(max(self.weights))]


class _PerCpuPositions:
    """Per-CPU sorted miss positions, for intervening-miss counting."""

    def __init__(self, cpus: Sequence[int]) -> None:
        self._positions: Dict[int, List[int]] = {}
        for pos, cpu in enumerate(cpus):
            self._positions.setdefault(cpu, []).append(pos)

    def count_between(self, cpu: int, lo: int, hi: int) -> int:
        """Number of misses by ``cpu`` with position in the open range (lo, hi)."""
        positions = self._positions.get(cpu)
        if not positions:
            return 0
        left = bisect.bisect_right(positions, lo)
        right = bisect.bisect_left(positions, hi)
        return max(0, right - left)


def reuse_distances(analysis: StreamAnalysis,
                    cpus: Optional[Sequence[int]] = None) -> List[Tuple[int, int]]:
    """Compute (distance, weight) samples for recurring stream occurrences.

    ``weight`` is the length of the recurring occurrence (its misses).  When
    ``cpus`` is provided the distance counts only misses by the processor of
    the earlier occurrence; otherwise all intervening misses count.
    """
    per_cpu = _PerCpuPositions(cpus) if cpus is not None else None
    samples: List[Tuple[int, int]] = []
    # Group the *top-level* occurrences by rule to find consecutive pairs.
    by_rule: Dict[int, List[StreamOccurrence]] = {}
    for occ in analysis.occurrences:
        by_rule.setdefault(occ.rule_id, []).append(occ)
    for occs in by_rule.values():
        occs.sort(key=lambda o: o.start)
        for earlier, later in zip(occs, occs[1:]):
            if per_cpu is not None and earlier.cpu >= 0:
                # Count misses strictly after the earlier occurrence's last
                # miss and strictly before the later occurrence begins.
                distance = per_cpu.count_between(earlier.cpu, earlier.end - 1,
                                                 later.start)
            else:
                distance = later.start - earlier.end
            samples.append((max(distance, 1), later.length))
    return samples


def reuse_distance_distribution(analysis: StreamAnalysis,
                                trace: Optional[MissTrace] = None,
                                bin_edges: Sequence[int] = DEFAULT_BIN_EDGES,
                                ) -> ReuseDistanceDistribution:
    """Build the Figure 4 (right) style reuse-distance histogram."""
    cpus = [r.cpu for r in trace] if trace is not None else None
    samples = reuse_distances(analysis, cpus=cpus)
    edges = list(bin_edges)
    weights = [0] * len(edges)
    for distance, weight in samples:
        idx = bisect.bisect_right(edges, distance) - 1
        idx = max(0, min(idx, len(edges) - 1))
        weights[idx] += weight
    total = len(analysis.labels) if analysis.labels else 0
    fractions = [(w / total if total else 0.0) for w in weights]
    return ReuseDistanceDistribution(bin_edges=edges, fractions=fractions,
                                     weights=weights, total_misses=total)
