"""Miss-classification breakdowns (Figure 1).

Thin aggregation helpers over classified miss traces: Figure 1 (left) plots
off-chip read misses per thousand instructions split by the extended 4C
classes for the multi-chip and single-chip systems; Figure 1 (right) plots
intra-chip (L1) misses per thousand instructions split by what satisfied
them (peer L1 / shared L2 / off-chip) and why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..mem.records import IntraChipClass, MissClass
from ..mem.trace import MissTrace


@dataclass
class ClassificationBreakdown:
    """Misses per kilo-instruction split by classification."""

    #: class value -> misses per 1000 instructions
    mpki_by_class: Dict[int, float]
    #: class value -> raw miss count
    counts_by_class: Dict[int, int]
    total_misses: int
    instructions: int

    @property
    def total_mpki(self) -> float:
        return sum(self.mpki_by_class.values())

    def mpki(self, miss_class: int) -> float:
        return self.mpki_by_class.get(int(miss_class), 0.0)

    def fraction(self, miss_class: int) -> float:
        if not self.total_misses:
            return 0.0
        return self.counts_by_class.get(int(miss_class), 0) / self.total_misses


def classify_offchip(trace: MissTrace) -> ClassificationBreakdown:
    """Figure 1 (left) breakdown for an off-chip miss trace."""
    return _breakdown(trace, [int(c) for c in MissClass])


def classify_intrachip(trace: MissTrace) -> ClassificationBreakdown:
    """Figure 1 (right) breakdown for an intra-chip miss trace."""
    return _breakdown(trace, [int(c) for c in IntraChipClass])


def _breakdown(trace: MissTrace, classes: Sequence[int]) -> ClassificationBreakdown:
    counts: Dict[int, int] = {c: 0 for c in classes}
    for record in trace:
        counts[int(record.miss_class)] = counts.get(int(record.miss_class), 0) + 1
    instructions = max(trace.instructions, 1)
    mpki = {c: 1000.0 * n / instructions for c, n in counts.items()}
    return ClassificationBreakdown(mpki_by_class=mpki, counts_by_class=counts,
                                   total_misses=len(trace),
                                   instructions=trace.instructions)
