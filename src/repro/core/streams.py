"""Temporal-stream extraction from a SEQUITUR grammar.

A *temporal stream* is a sequence of two or more misses that occurs at least
twice in the trace (Section 2).  After building the SEQUITUR grammar over the
miss-address sequence, every production rule (other than the root)
corresponds to one distinct temporal stream, and every place the rule's
expansion appears in the trace is one *occurrence* of that stream.

Following Figure 2 of the paper, each miss is labelled as:

* ``NEW_STREAM`` — part of the first occurrence of some temporal stream;
* ``RECURRING_STREAM`` — part of the second or subsequent occurrence;
* ``NON_REPETITIVE`` — not part of any stream.

When a miss is covered by several (nested) stream occurrences, recurring
coverage wins over new coverage, which wins over non-repetitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

from ..mem.trace import MissTrace
from .sequitur import Grammar, Rule, build_grammar


class StreamLabel(enum.IntEnum):
    """Per-miss repetition label (Figure 2 categories)."""

    NON_REPETITIVE = 0
    NEW_STREAM = 1
    RECURRING_STREAM = 2


@dataclass
class StreamOccurrence:
    """One occurrence of a temporal stream (rule) in the miss trace."""

    rule_id: int
    #: Global position (index into the miss trace) of the first miss.
    start: int
    #: Number of misses covered by this occurrence.
    length: int
    #: 0 for the stream's first occurrence, 1 for the second, and so on.
    recurrence: int
    #: CPU of the occurrence's first miss (or -1 when no trace was supplied).
    cpu: int = -1

    @property
    def end(self) -> int:
        """One past the last covered position."""
        return self.start + self.length

    @property
    def is_recurring(self) -> bool:
        return self.recurrence > 0


@dataclass
class StreamAnalysis:
    """Result of temporal-stream extraction over one miss trace."""

    #: Per-position label, aligned with the analysed sequence.
    labels: List[StreamLabel]
    #: Top-level (maximal, non-nested) stream occurrences in trace order.
    occurrences: List[StreamOccurrence]
    #: All occurrences (including nested) grouped by rule id, in trace order.
    occurrences_by_rule: Dict[int, List[StreamOccurrence]]
    #: The underlying grammar (kept for inspection and further analysis).
    grammar: Grammar

    # -- aggregate fractions (Figure 2) --------------------------------- #
    def count(self, label: StreamLabel) -> int:
        return sum(1 for l in self.labels if l is label)

    @property
    def n_misses(self) -> int:
        return len(self.labels)

    def fraction(self, label: StreamLabel) -> float:
        if not self.labels:
            return 0.0
        return self.count(label) / len(self.labels)

    @property
    def fraction_non_repetitive(self) -> float:
        return self.fraction(StreamLabel.NON_REPETITIVE)

    @property
    def fraction_new(self) -> float:
        return self.fraction(StreamLabel.NEW_STREAM)

    @property
    def fraction_recurring(self) -> float:
        return self.fraction(StreamLabel.RECURRING_STREAM)

    @property
    def fraction_in_streams(self) -> float:
        """Fraction of misses that belong to any temporal stream."""
        return self.fraction_new + self.fraction_recurring

    def stream_positions(self) -> List[int]:
        """Positions of misses that are part of a temporal stream."""
        return [i for i, l in enumerate(self.labels)
                if l is not StreamLabel.NON_REPETITIVE]

    def n_distinct_streams(self) -> int:
        """Number of distinct temporal streams (grammar rules)."""
        return len(self.occurrences_by_rule)


def analyze_sequence(sequence: Sequence[Hashable],
                     cpus: Optional[Sequence[int]] = None) -> StreamAnalysis:
    """Run temporal-stream extraction over a raw symbol sequence.

    Parameters
    ----------
    sequence:
        The miss-address sequence (any hashable symbols).
    cpus:
        Optional per-position CPU ids, used to annotate occurrences for the
        reuse-distance analysis.
    """
    grammar = build_grammar(sequence)
    lengths = grammar.expansion_lengths()

    labels = [StreamLabel.NON_REPETITIVE] * len(sequence)
    top_level: List[StreamOccurrence] = []
    by_rule: Dict[int, List[StreamOccurrence]] = {}
    seen_rules: Dict[int, int] = {}  # rule id -> occurrences seen so far

    # Iterative DFS over the root expansion.  Each stack frame is an iterator
    # over a rule body; ``pos`` tracks the current terminal position.
    pos = 0
    stack = [iter(list(grammar.root.symbols()))]
    depth_top = [True]  # whether the current frame is the root frame
    while stack:
        try:
            sym = next(stack[-1])
        except StopIteration:
            stack.pop()
            depth_top.pop()
            continue
        if sym.rule is None:
            pos += 1
            continue
        rule = sym.rule
        length = lengths[rule.id]
        recurrence = seen_rules.get(rule.id, 0)
        seen_rules[rule.id] = recurrence + 1
        occ = StreamOccurrence(rule_id=rule.id, start=pos, length=length,
                               recurrence=recurrence,
                               cpu=(cpus[pos] if cpus is not None and pos < len(cpus)
                                    else -1))
        by_rule.setdefault(rule.id, []).append(occ)
        if depth_top[-1]:
            top_level.append(occ)
        # Label covered positions.  Recurring coverage dominates new coverage.
        target = (StreamLabel.RECURRING_STREAM if recurrence > 0
                  else StreamLabel.NEW_STREAM)
        for p in range(pos, pos + length):
            if target is StreamLabel.RECURRING_STREAM:
                labels[p] = StreamLabel.RECURRING_STREAM
            elif labels[p] is StreamLabel.NON_REPETITIVE:
                labels[p] = StreamLabel.NEW_STREAM
        # Descend into the rule body to find nested occurrences.
        stack.append(iter(list(rule.symbols())))
        depth_top.append(False)

    return StreamAnalysis(labels=labels, occurrences=top_level,
                          occurrences_by_rule=by_rule, grammar=grammar)


def analyze_trace(trace: MissTrace) -> StreamAnalysis:
    """Run temporal-stream extraction over a classified miss trace."""
    addresses = [r.block for r in trace]
    cpus = [r.cpu for r in trace]
    return analyze_sequence(addresses, cpus=cpus)
