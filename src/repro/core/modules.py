"""Code-module categories and the per-category stream-origin breakdown.

Table 2 of the paper defines the miss categories; Tables 3-5 report, for each
application class and system context, each category's share of all misses and
the share of all misses that are both in that category *and* part of a
temporal stream (so that the per-category "% in streams" column sums to the
overall fraction of misses in streams).

Our synthetic workloads attach a :class:`~repro.mem.records.FunctionRef` to
every access, carrying the function name, module, and category; this module
provides the canonical category registry and the breakdown computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mem.trace import MissTrace
from .streams import StreamAnalysis, StreamLabel


@dataclass(frozen=True)
class Category:
    """One miss category from Table 2."""

    name: str
    scope: str  # "cross", "web", "db2", or "other"
    description: str


#: Catch-all category used when a function cannot be attributed.
UNCATEGORIZED = "Uncategorized / Unknown"

#: The canonical category registry reproducing Table 2.
CATEGORIES: Tuple[Category, ...] = (
    Category(UNCATEGORIZED, "other",
             "Functions whose purpose cannot be determined."),
    # -- Cross-application categories ----------------------------------- #
    Category("Bulk memory copies", "cross",
             "Kernel and user memory copy functions such as memcpy, bcopy, "
             "__align_cpy_1, and default_copyout (kernel-to-user copies of "
             "data arriving via DMA)."),
    Category("System call implementation", "cross",
             "Kernel functionality invoked on behalf of user threads within "
             "system call interfaces; dominated by I/O calls such as poll, "
             "open, read, write, and stat."),
    Category("Kernel task scheduler", "cross",
             "Kernel thread prioritisation and dispatching over per-CPU "
             "dispatch queues (disp_getwork, disp_getbest, dispdeq, "
             "disp_ratify)."),
    Category("Kernel MMU & trap handlers", "cross",
             "Functions entered via the trap vector table: MMU miss handlers "
             "filling virtual-to-physical translations, and register-window "
             "spill/fill traps."),
    Category("Kernel synchronization primitives", "cross",
             "Solaris mutex and condition-variable primitives, including the "
             "linked lists of threads waiting on them."),
    Category("Kernel - other activity", "cross",
             "Remaining kernel functionality (memory and resource "
             "management) that stands out in no application."),
    # -- Web-specific categories ----------------------------------------- #
    Category("Kernel STREAMS subsystem", "web",
             "Stream-based I/O: moving message pointers among thread-safe "
             "queues between the web server and CGI processes."),
    Category("Kernel IP packet assembly", "web",
             "Dividing data written to sockets into individual IP packets."),
    Category("Web server worker thread pool", "web",
             "All activity within the web server (Apache or Zeus) itself."),
    Category("CGI - perl input processing", "web",
             "Perl_sv_gets: parsing the requests passed from the web server "
             "to perl."),
    Category("CGI - perl execution engine", "web",
             "Perl_pp_* functions implementing perl's primitive operations."),
    Category("CGI - perl other activity", "web",
             "Other perl functionality that is not readily identifiable."),
    # -- DB2-specific categories ------------------------------------------ #
    Category("Kernel block device driver", "db2",
             "Functions managing I/O to block devices such as disks."),
    Category("DB2 index, page & tuple accesses", "db2",
             "The sqli / sqld / sqlpg modules: index traversal, row access, "
             "and buffer-pool page manipulation."),
    Category("DB2 SQL request control", "db2",
             "The sqlrr / sqlra modules: per-transaction context such as "
             "cursors."),
    Category("DB2 interprocess communication", "db2",
             "Passing data between DB2 server and client processes."),
    Category("DB2 SQL runtime interpreter", "db2",
             "The sqlri module: primitive operations of parsed execution "
             "plans (analogous to perl's Perl_pp_*)."),
    Category("DB2 - other activity", "db2",
             "Other DB2 functionality with small contribution or unknown "
             "purpose."),
)

_BY_NAME: Dict[str, Category] = {c.name: c for c in CATEGORIES}


def category_names(scope: Optional[str] = None) -> List[str]:
    """All category names, optionally filtered by application scope.

    A scope filter (``"web"`` or ``"db2"``) keeps the cross-application and
    catch-all categories and adds the application-specific ones, matching how
    Tables 3-5 are laid out.
    """
    if scope is None:
        return [c.name for c in CATEGORIES]
    return [c.name for c in CATEGORIES
            if c.scope in (scope, "cross", "other")]


def get_category(name: str) -> Category:
    """Look up a category by name (raises ``KeyError`` if unknown)."""
    return _BY_NAME[name]


def is_known_category(name: str) -> bool:
    return name in _BY_NAME


@dataclass
class CategoryRow:
    """One row of a Table 3/4/5-style breakdown."""

    category: str
    #: Fraction of all misses attributed to this category.
    pct_misses: float
    #: Fraction of all misses in this category *and* in a temporal stream.
    pct_in_streams: float
    #: Raw miss count (for debugging / tests).
    n_misses: int = 0

    @property
    def repetition_rate(self) -> float:
        """Fraction of this category's misses that are in streams."""
        if self.pct_misses == 0:
            return 0.0
        return self.pct_in_streams / self.pct_misses


@dataclass
class ModuleBreakdown:
    """Per-category miss and stream shares for one workload x context."""

    rows: Dict[str, CategoryRow]
    overall_in_streams: float
    total_misses: int

    def row(self, category: str) -> CategoryRow:
        return self.rows.get(category,
                             CategoryRow(category=category, pct_misses=0.0,
                                         pct_in_streams=0.0, n_misses=0))

    def top_categories(self, n: int = 5) -> List[CategoryRow]:
        """Categories sorted by miss share, largest first."""
        return sorted(self.rows.values(), key=lambda r: -r.pct_misses)[:n]

    def check_consistency(self, tolerance: float = 1e-9) -> None:
        """Verify that shares sum to 1 and stream shares sum to the overall."""
        total = sum(r.pct_misses for r in self.rows.values())
        stream_total = sum(r.pct_in_streams for r in self.rows.values())
        if self.total_misses and abs(total - 1.0) > 1e-6:
            raise AssertionError(f"category shares sum to {total}, not 1")
        if abs(stream_total - self.overall_in_streams) > max(tolerance, 1e-6):
            raise AssertionError(
                f"per-category stream shares sum to {stream_total}, "
                f"but overall is {self.overall_in_streams}")


def module_breakdown(trace: MissTrace, analysis: StreamAnalysis) -> ModuleBreakdown:
    """Compute the Tables 3-5 style per-category breakdown."""
    if len(trace) != len(analysis.labels):
        raise ValueError("trace and stream analysis cover different miss counts")
    total = len(trace)
    misses_by_cat: Dict[str, int] = {}
    stream_by_cat: Dict[str, int] = {}
    in_streams = 0
    for record, label in zip(trace, analysis.labels):
        category = record.fn.category
        if not is_known_category(category):
            category = UNCATEGORIZED
        misses_by_cat[category] = misses_by_cat.get(category, 0) + 1
        if label is not StreamLabel.NON_REPETITIVE:
            stream_by_cat[category] = stream_by_cat.get(category, 0) + 1
            in_streams += 1
    rows: Dict[str, CategoryRow] = {}
    for category, count in misses_by_cat.items():
        rows[category] = CategoryRow(
            category=category,
            pct_misses=count / total if total else 0.0,
            pct_in_streams=(stream_by_cat.get(category, 0) / total
                            if total else 0.0),
            n_misses=count)
    return ModuleBreakdown(rows=rows,
                           overall_in_streams=(in_streams / total if total else 0.0),
                           total_misses=total)
