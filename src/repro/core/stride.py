"""Stride detection and the joint stride x repetition breakdown (Figure 3).

Whether a miss sequence forms a temporal stream is orthogonal to whether it
follows a constant stride (Section 4.3).  To measure the overlap, we classify
each miss as *stride-predictable* with a simple per-(processor, function)
stride detector — a software model of the PC-indexed stride prefetchers that
commercial systems deploy — and cross it with the per-miss stream labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem.trace import MissTrace
from .streams import StreamAnalysis, StreamLabel


@dataclass
class _StrideEntry:
    """State of one stride-detector table entry."""

    last_addr: Optional[int] = None
    last_stride: Optional[int] = None
    confidence: int = 0


class StrideDetector:
    """A PC-indexed (here: function-indexed) per-processor stride detector.

    A miss is declared *strided* when the delta from the previous miss by the
    same (cpu, function) pair equals the previously observed delta at least
    ``min_confidence`` times in a row, with a non-zero stride no larger than
    ``max_stride`` bytes.
    """

    def __init__(self, min_confidence: int = 2, max_stride: int = 4096) -> None:
        if min_confidence < 1:
            raise ValueError("min_confidence must be >= 1")
        self.min_confidence = min_confidence
        self.max_stride = max_stride
        self._table: Dict[Tuple[int, str], _StrideEntry] = {}

    def observe(self, cpu: int, fn_name: str, addr: int) -> bool:
        """Feed one miss; return True if it was stride-predictable."""
        key = (cpu, fn_name)
        entry = self._table.get(key)
        if entry is None:
            entry = _StrideEntry()
            self._table[key] = entry
        strided = False
        if entry.last_addr is not None:
            stride = addr - entry.last_addr
            if (stride != 0 and abs(stride) <= self.max_stride
                    and stride == entry.last_stride):
                entry.confidence += 1
                strided = entry.confidence >= self.min_confidence
            else:
                entry.confidence = 0
            entry.last_stride = stride
        entry.last_addr = addr
        return strided

    def reset(self) -> None:
        self._table.clear()


@dataclass
class StrideStreamBreakdown:
    """Joint fractions of {repetitive, non-repetitive} x {strided, non-strided}."""

    repetitive_strided: float
    repetitive_non_strided: float
    non_repetitive_strided: float
    non_repetitive_non_strided: float

    @property
    def fraction_strided(self) -> float:
        return self.repetitive_strided + self.non_repetitive_strided

    @property
    def fraction_repetitive(self) -> float:
        return self.repetitive_strided + self.repetitive_non_strided

    def as_dict(self) -> Dict[str, float]:
        return {
            "Repetitive Strided": self.repetitive_strided,
            "Repetitive Non-strided": self.repetitive_non_strided,
            "Non-repetitive Strided": self.non_repetitive_strided,
            "Non-repetitive Non-strided": self.non_repetitive_non_strided,
        }

    def total(self) -> float:
        return sum(self.as_dict().values())


def strided_flags(trace: MissTrace, min_confidence: int = 2,
                  max_stride: int = 4096) -> List[bool]:
    """Per-miss stride-predictability flags for a classified miss trace."""
    detector = StrideDetector(min_confidence=min_confidence,
                              max_stride=max_stride)
    return [detector.observe(r.cpu, r.fn.name, r.block) for r in trace]


def stride_stream_breakdown(trace: MissTrace, analysis: StreamAnalysis,
                            min_confidence: int = 2,
                            max_stride: int = 4096) -> StrideStreamBreakdown:
    """Cross stride-predictability with stream membership (Figure 3)."""
    if len(trace) != len(analysis.labels):
        raise ValueError("trace and stream analysis cover different miss counts")
    flags = strided_flags(trace, min_confidence=min_confidence,
                          max_stride=max_stride)
    counts = {"rs": 0, "rn": 0, "ns": 0, "nn": 0}
    for flag, label in zip(flags, analysis.labels):
        repetitive = label is not StreamLabel.NON_REPETITIVE
        if repetitive and flag:
            counts["rs"] += 1
        elif repetitive:
            counts["rn"] += 1
        elif flag:
            counts["ns"] += 1
        else:
            counts["nn"] += 1
    total = max(1, len(trace))
    return StrideStreamBreakdown(
        repetitive_strided=counts["rs"] / total,
        repetitive_non_strided=counts["rn"] / total,
        non_repetitive_strided=counts["ns"] / total,
        non_repetitive_non_strided=counts["nn"] / total,
    )
