"""Provenance sidecars for imported traces.

An imported trace is indistinguishable from a captured one as far as the
replay pipeline is concerned — same columnar segments, same ``meta.json``,
same ``(workload, n_cpus, seed, size)`` key.  What *is* different is where
the accesses came from, and that account lives in a ``provenance.json``
sidecar written into the committed trace directory:

* the source file path and its SHA-256 content hash (so a re-import of a
  changed file is detectable),
* the importer format and every import option that shaped the stream
  (CPU remapping, assigned seed/size, epoch size),
* how many records were imported and how many were skipped as corrupt.

The sidecar is deliberately *extra* data: :func:`~repro.trace.replay.is_trace_dir`
only requires ``meta.json``, so a trace with a sidecar replays through every
existing code path untouched, and a sidecar that is itself corrupt degrades
to "origin unknown" (``load_provenance`` returns ``None``) rather than
poisoning the trace — mirroring the store's warn-and-drop policy.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Optional

#: Sidecar file name inside a committed trace directory.
PROVENANCE_NAME = "provenance.json"

#: Schema version of the sidecar payload.
PROVENANCE_VERSION = 1


def provenance_path(trace_dir: os.PathLike) -> Path:
    return Path(trace_dir) / PROVENANCE_NAME


def hash_file(path: os.PathLike, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file, streamed chunk-wise."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def build_provenance(source: os.PathLike, fmt: str,
                     options: Dict[str, Any], sha256: str,
                     n_accesses: int, skipped: int) -> Dict[str, Any]:
    """The sidecar payload for one import."""
    return {
        "provenance_version": PROVENANCE_VERSION,
        "origin": "imported",
        "source": str(Path(source).resolve()),
        "format": fmt,
        "options": dict(options),
        "sha256": sha256,
        "n_accesses": int(n_accesses),
        "skipped_records": int(skipped),
    }


def write_provenance(trace_dir: os.PathLike,
                     record: Dict[str, Any]) -> Path:
    """Write the sidecar into a (committed) trace directory."""
    path = provenance_path(trace_dir)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_provenance(trace_dir: os.PathLike) -> Optional[Dict[str, Any]]:
    """The sidecar payload, or ``None`` for captured/unreadable traces.

    A malformed sidecar is reported with a warning and treated as absent:
    the trace itself is still valid, only its origin story is lost.
    """
    path = provenance_path(trace_dir)
    if not path.is_file():
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        warnings.warn(f"unreadable provenance sidecar {path} ({exc}); "
                      f"treating the trace as origin-unknown",
                      RuntimeWarning, stacklevel=2)
        return None
    if not isinstance(record, dict):
        return None
    return record


def trace_origin(trace_dir: os.PathLike) -> str:
    """``"imported"`` when a readable sidecar exists, else ``"captured"``."""
    record = load_provenance(trace_dir)
    if record is None:
        return "captured"
    return str(record.get("origin", "imported"))
