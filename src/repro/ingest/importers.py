"""External trace importers: adapt foreign dump formats to the trace store.

Every importer turns a foreign memory-access dump into the package's
canonical :class:`~repro.mem.records.Access` stream, which then flows
chunk-wise through the existing :class:`~repro.trace.capture.CaptureWriter`
into the columnar :class:`~repro.trace.store.TraceStore` — one epoch of
buffering, atomic commit, exactly like a live capture.  The committed trace
sits under a synthetic ``(workload="import:<name>", n_cpus, seed, size)``
key plus a :mod:`provenance <repro.ingest.provenance>` sidecar, so every
downstream layer (replay, ``process_chunk``, checkpoints, epoch sharding,
specs, plans, all executors) treats it exactly like a captured synthetic
stream.

Importers register in :data:`IMPORTERS` via :func:`register_importer`; three
adapters ship built-in:

``valgrind`` (aliases ``lackey``, ``valgrind-lackey``)
    The text output of ``valgrind --tool=lackey --trace-mem=yes``:
    ``I``/``L``/``S``/``M`` lines carrying ``<hex addr>,<size>``.  Lackey
    traces are single-threaded, so instructions are dealt round-robin
    across the target CPUs (each instruction's data accesses stay with it).

``champsim`` (alias ``champsim-records``)
    ChampSim-style fixed-width binary records (24 bytes little-endian:
    ip ``u64``, address ``u64``, is_write ``u8``, cpu ``u8``, size
    ``u16``, 4 pad bytes).  A truncated trailing record is skipped with a
    warning, matching the store's warn-and-drop policy.

``csv`` / ``jsonl``
    A generic row schema — ``addr`` required (hex with ``0x`` or decimal),
    ``cpu``/``size``/``kind``/``thread``/``icount`` optional with the
    :class:`~repro.mem.records.Access` defaults; ``kind`` accepts numbers
    or :class:`~repro.mem.records.AccessKind` names.

All importers read ``.gz`` and ``.xz`` sources transparently (suffix
dispatch — no magic-byte sniffing, so a mis-suffixed file fails loudly
instead of importing garbage); provenance hashes the compressed file as it
sits on disk.

Corrupt input is never fatal: each importer skips unparseable records,
counting them (and warning on the first), so a partially damaged dump still
imports the records it can prove out — per the store policy that broken data
degrades to less data, not to a broken pipeline.
"""

from __future__ import annotations

import csv as _csv
import gzip
import json
import lzma
import re
import struct
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from ..api.registry import Registry
from ..mem.records import Access, AccessKind
from ..trace.format import DEFAULT_EPOCH_SIZE
from ..trace.store import STATS, TraceStore, trace_params
from .provenance import build_provenance, hash_file, write_provenance

#: Registry of trace importers: ``IMPORTERS.get(fmt)() -> TraceImporter``.
IMPORTERS = Registry("importer")


def register_importer(name: str, aliases: Tuple[str, ...] = ()):
    """Class decorator adding a :class:`TraceImporter` to :data:`IMPORTERS`."""
    return IMPORTERS.decorator(name, aliases=aliases)


class TraceIngestError(ValueError):
    """An import cannot proceed (unknown format, empty file, key clash)."""


#: Compression suffixes importers decompress transparently.
COMPRESSED_SUFFIXES = (".gz", ".xz")

_OPENERS = {".gz": gzip.open, ".xz": lzma.open}


def open_text(source: Path, newline: Optional[str] = None):
    """Open a trace dump for text reading, decompressing by suffix."""
    opener = _OPENERS.get(Path(source).suffix)
    if opener is not None:
        return opener(source, "rt", encoding="utf-8", errors="replace",
                      newline=newline)
    return open(source, "r", encoding="utf-8", errors="replace",
                newline=newline)


def open_binary(source: Path):
    """Open a trace dump for binary reading, decompressing by suffix."""
    opener = _OPENERS.get(Path(source).suffix)
    if opener is not None:
        return opener(source, "rb")
    return open(source, "rb")


@dataclass
class ImportStats:
    """What one importer pass saw in the source file."""

    records: int = 0
    skipped: int = 0


class TraceImporter:
    """Base class for format adapters.

    Subclasses set :attr:`name` and implement :meth:`iter_accesses`, a
    generator over :class:`~repro.mem.records.Access` records.  The base
    class provides the shared corruption policy: :meth:`skip` counts a bad
    record and warns once per file, so a damaged dump degrades to fewer
    records instead of a failed import.
    """

    #: Canonical format name (matches the registry entry).
    name: str = "base"

    def __init__(self) -> None:
        self.stats = ImportStats()
        self._warned = False

    def skip(self, source: Path, detail: str) -> None:
        """Record one corrupt/unparseable record (warn on the first)."""
        self.stats.skipped += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"{self.name} import of {source}: skipping corrupt record "
                f"({detail}); further corrupt records are counted silently",
                RuntimeWarning, stacklevel=3)

    def remap_cpu(self, cpu: int, n_cpus: int) -> int:
        """Fold a foreign CPU id onto the target CPU count (DMA stays -1)."""
        if cpu < 0:
            return -1
        return cpu % n_cpus

    def iter_accesses(self, source: Path,
                      options: Dict[str, Any]) -> Iterator[Access]:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# valgrind --tool=lackey --trace-mem=yes
# --------------------------------------------------------------------------- #
_LACKEY_LINE = re.compile(r"^\s*([ILSM])\s+([0-9a-fA-F]+),(\d+)\s*$")


@register_importer("valgrind", aliases=("lackey", "valgrind-lackey"))
class ValgrindLackeyImporter(TraceImporter):
    """Text importer for valgrind's lackey ``--trace-mem`` output.

    ``I`` lines are instruction fetches (``icount=1``); ``L``/``S`` are
    loads/stores attributed to the current instruction's CPU (``icount=0`` —
    the fetch already carried the instruction count); ``M`` (modify) expands
    to a load followed by a store of the same location.  Banner lines
    (``==pid==``) and blank lines are not records and are skipped silently;
    anything else is counted as corrupt.
    """

    name = "valgrind"

    def iter_accesses(self, source: Path,
                      options: Dict[str, Any]) -> Iterator[Access]:
        n_cpus = int(options.get("n_cpus", 1))
        cpu = 0
        instructions = 0
        with open_text(source) as fh:
            for line in fh:
                stripped = line.strip()
                if not stripped or stripped.startswith("=="):
                    continue
                match = _LACKEY_LINE.match(line)
                if match is None:
                    self.skip(source, f"unparseable line {stripped[:40]!r}")
                    continue
                op, addr_hex, size = match.groups()
                addr = int(addr_hex, 16)
                size_b = int(size)
                self.stats.records += 1
                if op == "I":
                    # Deal instructions round-robin over the target CPUs so
                    # a single-threaded dump still exercises every node.
                    cpu = instructions % n_cpus
                    instructions += 1
                    yield Access(cpu=cpu, addr=addr, size=size_b,
                                 kind=AccessKind.IFETCH, thread=cpu,
                                 icount=1)
                elif op == "L":
                    yield Access(cpu=cpu, addr=addr, size=size_b,
                                 kind=AccessKind.READ, thread=cpu, icount=0)
                elif op == "S":
                    yield Access(cpu=cpu, addr=addr, size=size_b,
                                 kind=AccessKind.WRITE, thread=cpu, icount=0)
                else:  # M: atomic read-modify-write
                    yield Access(cpu=cpu, addr=addr, size=size_b,
                                 kind=AccessKind.READ, thread=cpu, icount=0)
                    yield Access(cpu=cpu, addr=addr, size=size_b,
                                 kind=AccessKind.WRITE, thread=cpu, icount=0)


# --------------------------------------------------------------------------- #
# ChampSim-style binary record dumps
# --------------------------------------------------------------------------- #
#: One record: ip u64, address u64, is_write u8, cpu u8, size u16, 4 pad.
CHAMPSIM_RECORD = struct.Struct("<QQBBH4x")


@register_importer("champsim", aliases=("champsim-records",))
class ChampSimImporter(TraceImporter):
    """Binary importer for ChampSim-style fixed-width record dumps.

    Each 24-byte record carries one memory operation plus the instruction
    pointer that issued it; the ``ip`` field is only used to detect
    instruction boundaries (``icount`` increments when ``ip`` changes).
    An ``is_write`` flag outside {0, 1} marks a corrupt record; trailing
    bytes that do not fill a whole record are a truncated dump — both are
    skipped with a warning.
    """

    name = "champsim"

    def iter_accesses(self, source: Path,
                      options: Dict[str, Any]) -> Iterator[Access]:
        n_cpus = int(options.get("n_cpus", 1))
        record = CHAMPSIM_RECORD
        last_ip: Optional[int] = None
        with open_binary(source) as fh:
            while True:
                raw = fh.read(record.size)
                if not raw:
                    break
                if len(raw) < record.size:
                    self.skip(source,
                              f"truncated trailing record ({len(raw)} of "
                              f"{record.size} bytes)")
                    break
                ip, addr, is_write, cpu, size_b = record.unpack(raw)
                if is_write not in (0, 1):
                    self.skip(source, f"is_write={is_write} out of range")
                    continue
                self.stats.records += 1
                icount = 1 if ip != last_ip else 0
                last_ip = ip
                mapped = self.remap_cpu(cpu, n_cpus)
                yield Access(cpu=mapped, addr=addr, size=size_b or 8,
                             kind=(AccessKind.WRITE if is_write
                                   else AccessKind.READ),
                             thread=max(mapped, 0), icount=icount)


# --------------------------------------------------------------------------- #
# Generic CSV / JSONL row schema
# --------------------------------------------------------------------------- #
#: Row fields accepted by the generic importers (addr is required).
ROW_FIELDS = ("cpu", "addr", "size", "kind", "thread", "icount")

_KIND_NAMES = {kind.name.lower(): kind for kind in AccessKind}


def _parse_int(value: Any) -> int:
    """Int from a row value; hex accepted with an ``0x`` prefix."""
    if isinstance(value, str):
        text = value.strip().lower()
        return int(text, 16) if text.startswith("0x") else int(text)
    return int(value)


def _parse_kind(value: Any) -> AccessKind:
    if isinstance(value, str) and not value.strip().lstrip("-").isdigit():
        try:
            return _KIND_NAMES[value.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown access kind {value!r}") from None
    return AccessKind(_parse_int(value))


class RowImporter(TraceImporter):
    """Shared row-to-Access conversion for the CSV and JSONL adapters."""

    def iter_rows(self, source: Path) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(line_number, row dict)`` pairs; rows may be malformed."""
        raise NotImplementedError

    def iter_accesses(self, source: Path,
                      options: Dict[str, Any]) -> Iterator[Access]:
        n_cpus = int(options.get("n_cpus", 1))
        for lineno, row in self.iter_rows(source):
            if row is None:
                self.skip(source, f"unparseable row at line {lineno}")
                continue
            try:
                addr = _parse_int(row["addr"])
                cpu = self.remap_cpu(_parse_int(row.get("cpu", 0)), n_cpus)
                access = Access(
                    cpu=cpu, addr=addr,
                    size=_parse_int(row.get("size", 8)),
                    kind=_parse_kind(row.get("kind", int(AccessKind.READ))),
                    thread=_parse_int(row.get("thread", max(cpu, 0))),
                    icount=_parse_int(row.get("icount", 4)))
            except (KeyError, TypeError, ValueError) as exc:
                self.skip(source, f"bad row at line {lineno}: {exc}")
                continue
            self.stats.records += 1
            yield access


@register_importer("csv")
class CsvImporter(RowImporter):
    """CSV importer: a header row naming a subset of :data:`ROW_FIELDS`."""

    name = "csv"

    def iter_rows(self, source: Path) -> Iterator[Tuple[int, Dict[str, Any]]]:
        with open_text(source, newline="") as fh:
            reader = _csv.DictReader(fh)
            for lineno, row in enumerate(reader, start=2):
                if row.get("addr") in (None, ""):
                    yield lineno, None
                    continue
                yield lineno, {k: v for k, v in row.items()
                               if k in ROW_FIELDS and v not in (None, "")}


@register_importer("jsonl", aliases=("ndjson",))
class JsonlImporter(RowImporter):
    """JSONL importer: one JSON object per line with :data:`ROW_FIELDS` keys."""

    name = "jsonl"

    def iter_rows(self, source: Path) -> Iterator[Tuple[int, Dict[str, Any]]]:
        with open_text(source) as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    yield lineno, None
                    continue
                yield lineno, (row if isinstance(row, dict) else None)


# --------------------------------------------------------------------------- #
# The workload-registry face of an imported trace
# --------------------------------------------------------------------------- #
class MissingImportedTraceError(RuntimeError):
    """An ``import:`` workload was asked to generate, but no trace exists."""


class ImportedTraceWorkload:
    """The ``import:<name>`` entry the ``WORKLOADS`` registry hands out.

    Imported streams cannot be *generated* — they exist only as committed
    traces — so this satisfies the workload consumption contract
    (``iter_accesses`` / ``generate``) by replaying from the session's
    trace store.  The replay pipeline never gets here when the trace exists
    (the store reader wins first); it is reached only by eager mode, by a
    capture stage whose trace was deleted, or by generation fallbacks — and
    then either replays the store copy or fails with re-import guidance
    instead of silently fabricating data.
    """

    def __init__(self, name: str, n_cpus: int, seed: int = 42,
                 size: str = "default") -> None:
        self.name = name
        self.workload = f"import:{name}"
        self.n_cpus = n_cpus
        self.seed = seed
        self.size = size

    def _reader(self):
        from ..trace.store import get_trace_store  # lazy: pulls api.session
        store = get_trace_store()
        if store is None:
            return None
        return store.open(trace_params(self.workload, self.n_cpus,
                                       self.seed, self.size))

    def iter_accesses(self) -> Iterator[Access]:
        reader = self._reader()
        if reader is None:
            raise MissingImportedTraceError(
                f"no imported trace for {self.workload!r} "
                f"(cpus={self.n_cpus}, size={self.size}, seed={self.seed}); "
                f"run `python -m repro trace import FILE --format ... "
                f"--name {self.name} --cpus {self.n_cpus} "
                f"--size {self.size} --seed {self.seed}` first")
        return reader.iter_accesses()

    def generate(self):
        from ..mem.trace import AccessTrace
        trace = AccessTrace()
        for access in self.iter_accesses():
            trace.append(access)
        return trace


# --------------------------------------------------------------------------- #
# Orchestration: foreign file -> committed trace + provenance sidecar
# --------------------------------------------------------------------------- #
@dataclass
class ImportResult:
    """Outcome of one :func:`import_trace` call."""

    params: Dict[str, Any]
    path: Path
    n_accesses: int
    skipped: int
    elapsed: float
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def workload(self) -> str:
        return str(self.params["workload"])

    def describe(self) -> str:
        return (f"imported {self.n_accesses:,} accesses as "
                f"{self.workload!r} (cpus={self.params['n_cpus']}, "
                f"size={self.params['size']}, seed={self.params['seed']}) "
                f"in {self.elapsed:.2f}s"
                + (f", {self.skipped} corrupt record"
                   f"{'' if self.skipped == 1 else 's'} skipped"
                   if self.skipped else ""))


def sanitize_import_name(name: str) -> str:
    """A trace-key-safe import name (used as ``import:<name>``)."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", name.strip()).strip("-.")
    if not cleaned:
        raise TraceIngestError(f"cannot derive an import name from {name!r}")
    return cleaned


def import_trace(store: TraceStore, source, fmt: str, *,
                 name: Optional[str] = None, n_cpus: int = 16,
                 seed: int = 42, size: str = "small",
                 epoch_size: int = DEFAULT_EPOCH_SIZE,
                 force: bool = False) -> ImportResult:
    """Stream one foreign dump into ``store`` under an ``import:`` key.

    The file is parsed once by the format's registered importer and written
    chunk-wise through a staged :class:`~repro.trace.capture.CaptureWriter`
    (O(epoch) memory, atomic commit); the committed directory then gains a
    provenance sidecar recording the source path, format, options, and the
    file's SHA-256.  ``n_cpus``/``seed``/``size`` become the synthetic trace
    key — import once per CPU count the target spec's organisations use.

    Raises :class:`TraceIngestError` for an unknown format, a missing or
    empty source, or an existing trace at the same key without ``force``.
    """
    source = Path(source)
    if not source.is_file():
        raise TraceIngestError(f"no such trace file: {source}")
    try:
        importer_cls = IMPORTERS.get(fmt)
    except KeyError as exc:
        raise TraceIngestError(exc.args[0]) from None
    importer: TraceImporter = importer_cls()
    # "trace.csv.gz" should default to the name "trace", not "trace.csv".
    stem = (Path(source.stem).stem
            if source.suffix in COMPRESSED_SUFFIXES else source.stem)
    workload = f"import:{sanitize_import_name(name or stem)}"
    params = trace_params(workload, n_cpus, seed, size)
    if store.contains(params):
        if not force:
            raise TraceIngestError(
                f"trace {workload!r} (cpus={n_cpus}, size={size}, "
                f"seed={seed}) already exists; pass force=True/--force to "
                f"re-import")
        store.drop(params)
    options = {"n_cpus": n_cpus, "seed": seed, "size": size,
               "epoch_size": epoch_size}
    sha256 = hash_file(source)
    start = time.perf_counter()
    with store.writer(params, epoch_size=epoch_size) as writer:
        written = writer.write_all(importer.iter_accesses(source, options))
        if written == 0:
            # Raising aborts the staged capture via the context manager.
            raise TraceIngestError(
                f"{source} produced no importable records "
                f"({importer.stats.skipped} skipped); refusing to commit "
                f"an empty trace")
    elapsed = time.perf_counter() - start
    STATS.imports += 1
    path = store.path_for(params)
    provenance = build_provenance(source, IMPORTERS.canonical(fmt) or fmt,
                                  options, sha256, written,
                                  importer.stats.skipped)
    write_provenance(path, provenance)
    return ImportResult(params=params, path=path, n_accesses=written,
                        skipped=importer.stats.skipped, elapsed=elapsed,
                        provenance=provenance)
