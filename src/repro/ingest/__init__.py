"""Trace ingest: external trace importers and the seeded workload fuzzer.

This package opens the workload axis beyond the six synthetic generators:

* :mod:`repro.ingest.importers` — an importer registry
  (:func:`register_importer`) with adapters for valgrind-lackey text dumps,
  ChampSim-style binary record dumps, and a generic CSV/JSONL row schema.
  :func:`import_trace` streams a foreign file chunk-wise into the columnar
  :class:`~repro.trace.store.TraceStore` under a synthetic
  ``(workload="import:<name>", n_cpus, seed, size)`` key and writes a
  :mod:`provenance <repro.ingest.provenance>` sidecar.
* :mod:`repro.ingest.fuzz` — :class:`FuzzWorkload`, a deterministic
  composition/perturbation of the registered generators (phase mixes,
  working-set drift, CPU-count skew, burst injection) described by a
  ``fuzz:<recipe>`` string.

Importing this package registers the ``import:`` and ``fuzz:`` **name
prefixes** on the ``WORKLOADS`` registry (see
:meth:`repro.api.registry.Registry.register_prefix`), which is what lets a
spec say ``workloads = ["import:memcached", "fuzz:Apache+OLTP,drift=0.3"]``
and have plans, the trace store, checkpoints, the run index, and all four
executors treat those cells like any paper workload.
:mod:`repro.workloads` imports this package, so the prefixes exist wherever
workloads are resolvable — including freshly spawned dispatch workers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..api.registry import WORKLOADS
from .fuzz import (BURST_WINDOW, DRIFT_STRIDE, FuzzRecipe, FuzzWorkload,
                   RecipeError, SLOT_ACCESSES, parse_recipe)
from .importers import (CHAMPSIM_RECORD, ChampSimImporter, CsvImporter,
                        IMPORTERS, ImportResult, ImportStats,
                        ImportedTraceWorkload, JsonlImporter,
                        MissingImportedTraceError, ROW_FIELDS, RowImporter,
                        TraceImporter, TraceIngestError,
                        ValgrindLackeyImporter, import_trace,
                        register_importer, sanitize_import_name)
from .provenance import (PROVENANCE_NAME, build_provenance, hash_file,
                         load_provenance, provenance_path, trace_origin,
                         write_provenance)

#: Workload-name prefixes owned by this package.
IMPORT_PREFIX = "import:"
FUZZ_PREFIX = "fuzz:"


def _import_entry(suffix: str) -> Optional[Tuple[str, Callable[..., Any]]]:
    """``WORKLOADS`` prefix handler for ``import:<name>``.

    Any cleanly sanitised name is *syntactically* valid — whether a trace
    actually exists is a runtime property of the store, checked when (and
    where) the stream is opened, so specs validate on machines that have
    not imported yet.
    """
    name = suffix.strip()
    try:
        if not name or sanitize_import_name(name) != name:
            return None
    except TraceIngestError:
        return None

    def factory(n_cpus: int, seed: int = 42,
                size: str = "default") -> ImportedTraceWorkload:
        return ImportedTraceWorkload(name, n_cpus=n_cpus, seed=seed,
                                     size=size)

    return name, factory


def _fuzz_entry(suffix: str) -> Optional[Tuple[str, Callable[..., Any]]]:
    """``WORKLOADS`` prefix handler for ``fuzz:<recipe>``."""
    try:
        recipe = parse_recipe(suffix)
    except RecipeError:
        return None

    def factory(n_cpus: int, seed: int = 42,
                size: str = "default") -> FuzzWorkload:
        return FuzzWorkload(recipe, n_cpus=n_cpus, seed=seed, size=size)

    return recipe.canonical_suffix(), factory


WORKLOADS.register_prefix(IMPORT_PREFIX, _import_entry,
                          placeholder="import:<name>")
WORKLOADS.register_prefix(FUZZ_PREFIX, _fuzz_entry,
                          placeholder="fuzz:<recipe>")


__all__ = [
    "BURST_WINDOW", "CHAMPSIM_RECORD", "ChampSimImporter", "CsvImporter",
    "DRIFT_STRIDE", "FUZZ_PREFIX", "FuzzRecipe", "FuzzWorkload",
    "IMPORTERS", "IMPORT_PREFIX", "ImportResult", "ImportStats",
    "ImportedTraceWorkload", "JsonlImporter", "MissingImportedTraceError",
    "PROVENANCE_NAME", "ROW_FIELDS", "RecipeError", "RowImporter",
    "SLOT_ACCESSES", "TraceImporter", "TraceIngestError",
    "ValgrindLackeyImporter", "build_provenance", "hash_file",
    "import_trace", "load_provenance", "parse_recipe", "provenance_path",
    "register_importer", "sanitize_import_name", "trace_origin",
    "write_provenance",
]
