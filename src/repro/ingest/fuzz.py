"""Seeded workload fuzzer: compose and perturb the synthetic generators.

The paper's temporal-streaming claims are evaluated on six well-behaved
synthetic workloads; :class:`FuzzWorkload` hunts for access patterns where
those claims break down by *recombining* the existing generators under
deterministic perturbations.  A fuzz workload is named by a **recipe
string** and plugs into the ``WORKLOADS`` registry through the ``fuzz:``
prefix, so specs, plans, the trace store, checkpoints, and every executor
treat ``workload = "fuzz:<recipe>"`` exactly like ``"Apache"``.

Recipe grammar (no spaces)::

    fuzz:<base>[+<base>...][,knob=value...]

    fuzz:Apache+OLTP,drift=0.3,skew=2,burst=0.1,phases=6

* **bases** — one or more registered workload names/aliases, each run as a
  fresh deterministic generator with a seed derived from the base list and
  the fuzz seed (knobs do not reseed the substrate, so single-knob
  ablations compare like-for-like streams).
* ``phases`` — phase mixing: the output interleaves fixed-size slots drawn
  round-robin from the bases; the drift cycle repeats every ``phases``
  phase indices (default: twice per base).
* ``drift`` — working-set drift in [0, 1]: each phase shifts its base's
  addresses by a page-aligned offset growing with the phase index, so
  recurring temporal streams land at migrated addresses.
* ``skew`` — CPU-count skew >= 1: bases generate for ``ceil(n_cpus/skew)``
  CPUs, concentrating the interleaving on a subset of the machine.
* ``burst`` — burst injection in [0, 1]: after each slot, with this
  probability the most recent accesses are re-emitted back-to-back,
  injecting dense re-reference bursts mid-stream.

Determinism is the contract: the canonical recipe, the seed, ``n_cpus``,
and ``size`` fully determine the access stream (base sub-seeds and all
perturbation draws come from a SHA-256 of those values — never from
``hash()``, which is salted per process), so the trace-store key
``(fuzz:<recipe>, n_cpus, seed, size)`` is reproducible across processes,
machines, and cold caches.
"""

from __future__ import annotations

import hashlib
import random
import re
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

from ..mem.records import Access
from ..mem.trace import AccessTrace
from ..workloads.base import GENERATION_STATS, Workload

#: Accesses drawn from one base generator before the mix rotates.
SLOT_ACCESSES = 4096

#: Page-aligned address shift per whole unit of drift per phase (4 MiB).
DRIFT_STRIDE = 1 << 22

#: Upper bound kept for burst re-emission.
BURST_WINDOW = 64


class RecipeError(ValueError):
    """A fuzz recipe string does not parse or is out of range."""


@dataclass(frozen=True)
class FuzzRecipe:
    """A parsed, validated fuzz recipe."""

    bases: Tuple[str, ...]
    drift: float = 0.0
    skew: int = 1
    burst: float = 0.0
    #: 0 means "auto": twice per base, resolved at stream-build time.
    phases: int = 0

    def resolved_phases(self) -> int:
        return self.phases if self.phases > 0 else 2 * len(self.bases)

    def canonical_suffix(self) -> str:
        """The one canonical spelling of this recipe (bases canonicalised,
        knobs in fixed order, defaults omitted)."""
        parts = ["+".join(self.bases)]
        if self.drift:
            parts.append(f"drift={format(self.drift, 'g')}")
        if self.skew != 1:
            parts.append(f"skew={self.skew}")
        if self.burst:
            parts.append(f"burst={format(self.burst, 'g')}")
        if self.phases:
            parts.append(f"phases={self.phases}")
        return ",".join(parts)

    def describe(self) -> str:
        return (f"fuzz recipe over {len(self.bases)} base(s) "
                f"[{', '.join(self.bases)}]: "
                f"{self.resolved_phases()} phase(s), drift={self.drift}, "
                f"skew={self.skew}, burst={self.burst}")


_KNOB_PATTERN = re.compile(r"^(drift|skew|burst|phases)=([^=,]+)$")


def parse_recipe(suffix: str) -> FuzzRecipe:
    """Parse (and canonicalise) the part after ``fuzz:``.

    Base-workload aliases resolve to canonical names, so two spellings of
    the same recipe share one trace-store key.  Raises :class:`RecipeError`
    on an empty recipe, an unknown base, a ``fuzz:`` base (no recursion),
    an unknown knob, or an out-of-range value.
    """
    from ..api.registry import WORKLOADS

    text = suffix.strip()
    if not text:
        raise RecipeError("empty fuzz recipe (expected "
                          "fuzz:<base>[+<base>...][,knob=value...])")
    segments = text.split(",")
    base_names = [b for b in segments[0].split("+") if b]
    if not base_names:
        raise RecipeError(f"fuzz recipe {suffix!r} names no base workloads")
    bases: List[str] = []
    for base in base_names:
        if base.strip().lower().startswith("fuzz:"):
            raise RecipeError(
                f"fuzz recipe base {base!r} may not itself be a fuzz "
                f"workload")
        canonical = WORKLOADS.canonical(base)
        if canonical is None:
            raise RecipeError(
                f"fuzz recipe base {base!r} is not a registered workload "
                f"(available: {', '.join(WORKLOADS.names())})")
        bases.append(canonical)
    knobs = {"drift": 0.0, "skew": 1, "burst": 0.0, "phases": 0}
    for segment in segments[1:]:
        match = _KNOB_PATTERN.match(segment.strip())
        if match is None:
            raise RecipeError(
                f"bad fuzz recipe segment {segment!r} (expected "
                f"knob=value with knob in drift/skew/burst/phases)")
        knob, raw = match.groups()
        try:
            value = float(raw) if knob in ("drift", "burst") else int(raw)
        except ValueError:
            raise RecipeError(
                f"bad value {raw!r} for fuzz knob {knob!r}") from None
        knobs[knob] = value
    if not 0.0 <= knobs["drift"] <= 1.0:
        raise RecipeError(f"drift must be in [0, 1], got {knobs['drift']}")
    if not 0.0 <= knobs["burst"] <= 1.0:
        raise RecipeError(f"burst must be in [0, 1], got {knobs['burst']}")
    if knobs["skew"] < 1:
        raise RecipeError(f"skew must be >= 1, got {knobs['skew']}")
    if knobs["phases"] < 0:
        raise RecipeError(f"phases must be >= 0 (0 = auto), "
                          f"got {knobs['phases']}")
    return FuzzRecipe(bases=tuple(bases), drift=knobs["drift"],
                      skew=int(knobs["skew"]), burst=knobs["burst"],
                      phases=int(knobs["phases"]))


def _stable_digest(*parts: object) -> int:
    """A process-stable 63-bit integer digest of the given parts."""
    payload = "\x1f".join(str(p) for p in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8],
                          "big") & (2 ** 63 - 1)


class FuzzWorkload(Workload):
    """A deterministic composition/perturbation of registered workloads.

    Satisfies the :class:`~repro.workloads.base.Workload` consumption
    contract (``iter_accesses`` / ``generate``) without a builder or kernel
    of its own — the substrate is the base workloads, instantiated fresh
    per run with seeds derived from ``(recipe, seed)``.  Like every
    workload, an instance is single-shot.
    """

    def __init__(self, recipe: FuzzRecipe, n_cpus: int, seed: int = 42,
                 size: str = "default") -> None:
        self.recipe = recipe
        self.n_cpus = n_cpus
        self.seed = seed
        self.size = size
        self._consumed = False

    # ------------------------------------------------------------------ #
    @property
    def generation_cpus(self) -> int:
        """CPUs handed to the base generators (skew concentrates them)."""
        return max(1, -(-self.n_cpus // self.recipe.skew))

    def base_seed(self, index: int) -> int:
        """The derived seed for base workload ``index``.

        Deliberately a function of the *bases* (not the knobs): two recipes
        over the same composition share a substrate stream, so a behaviour
        change under ``drift``/``burst`` is attributable to that knob alone
        rather than to a reshuffled substrate.
        """
        return _stable_digest("fuzz-base", "+".join(self.recipe.bases),
                              self.seed, index) % (2 ** 31)

    def jobs(self):  # pragma: no cover - the driver path is not used
        raise NotImplementedError(
            "FuzzWorkload streams from its base workloads; it has no job "
            "list of its own")

    # ------------------------------------------------------------------ #
    def iter_accesses(self) -> Iterator[Access]:
        """Lazily yield the fuzzed stream (O(slot) memory)."""
        if self._consumed:
            raise RuntimeError(
                "FuzzWorkload instances are single-shot; create a fresh "
                "instance per run")
        self._consumed = True
        GENERATION_STATS.runs += 1
        return self._stream()

    def generate(self) -> AccessTrace:
        trace = AccessTrace()
        for access in self.iter_accesses():
            trace.append(access)
        return trace

    # ------------------------------------------------------------------ #
    def _stream(self) -> Iterator[Access]:
        from ..workloads import create_workload

        recipe = self.recipe
        rng = random.Random(_stable_digest(
            "fuzz-perturb", recipe.canonical_suffix(), self.seed,
            self.n_cpus, self.size))
        streams: List[Optional[Iterator[Access]]] = [
            iter(create_workload(base, n_cpus=self.generation_cpus,
                                 seed=self.base_seed(i),
                                 size=self.size).iter_accesses())
            for i, base in enumerate(recipe.bases)]
        n_bases = len(streams)
        phases = recipe.resolved_phases()
        drift_step = int(recipe.drift * DRIFT_STRIDE) & ~0xFFF
        recent: Deque[Access] = deque(maxlen=BURST_WINDOW)
        slot = 0
        live = n_bases
        while live:
            index = slot % n_bases
            stream = streams[index]
            slot += 1
            if stream is None:
                continue
            # One phase = one round over the bases; drift cycles per phase.
            phase = (slot - 1) // n_bases
            offset = drift_step * (phase % phases)
            emitted = 0
            for access in stream:
                # DMA rows shift too, keeping device writes correlated
                # with the CPU reads of the same (drifted) buffers.
                if offset:
                    access = Access(cpu=access.cpu,
                                    addr=access.addr + offset,
                                    size=access.size, kind=access.kind,
                                    fn=access.fn, thread=access.thread,
                                    icount=access.icount)
                recent.append(access)
                yield access
                emitted += 1
                if emitted >= SLOT_ACCESSES:
                    break
            if emitted < SLOT_ACCESSES:
                streams[index] = None
                live -= 1
            if recipe.burst and recent and rng.random() < recipe.burst:
                # Re-emit the trailing window as a dense burst: repeated
                # block touches with no instruction progress.
                for access in list(recent):
                    yield Access(cpu=access.cpu, addr=access.addr,
                                 size=access.size, kind=access.kind,
                                 fn=access.fn, thread=access.thread,
                                 icount=0)
