"""Web-server substrate shared by the Apache and Zeus workload models.

Section 5.1: the HTTP server software itself accounts for only ~3% of
off-chip misses; activity is dominated by the OS work done on its behalf
(poll, STREAMS, IP assembly, bulk copies) and the perl CGI processes.  This
module models the server-side structures: connection state, request parse
buffers (fed by network DMA into reused socket buffers), and the static-file
page cache whose pages are repeatedly copied out to the network.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..mem.config import BLOCK_SIZE, PAGE_SIZE
from ..mem.records import FunctionRef
from .base import Op, OpStream, TraceBuilder, dma_write, read, write
from .kernel import KernelModel, copyout
from .symbols import Sym


class FileCache:
    """In-memory cache of hot static files (segmap / vnode page cache)."""

    def __init__(self, builder: TraceBuilder, n_files: int = 24,
                 pages_per_file: int = 2) -> None:
        region = builder.space.add_region(
            "web.filecache", n_files * pages_per_file * PAGE_SIZE
            + n_files * BLOCK_SIZE)
        self.files: List[List[int]] = [
            [region.alloc(PAGE_SIZE, align=PAGE_SIZE)
             for _ in range(pages_per_file)]
            for _ in range(n_files)]
        #: Per-file vnode/page-list header block.
        self.headers = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                        for _ in range(n_files)]

    def lookup(self, file_id: int) -> OpStream:
        """segmap/page_lookup for a cached file."""
        file_id %= len(self.files)
        yield read(self.headers[file_id], Sym.SEGMAP_GETMAP, icount=8)
        yield read(self.files[file_id][0], Sym.PAGE_LOOKUP, icount=6)

    def pages(self, file_id: int) -> List[int]:
        return self.files[file_id % len(self.files)]


class ConnectionTable:
    """HTTP connection state plus reused socket receive buffers."""

    def __init__(self, builder: TraceBuilder, server_fn: FunctionRef,
                 n_connections: int = 32, recv_buffer_blocks: int = 4) -> None:
        self.server_fn = server_fn
        region = builder.space.add_region(
            "web.connections",
            n_connections * (2 + recv_buffer_blocks) * BLOCK_SIZE)
        self.connections: List[Tuple[int, int, List[int]]] = []
        for _ in range(n_connections):
            conn_struct = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
            parse_state = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
            recv_buffer = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                           for _ in range(recv_buffer_blocks)]
            self.connections.append((conn_struct, parse_state, recv_buffer))

    def __len__(self) -> int:
        return len(self.connections)

    # ------------------------------------------------------------------ #
    def network_arrival(self, conn_id: int, n_bytes: int = 512,
                        target_addr: int = None) -> OpStream:
        """The NIC DMAs an incoming request into a kernel socket buffer.

        ``target_addr`` is the kernel socket buffer the packet lands in; when
        omitted, the connection's own receive buffer is used.
        """
        _conn, _parse, recv_buffer = self.connections[conn_id % len(self.connections)]
        if target_addr is None:
            target_addr = recv_buffer[0]
            n_bytes = min(n_bytes, len(recv_buffer) * BLOCK_SIZE)
        yield dma_write(target_addr, n_bytes, Sym.SD_INTR)

    def read_request(self, conn_id: int,
                     fn: FunctionRef = None) -> OpStream:
        """The server parses the request from the (just-DMA'd) buffer."""
        fn = fn if fn is not None else self.server_fn
        conn_struct, parse_state, recv_buffer = \
            self.connections[conn_id % len(self.connections)]
        yield read(conn_struct, fn, icount=10)
        for block in recv_buffer:
            yield read(block, fn, icount=8)
        yield write(parse_state, fn, icount=8)

    def request_buffer(self, conn_id: int) -> int:
        return self.connections[conn_id % len(self.connections)][2][0]

    def connection_struct(self, conn_id: int) -> int:
        return self.connections[conn_id % len(self.connections)][0]
