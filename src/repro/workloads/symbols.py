"""Synthetic symbol table for the commercial workload models.

The paper attributes misses to code modules by resolving the call stack at
each miss against the function names embedded in the Solaris kernel and the
application binaries, then grouping functions into the categories of Table 2
using module naming conventions (Section 3, "Code module analysis").

Our workload models cannot run the real binaries, so this module provides the
equivalent of the resolved symbol table: one :class:`FunctionRef` per
function the models touch, carrying the function name, the module it belongs
to, and its Table 2 category.  The names follow the real Solaris / DB2 / perl
naming conventions mentioned in the paper so traces remain recognisable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..mem.records import FunctionRef

# Category name constants (must match repro.core.modules.CATEGORIES).
BULK_COPIES = "Bulk memory copies"
SYSCALLS = "System call implementation"
SCHEDULER = "Kernel task scheduler"
MMU_TRAPS = "Kernel MMU & trap handlers"
SYNC = "Kernel synchronization primitives"
KERNEL_OTHER = "Kernel - other activity"
STREAMS = "Kernel STREAMS subsystem"
IP_ASSEMBLY = "Kernel IP packet assembly"
WEB_WORKER = "Web server worker thread pool"
PERL_INPUT = "CGI - perl input processing"
PERL_ENGINE = "CGI - perl execution engine"
PERL_OTHER = "CGI - perl other activity"
BLOCK_DEV = "Kernel block device driver"
DB2_INDEX = "DB2 index, page & tuple accesses"
DB2_REQUEST = "DB2 SQL request control"
DB2_IPC = "DB2 interprocess communication"
DB2_INTERP = "DB2 SQL runtime interpreter"
DB2_OTHER = "DB2 - other activity"
UNKNOWN = "Uncategorized / Unknown"


_REGISTRY: Dict[str, FunctionRef] = {}


def _register(name: str, module: str, category: str) -> FunctionRef:
    ref = FunctionRef(name=name, module=module, category=category)
    _REGISTRY[name] = ref
    return ref


def lookup(name: str) -> FunctionRef:
    """Resolve a function name to its :class:`FunctionRef`.

    Unknown names resolve to an uncategorised reference, mirroring the
    paper's "Uncategorized / Unknown" bucket.
    """
    ref = _REGISTRY.get(name)
    if ref is None:
        ref = FunctionRef(name=name, module="unknown", category=UNKNOWN)
    return ref


def all_functions() -> List[FunctionRef]:
    """Every registered function (useful for tests and documentation)."""
    return list(_REGISTRY.values())


class Sym:
    """Namespace of all registered :class:`FunctionRef` constants."""

    # ------------------------------------------------------------------ #
    # Bulk memory copies
    # ------------------------------------------------------------------ #
    MEMCPY = _register("memcpy", "libc", BULK_COPIES)
    BCOPY = _register("bcopy", "genunix", BULK_COPIES)
    ALIGN_CPY = _register("__align_cpy_1", "libc", BULK_COPIES)
    DEFAULT_COPYOUT = _register("default_copyout", "genunix", BULK_COPIES)
    DEFAULT_COPYIN = _register("default_copyin", "genunix", BULK_COPIES)
    KCOPY = _register("kcopy", "genunix", BULK_COPIES)

    # ------------------------------------------------------------------ #
    # System call implementation
    # ------------------------------------------------------------------ #
    POLL = _register("poll", "genunix:syscall", SYSCALLS)
    POLLSYS = _register("pollsys", "genunix:syscall", SYSCALLS)
    READ = _register("read", "genunix:syscall", SYSCALLS)
    WRITE = _register("write", "genunix:syscall", SYSCALLS)
    OPEN = _register("open", "genunix:syscall", SYSCALLS)
    CLOSE = _register("close", "genunix:syscall", SYSCALLS)
    STAT = _register("stat", "genunix:syscall", SYSCALLS)
    FCNTL = _register("fcntl", "genunix:syscall", SYSCALLS)
    COPEN = _register("copen", "genunix:syscall", SYSCALLS)
    FOP_LOOKUP = _register("fop_lookup", "genunix:syscall", SYSCALLS)

    # ------------------------------------------------------------------ #
    # Kernel task scheduler
    # ------------------------------------------------------------------ #
    DISP_GETWORK = _register("disp_getwork", "unix:disp", SCHEDULER)
    DISP_GETBEST = _register("disp_getbest", "unix:disp", SCHEDULER)
    DISPDEQ = _register("dispdeq", "unix:disp", SCHEDULER)
    DISP_RATIFY = _register("disp_ratify", "unix:disp", SCHEDULER)
    SETFRONTDQ = _register("setfrontdq", "unix:disp", SCHEDULER)
    SETBACKDQ = _register("setbackdq", "unix:disp", SCHEDULER)
    SWTCH = _register("swtch", "unix:disp", SCHEDULER)
    TS_TICK = _register("ts_tick", "TS:sched", SCHEDULER)
    CPU_RESCHED = _register("cpu_resched", "unix:disp", SCHEDULER)

    # ------------------------------------------------------------------ #
    # Kernel MMU and trap handlers
    # ------------------------------------------------------------------ #
    DTLB_MISS = _register("data_access_MMU_miss", "unix:trap", MMU_TRAPS)
    ITLB_MISS = _register("instruction_access_MMU_miss", "unix:trap", MMU_TRAPS)
    SFMMU_TSB_MISS = _register("sfmmu_tsb_miss", "unix:hat", MMU_TRAPS)
    HAT_MEMLOAD = _register("hat_memload", "unix:hat", MMU_TRAPS)
    FILL_WINDOW = _register("fill_window", "unix:trap", MMU_TRAPS)
    SPILL_WINDOW = _register("spill_window", "unix:trap", MMU_TRAPS)

    # ------------------------------------------------------------------ #
    # Kernel synchronization primitives
    # ------------------------------------------------------------------ #
    MUTEX_ENTER = _register("mutex_enter", "unix:sync", SYNC)
    MUTEX_VECTOR_ENTER = _register("mutex_vector_enter", "unix:sync", SYNC)
    MUTEX_EXIT = _register("mutex_exit", "unix:sync", SYNC)
    CV_WAIT = _register("cv_wait", "genunix:sync", SYNC)
    CV_SIGNAL = _register("cv_signal", "genunix:sync", SYNC)
    CV_BROADCAST = _register("cv_broadcast", "genunix:sync", SYNC)
    TURNSTILE_BLOCK = _register("turnstile_block", "genunix:sync", SYNC)
    TURNSTILE_WAKEUP = _register("turnstile_wakeup", "genunix:sync", SYNC)

    # ------------------------------------------------------------------ #
    # Kernel - other activity
    # ------------------------------------------------------------------ #
    KMEM_ALLOC = _register("kmem_cache_alloc", "genunix:kmem", KERNEL_OTHER)
    KMEM_FREE = _register("kmem_cache_free", "genunix:kmem", KERNEL_OTHER)
    SEGMAP_GETMAP = _register("segmap_getmapflt", "genunix:vm", KERNEL_OTHER)
    PAGE_LOOKUP = _register("page_lookup", "genunix:vm", KERNEL_OTHER)
    ANON_ZERO = _register("anon_zero", "genunix:vm", KERNEL_OTHER)
    TIMEOUT = _register("timeout", "genunix:callout", KERNEL_OTHER)
    GETHRTIME = _register("gethrtime", "genunix:time", KERNEL_OTHER)

    # ------------------------------------------------------------------ #
    # Kernel STREAMS subsystem (web)
    # ------------------------------------------------------------------ #
    PUTQ = _register("putq", "genunix:streams", STREAMS)
    GETQ = _register("getq", "genunix:streams", STREAMS)
    CANPUT = _register("canput", "genunix:streams", STREAMS)
    PUTNEXT = _register("putnext", "genunix:streams", STREAMS)
    ALLOCB = _register("allocb", "genunix:streams", STREAMS)
    FREEB = _register("freeb", "genunix:streams", STREAMS)
    STRREAD = _register("strread", "genunix:streams", STREAMS)
    STRWRITE = _register("strwrite", "genunix:streams", STREAMS)
    STRRPUT = _register("strrput", "genunix:streams", STREAMS)

    # ------------------------------------------------------------------ #
    # Kernel IP packet assembly (web)
    # ------------------------------------------------------------------ #
    IP_WPUT = _register("ip_wput", "ip", IP_ASSEMBLY)
    IP_OUTPUT = _register("ip_output", "ip", IP_ASSEMBLY)
    TCP_WPUT = _register("tcp_wput", "tcp", IP_ASSEMBLY)
    TCP_SEND_DATA = _register("tcp_send_data", "tcp", IP_ASSEMBLY)
    IP_HDR_ASSEMBLE = _register("ip_hdr_assemble", "ip", IP_ASSEMBLY)

    # ------------------------------------------------------------------ #
    # Web server worker threads
    # ------------------------------------------------------------------ #
    AP_PROCESS_REQUEST = _register("ap_process_request", "httpd", WEB_WORKER)
    AP_OUTPUT_FILTER = _register("ap_core_output_filter", "httpd", WEB_WORKER)
    AP_READ_REQUEST = _register("ap_read_request", "httpd", WEB_WORKER)
    ZEUS_WORKER = _register("zeus_worker_run", "zeus.web", WEB_WORKER)
    ZEUS_SENDFILE = _register("zeus_send_response", "zeus.web", WEB_WORKER)

    # ------------------------------------------------------------------ #
    # CGI / perl
    # ------------------------------------------------------------------ #
    PERL_SV_GETS = _register("Perl_sv_gets", "perl", PERL_INPUT)
    PERL_PP_CONST = _register("Perl_pp_const", "perl", PERL_ENGINE)
    PERL_PP_PRINT = _register("Perl_pp_print", "perl", PERL_ENGINE)
    PERL_PP_RETURN = _register("Perl_pp_return", "perl", PERL_ENGINE)
    PERL_PP_NEXTSTATE = _register("Perl_pp_nextstate", "perl", PERL_ENGINE)
    PERL_PP_CONCAT = _register("Perl_pp_concat", "perl", PERL_ENGINE)
    PERL_PP_GV = _register("Perl_pp_gv", "perl", PERL_ENGINE)
    PERL_RUNOPS = _register("Perl_runops_standard", "perl", PERL_ENGINE)
    PERL_HV_FETCH = _register("Perl_hv_fetch", "perl", PERL_OTHER)
    PERL_AV_FETCH = _register("Perl_av_fetch", "perl", PERL_OTHER)
    PERL_SV_SETPV = _register("Perl_sv_setpv", "perl", PERL_OTHER)
    PERL_NEWSV = _register("Perl_newSV", "perl", PERL_OTHER)

    # ------------------------------------------------------------------ #
    # Kernel block device driver (DB2)
    # ------------------------------------------------------------------ #
    BDEV_STRATEGY = _register("bdev_strategy", "genunix:driver", BLOCK_DEV)
    SD_START = _register("sd_start_cmds", "sd", BLOCK_DEV)
    SD_INTR = _register("sdintr", "sd", BLOCK_DEV)

    # ------------------------------------------------------------------ #
    # DB2 index, page and tuple accesses
    # ------------------------------------------------------------------ #
    SQLI_KEY_SEARCH = _register("sqliKeySearch", "db2:sqli", DB2_INDEX)
    SQLI_FETCH_NEXT = _register("sqliFetchNext", "db2:sqli", DB2_INDEX)
    SQLI_SCAN_LEAF = _register("sqliScanLeaf", "db2:sqli", DB2_INDEX)
    SQLI_INSERT = _register("sqliInsertKey", "db2:sqli", DB2_INDEX)
    SQLD_ROW_FETCH = _register("sqldRowFetch", "db2:sqld", DB2_INDEX)
    SQLD_ROW_UPDATE = _register("sqldRowUpdate", "db2:sqld", DB2_INDEX)
    SQLPG_READ_PAGE = _register("sqlpgReadPage", "db2:sqlpg", DB2_INDEX)
    SQLPG_FLUSH_PAGE = _register("sqlpgFlushPage", "db2:sqlpg", DB2_INDEX)
    SQLB_FIX_PAGE = _register("sqlbFixPage", "db2:sqlb", DB2_INDEX)

    # ------------------------------------------------------------------ #
    # DB2 SQL request control
    # ------------------------------------------------------------------ #
    SQLRR_OPEN = _register("sqlrr_open", "db2:sqlrr", DB2_REQUEST)
    SQLRR_FETCH = _register("sqlrr_fetch", "db2:sqlrr", DB2_REQUEST)
    SQLRR_COMMIT = _register("sqlrr_commit", "db2:sqlrr", DB2_REQUEST)
    SQLRA_CURSOR = _register("sqlra_cursor_update", "db2:sqlra", DB2_REQUEST)
    SQLRA_GET_SECTION = _register("sqlra_get_section", "db2:sqlra", DB2_REQUEST)

    # ------------------------------------------------------------------ #
    # DB2 interprocess communication
    # ------------------------------------------------------------------ #
    SQLE_IPC_SEND = _register("sqleIPCSend", "db2:sqle", DB2_IPC)
    SQLE_IPC_RECV = _register("sqleIPCRecv", "db2:sqle", DB2_IPC)
    SQLE_AGENT_DISPATCH = _register("sqleAgentDispatch", "db2:sqle", DB2_IPC)

    # ------------------------------------------------------------------ #
    # DB2 SQL runtime interpreter
    # ------------------------------------------------------------------ #
    SQLRI_FETCH = _register("sqlriFetch", "db2:sqlri", DB2_INTERP)
    SQLRI_EVAL = _register("sqlriEvalPred", "db2:sqlri", DB2_INTERP)
    SQLRI_AGGR = _register("sqlriAggr", "db2:sqlri", DB2_INTERP)
    SQLRI_JOIN = _register("sqlriNljnProbe", "db2:sqlri", DB2_INTERP)
    SQLRI_SORT = _register("sqlriSortInsert", "db2:sqlri", DB2_INTERP)

    # ------------------------------------------------------------------ #
    # DB2 - other activity
    # ------------------------------------------------------------------ #
    SQLO_LOCK = _register("sqloXlatchConflict", "db2:sqlo", DB2_OTHER)
    SQLP_LOCK_REQUEST = _register("sqlpLockRequest", "db2:sqlp", DB2_OTHER)
    SQLP_LOCK_RELEASE = _register("sqlpLockRelease", "db2:sqlp", DB2_OTHER)
    SQLP_XACT_TABLE = _register("sqlpWriteXactEntry", "db2:sqlp", DB2_OTHER)
    SQLZ_LOG_WRITE = _register("sqlzLogWrite", "db2:sqlz", DB2_OTHER)
    SQLE_PROCESS = _register("sqleProcessRequest", "db2:sqle", DB2_OTHER)
