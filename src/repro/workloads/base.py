"""Workload-modelling framework: ops, trace builder, and the CPU driver.

The synthetic workloads are written as Python generators that *yield*
:class:`Op` records (address, size, kind, function attribution, instruction
weight).  The :class:`WorkloadDriver` interleaves many such generators across
the simulated CPUs in quanta, invoking the Solaris kernel model (scheduler,
MMU, …) at the appropriate points, and appends the resulting
:class:`~repro.mem.records.Access` stream to an
:class:`~repro.mem.trace.AccessTrace`.

This mirrors how the paper's traces come about: many concurrent server
threads, migrating across processors under the Solaris dispatcher, touching
both private working state and shared structures.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, Generator, Iterable, Iterator,
                    List, NamedTuple, Optional, Sequence, Tuple)
from collections import deque

from ..mem.addrspace import AddressSpace
from ..mem.config import BLOCK_SIZE, PAGE_SIZE
from ..mem.records import Access, AccessKind, FunctionRef, UNKNOWN_FUNCTION
from ..mem.trace import AccessTrace
from ..obs.metrics import REGISTRY


@dataclass
class GenerationStats:
    """Process-wide count of workload generator runs.

    Every :meth:`Workload.iter_accesses` call (and therefore every
    :meth:`Workload.generate`) increments :attr:`runs`.  The trace
    capture/replay layer exists to keep this number at one per distinct
    ``(workload, n_cpus, seed, size)`` stream; tests assert on it to prove a
    simulation was served by replay instead of re-generating.
    """

    runs: int = 0

    def reset(self) -> None:
        self.runs = 0


#: Shared counter covering every workload instance in this process.
#: Registered into the unified metrics registry as ``generation.*``; the
#: module attribute stays the canonical increment site.
GENERATION_STATS = REGISTRY.register_stats("generation", GenerationStats())


class Op(NamedTuple):
    """One memory operation yielded by a workload generator."""

    addr: int
    size: int
    kind: AccessKind
    fn: FunctionRef
    icount: int


#: Type alias for workload generators.
OpStream = Iterator[Op]


def read(addr: int, fn: FunctionRef, size: int = 8, icount: int = 6) -> Op:
    """A cacheable load."""
    return Op(addr=addr, size=size, kind=AccessKind.READ, fn=fn, icount=icount)


def write(addr: int, fn: FunctionRef, size: int = 8, icount: int = 6) -> Op:
    """A cacheable store."""
    return Op(addr=addr, size=size, kind=AccessKind.WRITE, fn=fn, icount=icount)


def dma_write(addr: int, size: int, fn: FunctionRef, icount: int = 0) -> Op:
    """A device (DMA) write into memory; not issued by any CPU."""
    return Op(addr=addr, size=size, kind=AccessKind.DMA_WRITE, fn=fn,
              icount=icount)


def copyout_store(addr: int, size: int, fn: FunctionRef, icount: int = 2) -> Op:
    """A non-allocating kernel-to-user copy store (``default_copyout``)."""
    return Op(addr=addr, size=size, kind=AccessKind.COPYOUT_WRITE, fn=fn,
              icount=icount)


class TraceBuilder:
    """Accumulates the access trace and owns the synthetic address space.

    Emitted accesses go to a pluggable *sink*; by default the sink appends to
    :attr:`trace` (the historical, materialising behaviour).  The streaming
    driver temporarily redirects the sink (:meth:`redirect`) so accesses can
    be yielded to a consumer instead of being retained in memory.
    """

    def __init__(self, n_cpus: int, seed: int = 42) -> None:
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        self.n_cpus = n_cpus
        self.rng = random.Random(seed)
        self.space = AddressSpace()
        self.trace = AccessTrace()
        self._sink: Callable[[Access], None] = self.trace.append

    def emit(self, cpu: int, op: Op, thread: int = 0) -> None:
        """Send one op to the sink, attributing it to ``cpu``/``thread``."""
        actual_cpu = -1 if op.kind == AccessKind.DMA_WRITE else cpu
        self._sink(Access(cpu=actual_cpu, addr=op.addr, size=op.size,
                          kind=op.kind, fn=op.fn, thread=thread,
                          icount=op.icount))

    @contextmanager
    def redirect(self, sink: Callable[[Access], None]) -> Iterator[None]:
        """Temporarily send emitted accesses to ``sink`` instead of the trace."""
        previous = self._sink
        self._sink = sink
        try:
            yield
        finally:
            self._sink = previous

    def emit_ops(self, cpu: int, ops: Iterable[Op], thread: int = 0) -> int:
        """Append a burst of ops; returns the number emitted."""
        count = 0
        for op in ops:
            self.emit(cpu, op, thread=thread)
            count += 1
        return count


@dataclass
class Job:
    """One schedulable unit of work (a request, transaction, or query chunk)."""

    name: str
    #: Factory producing the job's op generator when the job first runs.
    factory: Callable[[], OpStream]
    #: Software thread id for trace attribution.
    thread: int = 0
    #: Populated lazily on first dispatch.
    _gen: Optional[OpStream] = None

    def generator(self) -> OpStream:
        if self._gen is None:
            self._gen = self.factory()
        return self._gen


class KernelHooks:
    """Interface the driver uses to invoke the OS model.

    The Solaris kernel model (:class:`repro.workloads.kernel.KernelModel`)
    implements this; the default implementation is a no-op so the framework
    can be exercised without an OS model in unit tests.
    """

    def on_dispatch(self, cpu: int, job: Job) -> Iterable[Op]:
        """Called when ``cpu`` picks up ``job`` from the run queue."""
        return ()

    def on_quantum_expire(self, cpu: int, job: Job) -> Iterable[Op]:
        """Called when ``job`` exhausts its time quantum on ``cpu``."""
        return ()

    def on_job_complete(self, cpu: int, job: Job) -> Iterable[Op]:
        """Called when ``job`` finishes on ``cpu``."""
        return ()

    def on_idle(self, cpu: int) -> Iterable[Op]:
        """Called when ``cpu`` finds no runnable job (work stealing)."""
        return ()

    def translate(self, cpu: int, op: Op) -> Iterable[Op]:
        """Called for every user-level op; may emit MMU-trap activity."""
        return ()


@dataclass
class DriverStats:
    """Counters describing one driver run (useful for tests/examples)."""

    dispatches: int = 0
    quantum_expirations: int = 0
    completions: int = 0
    idle_scans: int = 0
    user_ops: int = 0
    kernel_ops: int = 0


class WorkloadDriver:
    """Interleaves jobs across CPUs in quanta, invoking the kernel model.

    Parameters
    ----------
    builder:
        The :class:`TraceBuilder` receiving the access stream.
    kernel:
        Kernel hook implementation (scheduler, MMU, ...).
    quantum:
        Number of user-level ops a job may emit before the CPU switches to
        another runnable job.  Smaller quanta interleave CPUs more finely,
        fragmenting temporal streams; larger quanta preserve them.
    migration:
        If True (default) a preempted job goes back to the shared run queue
        and may resume on any CPU — this is what turns per-job working sets
        into coherence traffic on the multi-chip system.
    """

    def __init__(self, builder: TraceBuilder, kernel: Optional[KernelHooks] = None,
                 quantum: int = 48, migration: bool = True) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.builder = builder
        self.kernel = kernel if kernel is not None else KernelHooks()
        self.quantum = quantum
        self.migration = migration
        self.stats = DriverStats()

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[Job]) -> DriverStats:
        """Run all jobs to completion, materialising into the builder's trace."""
        trace = self.builder.trace
        for access in self.iter_run(jobs):
            trace.append(access)
        return self.stats

    def iter_run(self, jobs: Sequence[Job]) -> Iterator[Access]:
        """Run all jobs, lazily yielding the access stream.

        Yields exactly the accesses (in exactly the order) that :meth:`run`
        would append to the builder's trace, but retains nothing: memory use
        is bounded by one scheduling quantum instead of the whole trace.
        While the generator is being consumed the builder's sink is
        redirected, so nothing is appended to ``builder.trace`` either.
        """
        pending: List[Access] = []
        with self.builder.redirect(pending.append):
            run_queue: Deque[Job] = deque(jobs)
            n_cpus = self.builder.n_cpus
            current: List[Optional[Job]] = [None] * n_cpus
            active = True
            while active:
                active = False
                for cpu in range(n_cpus):
                    job = current[cpu]
                    if job is None:
                        if run_queue:
                            job = run_queue.popleft()
                            current[cpu] = job
                            self.stats.dispatches += 1
                            self._emit_kernel(cpu, self.kernel.on_dispatch(cpu, job))
                        else:
                            # Nothing runnable: the dispatcher scans other CPUs'
                            # queues looking for work to steal.
                            if any(c is not None for c in current):
                                self.stats.idle_scans += 1
                                self._emit_kernel(cpu, self.kernel.on_idle(cpu))
                            continue
                    active = True
                    finished = self._run_quantum(cpu, job)
                    if finished:
                        self.stats.completions += 1
                        self._emit_kernel(cpu, self.kernel.on_job_complete(cpu, job))
                        current[cpu] = None
                    else:
                        self.stats.quantum_expirations += 1
                        self._emit_kernel(cpu, self.kernel.on_quantum_expire(cpu, job))
                        if self.migration:
                            run_queue.append(job)
                            current[cpu] = None
                    if pending:
                        yield from pending
                        pending.clear()
            if pending:
                yield from pending

    # ------------------------------------------------------------------ #
    def _run_quantum(self, cpu: int, job: Job) -> bool:
        """Run ``job`` on ``cpu`` for one quantum; True if the job finished."""
        gen = job.generator()
        emitted = 0
        while emitted < self.quantum:
            try:
                op = next(gen)
            except StopIteration:
                return True
            for trap_op in self.kernel.translate(cpu, op):
                self.builder.emit(cpu, trap_op, thread=job.thread)
                self.stats.kernel_ops += 1
            self.builder.emit(cpu, op, thread=job.thread)
            self.stats.user_ops += 1
            emitted += 1
        return False

    def _emit_kernel(self, cpu: int, ops: Iterable[Op]) -> None:
        for op in ops:
            self.builder.emit(cpu, op)
            self.stats.kernel_ops += 1


class Workload:
    """Base class for the synthetic workload models.

    Subclasses construct their substrate in ``__init__`` (populating
    :attr:`builder` and :attr:`kernel`) and implement :meth:`jobs`; the base
    class provides both consumption modes of the access stream:

    * :meth:`iter_accesses` — lazily yields :class:`~repro.mem.records.Access`
      records as the driver schedules the jobs; nothing is retained, so
      memory stays bounded regardless of the work-volume preset.
    * :meth:`generate` — the historical eager API: drains the same stream
      into ``builder.trace`` and returns the materialised
      :class:`~repro.mem.trace.AccessTrace`.

    A workload instance is single-shot: both methods consume the same
    underlying job list and mutate substrate state (RNG, pools, caches), so
    create a fresh instance for each run.
    """

    #: Scheduling quantum handed to the driver (ops per dispatch).
    quantum: int = 80

    builder: TraceBuilder
    kernel: Optional[KernelHooks]

    #: Stats of the most recent driver created by :meth:`iter_accesses`.
    last_stats: Optional[DriverStats] = None

    def jobs(self) -> List[Job]:
        """Build the schedulable job list for one run."""
        raise NotImplementedError

    def make_driver(self) -> WorkloadDriver:
        return WorkloadDriver(self.builder, self.kernel, quantum=self.quantum)

    def iter_accesses(self) -> Iterator[Access]:
        """Lazily generate the access stream (O(quantum) memory)."""
        GENERATION_STATS.runs += 1
        driver = self.make_driver()
        self.last_stats = driver.stats
        return driver.iter_run(self.jobs())

    def generate(self) -> AccessTrace:
        """Run the workload eagerly and return the materialised trace."""
        trace = self.builder.trace
        for access in self.iter_accesses():
            trace.append(access)
        return trace
