"""B+-tree index model (Section 2.1, example one).

The B+-tree keeps a sorted index of records; each node holds a sorted key
list with child pointers, leaves point to tuple identifiers, and sibling
leaves are linked horizontally so range scans can walk the leaf level in key
order.  Because leaves are not contiguous in memory, a range scan produces a
pointer-chasing miss sequence that stride prefetchers cannot capture — but
overlapping range scans revisit the same leaves in the same order, producing
temporal streams that recur across processors.

The model allocates one cache block per inner node and per leaf, with leaves
deliberately scattered (allocation order shuffled) so leaf walks are
non-strided.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from ..mem.config import BLOCK_SIZE
from ..mem.records import FunctionRef
from .base import Op, OpStream, TraceBuilder, read, write
from .symbols import Sym


class BPlusTree:
    """A synthetic B+-tree over ``n_keys`` keys with the given fanout."""

    def __init__(self, builder: TraceBuilder, name: str, n_keys: int,
                 fanout: int = 16, keys_per_leaf: int = 32,
                 scatter_leaves: bool = True) -> None:
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if fanout < 2 or keys_per_leaf < 1:
            raise ValueError("fanout must be >= 2 and keys_per_leaf >= 1")
        self.builder = builder
        self.name = name
        self.n_keys = n_keys
        self.fanout = fanout
        self.keys_per_leaf = keys_per_leaf

        n_leaves = (n_keys + keys_per_leaf - 1) // keys_per_leaf
        # Count inner nodes level by level (bottom-up).
        level_sizes = [n_leaves]
        while level_sizes[-1] > 1:
            level_sizes.append((level_sizes[-1] + fanout - 1) // fanout)
        total_nodes = sum(level_sizes)
        region = builder.space.add_region(f"db.index.{name}",
                                          (total_nodes + 2) * BLOCK_SIZE)

        # Allocate leaves in shuffled order so the leaf level is non-strided.
        leaf_slots = list(range(n_leaves))
        if scatter_leaves:
            random.Random(builder.rng.randint(0, 2 ** 31)).shuffle(leaf_slots)
        addresses = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                     for _ in range(n_leaves)]
        self.leaves: List[int] = [0] * n_leaves
        for slot, addr in zip(leaf_slots, addresses):
            self.leaves[slot] = addr

        #: Inner levels, bottom-up; ``levels[-1]`` is the root level.
        self.levels: List[List[int]] = []
        for size in level_sizes[1:]:
            self.levels.append([region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                                for _ in range(size)])

    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Number of node levels from root to leaf, inclusive."""
        return len(self.levels) + 1

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def root(self) -> Optional[int]:
        return self.levels[-1][0] if self.levels else self.leaves[0]

    def _leaf_index(self, key: int) -> int:
        if not 0 <= key < self.n_keys:
            raise KeyError(f"key {key} out of range [0, {self.n_keys})")
        return key // self.keys_per_leaf

    def _path_to_leaf(self, leaf_index: int) -> List[int]:
        """Addresses of the inner nodes from root down to the leaf's parent."""
        # Walk bottom-up collecting the covering node at each level, then
        # reverse to obtain the root-to-parent order a search reads them in.
        path: List[int] = []
        index = leaf_index
        for level in self.levels:
            index = index // self.fanout
            path.append(level[min(index, len(level) - 1)])
        return list(reversed(path))

    # ------------------------------------------------------------------ #
    # Access generators
    # ------------------------------------------------------------------ #
    def search(self, key: int,
               fn: FunctionRef = Sym.SQLI_KEY_SEARCH) -> OpStream:
        """Root-to-leaf traversal with binary search within each node."""
        leaf_index = self._leaf_index(key)
        for node in self._path_to_leaf(leaf_index):
            yield read(node, fn, icount=14)
        yield read(self.leaves[leaf_index], fn, icount=14)

    def range_scan(self, start_key: int, n_keys: int,
                   fn: FunctionRef = Sym.SQLI_SCAN_LEAF) -> OpStream:
        """Locate ``start_key`` then walk sibling leaves covering ``n_keys``."""
        yield from self.search(start_key)
        first_leaf = self._leaf_index(start_key)
        last_key = min(start_key + max(n_keys, 1) - 1, self.n_keys - 1)
        last_leaf = self._leaf_index(last_key)
        for leaf_index in range(first_leaf, last_leaf + 1):
            yield read(self.leaves[leaf_index], Sym.SQLI_FETCH_NEXT, icount=10)

    def insert(self, key: int,
               fn: FunctionRef = Sym.SQLI_INSERT) -> OpStream:
        """Search to the covering leaf and update it in place (no splits)."""
        leaf_index = self._leaf_index(key)
        for node in self._path_to_leaf(leaf_index):
            yield read(node, fn, icount=12)
        yield read(self.leaves[leaf_index], fn, icount=12)
        yield write(self.leaves[leaf_index], fn, icount=8)
