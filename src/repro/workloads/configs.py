"""Application configurations (Table 1) and model scaling presets.

Table 1 of the paper lists the commercial application parameters:

==========  ==========================================================
OLTP        TPC-C on DB2: 100 warehouses (10 GB), 64 clients, 450 MB
            buffer pool
DSS Qry 1   TPC-H on DB2: scan-dominated, 450 MB buffer pool
DSS Qry 2   TPC-H on DB2: join-dominated, 450 MB buffer pool
DSS Qry 17  TPC-H on DB2: balanced scan-join, 450 MB buffer pool
Apache      SPECweb99: 16K connections, FastCGI, worker threading model
Zeus        SPECweb99: 16K connections, FastCGI
==========  ==========================================================

Because the substrate is a scaled-down synthetic model, each configuration
also records the *model scale* actually simulated; the ratios that drive the
paper's qualitative results (data footprint vs. cache capacity, hot metadata
vs. cache capacity, buffer reuse vs. no reuse) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class ApplicationConfig:
    """Description of one benchmark application (one Table 1 row)."""

    name: str
    app_class: str           # "Web", "OLTP", or "DSS"
    paper_parameters: str    # the Table 1 text
    model_parameters: Dict[str, int]
    description: str = ""


#: Sizing presets: each maps a preset name to a multiplier on the per-run
#: work volume (requests / transactions / pages scanned).
SIZE_PRESETS: Dict[str, float] = {
    "tiny": 0.08,      # unit tests
    "small": 0.35,     # quick experiments
    "default": 1.0,    # benchmark harness
    "large": 2.5,      # longer runs
}


TABLE1: Tuple[ApplicationConfig, ...] = (
    ApplicationConfig(
        name="OLTP",
        app_class="OLTP",
        paper_parameters="TPC-C 3.0 on DB2 v8 ESE: 100 warehouses (10 GB), "
                         "64 clients, 450 MB buffer pool",
        model_parameters={
            "n_transactions": 220,
            "n_clients": 16,
            "n_data_pages": 640,
            "n_pool_frames": 128,
            "hot_pages": 96,
            "index_keys": 8192,
        },
        description="New-order/payment style transaction mix over B+-tree "
                    "indexes and a buffer pool with a hot working set."),
    ApplicationConfig(
        name="Qry1",
        app_class="DSS",
        paper_parameters="TPC-H query 1 on DB2: scan-dominated, "
                         "450 MB buffer pool",
        model_parameters={
            "n_scan_pages": 420,
            "rows_per_page": 28,
            "n_pool_frames": 24,
            "n_partitions": 16,
        },
        description="Single-pass scan + aggregation over a table far larger "
                    "than the buffer pool."),
    ApplicationConfig(
        name="Qry2",
        app_class="DSS",
        paper_parameters="TPC-H query 2 on DB2: join-dominated, "
                         "450 MB buffer pool",
        model_parameters={
            "n_outer_pages": 48,
            "rows_per_outer_page": 36,
            "n_inner_pages": 18,
            "inner_index_keys": 1024,
            "n_pool_frames": 64,
            "n_partitions": 16,
        },
        description="Nested-loop join whose inner table exceeds the L1 but "
                    "fits on chip, probed repeatedly."),
    ApplicationConfig(
        name="Qry17",
        app_class="DSS",
        paper_parameters="TPC-H query 17 on DB2: balanced scan-join, "
                         "450 MB buffer pool",
        model_parameters={
            "n_scan_pages": 260,
            "rows_per_page": 24,
            "n_inner_pages": 14,
            "inner_index_keys": 768,
            "n_pool_frames": 48,
            "n_partitions": 16,
        },
        description="Large scan with a nested-loop probe against a small "
                    "dimension table."),
    ApplicationConfig(
        name="Apache",
        app_class="Web",
        paper_parameters="SPECweb99 on Apache HTTP Server v2.0: 16K "
                         "connections, FastCGI, worker threading model",
        model_parameters={
            "n_requests": 220,
            "n_connections": 48,
            "n_perl_processes": 6,
            "dynamic_permille": 700,
            "n_static_files": 32,
        },
        description="Worker-model HTTP server with FastCGI perl dynamic "
                    "content."),
    ApplicationConfig(
        name="Zeus",
        app_class="Web",
        paper_parameters="SPECweb99 on Zeus Web Server v4.3: 16K connections, "
                         "FastCGI",
        model_parameters={
            "n_requests": 220,
            "n_connections": 56,
            "n_perl_processes": 6,
            "dynamic_permille": 650,
            "n_static_files": 40,
        },
        description="Event-driven HTTP server with FastCGI perl dynamic "
                    "content."),
)

_BY_NAME = {cfg.name: cfg for cfg in TABLE1}

#: Names in the order the paper's figures present them.
WORKLOAD_NAMES: Tuple[str, ...] = ("Apache", "Zeus", "OLTP", "Qry1", "Qry2",
                                   "Qry17")


def get_config(name: str) -> ApplicationConfig:
    """Look up the configuration for a workload by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {WORKLOAD_NAMES}")


def scaled_parameter(config: ApplicationConfig, key: str, size: str) -> int:
    """A model parameter scaled by the chosen size preset.

    Only the *work volume* parameters scale with the preset; structural
    parameters (pool frames, index sizes) stay fixed so cache/footprint
    ratios are preserved.
    """
    factor = SIZE_PRESETS[size]
    value = config.model_parameters[key]
    volume_keys = {"n_transactions", "n_requests", "n_scan_pages",
                   "n_outer_pages"}
    if key in volume_keys:
        return max(4, int(round(value * factor)))
    return value
