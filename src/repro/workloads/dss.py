"""DSS workload models (TPC-H queries 1, 2, and 17 on the DB2 substrate).

Section 5.3 of the paper: DSS miss breakdowns are dominated by bulk memory
copies (half or more of all activity), mostly page-sized kernel-to-user
copies of data arriving from disk; unlike the web workloads these copies do
not reuse buffers and are non-repetitive.  Index and tuple accesses are the
second contributor but are also non-repetitive off-chip because the queries
scan data only once; the nested-loop joins of queries 2 and 17 loop over
table portions that exceed the L1 but fit on chip, producing intra-chip
repetition.

Three query models are provided, matching the paper's selection from the
DBmbench categorisation: query 1 (scan-dominated), query 2 (join-dominated),
and query 17 (balanced scan-join).  Each query is split into partitions so
all simulated CPUs participate, as DB2's intra-query parallelism would.
"""

from __future__ import annotations

from typing import Iterator, List

from ..mem.config import BLOCK_SIZE
from .base import Job, Op, OpStream, TraceBuilder, Workload, read, write
from .btree import BPlusTree
from .configs import ApplicationConfig, get_config, scaled_parameter
from .db2 import BufferPool, CursorPool, IpcChannel, PackageCache
from .kernel import KernelConfig, KernelModel
from .symbols import Sym


class DssWorkload(Workload):
    """One TPC-H-style decision-support query."""

    #: Long quanta: query threads run long stretches between preemptions.
    quantum = 160

    def __init__(self, query: int, n_cpus: int, seed: int = 42,
                 size: str = "default",
                 config: ApplicationConfig = None) -> None:
        if query not in (1, 2, 17):
            raise ValueError("query must be one of 1, 2, 17")
        self.query = query
        self.config = (config if config is not None
                       else get_config(f"Qry{query}"))
        self.size = size
        self.n_cpus = n_cpus
        self.builder = TraceBuilder(n_cpus=n_cpus, seed=seed)
        # DSS runs a handful of long-lived query threads: little scheduling
        # churn, little synchronization compared to OLTP/Web.
        self.kernel = KernelModel(self.builder,
                                  KernelConfig(steal_probability=0.12,
                                               cv_probability=0.1,
                                               window_trap_period=900))
        params = self.config.model_parameters
        self.n_partitions = params["n_partitions"]
        # The fact-table pool: frames are recycled constantly and the kernel
        # I/O buffers are NOT reused (fresh readahead buffers), making the
        # copies non-repetitive, as the paper observes.
        self.pool = BufferPool(self.builder, self.kernel, f"dss_q{query}",
                               n_frames=params["n_pool_frames"],
                               n_kernel_buffers=0)
        self.cursors = CursorPool(self.builder, n_agents=self.n_partitions)
        self.ipc = IpcChannel(self.builder, n_channels=4)
        self.package_cache = PackageCache(self.builder, n_sections=4)
        #: Aggregation state (a handful of group-by buckets, heavily written).
        region = self.builder.space.add_region("db.dss_agg",
                                               16 * BLOCK_SIZE)
        self.agg_state = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                          for _ in range(8)]
        # Join-side structures for queries 2 and 17.
        if query in (2, 17):
            self.inner_index = BPlusTree(self.builder, f"q{query}_inner",
                                         n_keys=params["inner_index_keys"])
            inner_region = self.builder.space.add_region(
                f"db.q{query}_inner_pages",
                params["n_inner_pages"] * 4096 + BLOCK_SIZE)
            self.inner_pages = [inner_region.alloc(4096, align=4096)
                                for _ in range(params["n_inner_pages"])]
        else:
            self.inner_index = None
            self.inner_pages = []
        self._next_page_id = 0

    # ------------------------------------------------------------------ #
    def _fresh_page_id(self) -> int:
        """Fact-table page ids are monotonically increasing: visited once."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def _aggregate(self, n_groups: int = 2) -> OpStream:
        """sqlriAggr: update a few group-by buckets."""
        rng = self.builder.rng
        for _ in range(max(1, n_groups)):
            bucket = self.agg_state[rng.randrange(len(self.agg_state))]
            yield read(bucket, Sym.SQLRI_AGGR, icount=10)
            yield write(bucket, Sym.SQLRI_AGGR, icount=6)

    def _probe_inner(self, key_hint: int) -> OpStream:
        """Nested-loop probe: index search plus a read of the matching row."""
        assert self.inner_index is not None
        key = key_hint % self.inner_index.n_keys
        yield from self.inner_index.search(key, fn=Sym.SQLRI_JOIN)
        page = self.inner_pages[key % len(self.inner_pages)]
        slot = (key * 67) % (4096 // BLOCK_SIZE)
        yield read(page + slot * BLOCK_SIZE, Sym.SQLD_ROW_FETCH, icount=14)

    # ------------------------------------------------------------------ #
    # Query partitions
    # ------------------------------------------------------------------ #
    def _scan_partition(self, partition: int, n_pages: int,
                        rows_per_page: int, probe_every: int = 0) -> OpStream:
        """Scan ``n_pages`` fresh fact-table pages, aggregating as we go."""
        yield from self.ipc.receive_request(partition)
        yield from self.cursors.open(partition)
        yield from self.package_cache.load_section(0)
        rng = self.builder.rng
        for _ in range(n_pages):
            page_id = self._fresh_page_id()
            yield from self.pool.scan_page(page_id, rows_per_page)
            yield from self._aggregate(2)
            if probe_every and rng.random() < probe_every / 100.0:
                yield from self._probe_inner(rng.randrange(1 << 16))
        yield from self.cursors.commit(partition)
        yield from self.ipc.send_response(partition)

    def _join_partition(self, partition: int, n_outer_pages: int,
                        rows_per_outer_page: int) -> OpStream:
        """Nested-loop join: every outer row probes the inner index."""
        yield from self.ipc.receive_request(partition)
        yield from self.cursors.open(partition)
        yield from self.package_cache.load_section(1)
        rng = self.builder.rng
        for _ in range(n_outer_pages):
            page_id = self._fresh_page_id()
            yield from self.pool.fix_page(page_id)
            frame = self.pool.page_address(page_id)
            for row in range(rows_per_outer_page):
                if frame is not None:
                    yield read(frame + (row * 96) % 4096, Sym.SQLD_ROW_FETCH,
                               icount=12)
                yield from self._probe_inner(rng.randrange(1 << 16))
                if row % 6 == 0:
                    yield from self._aggregate(1)
        yield from self.cursors.commit(partition)
        yield from self.ipc.send_response(partition)

    # ------------------------------------------------------------------ #
    def jobs(self) -> List[Job]:
        params = self.config.model_parameters
        jobs: List[Job] = []
        if self.query == 1:
            total_pages = scaled_parameter(self.config, "n_scan_pages",
                                           self.size)
            rows = params["rows_per_page"]
            per_partition = max(1, total_pages // self.n_partitions)
            for p in range(self.n_partitions):
                jobs.append(Job(
                    name=f"q1_scan[{p}]",
                    factory=lambda p=p: self._scan_partition(
                        p, per_partition, rows),
                    thread=p))
        elif self.query == 2:
            total_outer = scaled_parameter(self.config, "n_outer_pages",
                                           self.size)
            rows = params["rows_per_outer_page"]
            per_partition = max(1, total_outer // self.n_partitions)
            for p in range(self.n_partitions):
                jobs.append(Job(
                    name=f"q2_join[{p}]",
                    factory=lambda p=p: self._join_partition(
                        p, per_partition, rows),
                    thread=p))
        else:  # query 17: balanced scan + join
            total_pages = scaled_parameter(self.config, "n_scan_pages",
                                           self.size)
            rows = params["rows_per_page"]
            per_partition = max(1, total_pages // self.n_partitions)
            for p in range(self.n_partitions):
                jobs.append(Job(
                    name=f"q17_mixed[{p}]",
                    factory=lambda p=p: self._scan_partition(
                        p, per_partition, rows, probe_every=60),
                    thread=p))
        return jobs
