"""DB2-like database engine substrate: buffer pool, locks, log, metadata.

The OLTP and DSS workload models are built from these components.  Each
component owns a region of the synthetic address space and exposes generator
methods yielding :class:`~repro.workloads.base.Op` records with DB2-style
function attribution, so the code-module analysis (Tables 4 and 5) sees the
same categories the paper reports:

* ``BufferPool`` — page frames in user space, filled from disk through the
  kernel block-device driver (DMA into kernel buffers) and ``copyout`` into
  the frames; tuple/index page accesses come from here (``sqlb``/``sqld``/
  ``sqlpg`` modules).
* ``LockManager`` — the row/table lock hash table (``sqlp`` module); shared,
  read-write, and therefore a coherence-miss producer.
* ``TransactionTable`` and ``TransactionLog`` — transaction metadata and the
  sequential log buffer.
* ``PackageCache`` — compiled statement sections, read-mostly.
* ``IpcChannel`` — request/response buffers between client and server
  processes (``sqle`` module).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from ..mem.config import BLOCK_SIZE, PAGE_SIZE
from ..mem.records import FunctionRef
from .base import Op, OpStream, TraceBuilder, read, write
from .kernel import KernelModel, copyout
from .symbols import Sym


class BufferPool:
    """Database buffer pool backed by synthetic disk I/O.

    Parameters
    ----------
    n_frames:
        Number of page frames in the pool.  Once the pool is full, the least
        recently used page is evicted to make room (its frame is reused).
    n_kernel_buffers:
        Number of kernel I/O buffer pages the filesystem DMA path rotates
        over.  A small number means buffers are aggressively reused (web-like
        behaviour, repetitive copies); ``0`` allocates a fresh kernel buffer
        for every read (DSS-like behaviour, non-repetitive copies).
    """

    def __init__(self, builder: TraceBuilder, kernel: KernelModel, name: str,
                 n_frames: int, n_kernel_buffers: int = 8) -> None:
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        self.builder = builder
        self.kernel = kernel
        self.name = name
        self.page_size = PAGE_SIZE
        region = builder.space.add_region(
            f"db.bufferpool.{name}",
            n_frames * PAGE_SIZE + 64 * BLOCK_SIZE)
        #: Page frames (user-space destination of copyout).
        self.frames = [region.alloc(PAGE_SIZE, align=PAGE_SIZE)
                       for _ in range(n_frames)]
        #: Hash-bucket blocks for the page table (bufferpool directory).
        self.directory = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                          for _ in range(32)]
        self._resident: "OrderedDict[int, int]" = OrderedDict()  # page -> frame
        self._free = list(range(n_frames))
        # Kernel-side I/O staging buffers.
        self._reuse_kernel_buffers = n_kernel_buffers > 0
        io_region = builder.space.add_region(
            f"kernel.io.{name}",
            max(n_kernel_buffers, 1) * PAGE_SIZE if self._reuse_kernel_buffers
            else (1 << 34))
        if self._reuse_kernel_buffers:
            self._kernel_buffers = [io_region.alloc(PAGE_SIZE, align=PAGE_SIZE)
                                    for _ in range(n_kernel_buffers)]
        else:
            self._io_region = io_region
            self._kernel_buffers = []
        self._next_kernel_buffer = 0
        # Statistics.
        self.page_hits = 0
        self.page_misses = 0

    # ------------------------------------------------------------------ #
    def _next_io_buffer(self) -> int:
        """The kernel page the next disk read is DMA'd into."""
        if self._reuse_kernel_buffers:
            buf = self._kernel_buffers[self._next_kernel_buffer
                                       % len(self._kernel_buffers)]
            self._next_kernel_buffer += 1
            return buf
        return self._io_region.alloc(PAGE_SIZE, align=PAGE_SIZE)

    def _frame_for(self, page_id: int) -> Tuple[int, bool]:
        """Return (frame address, was_resident) for ``page_id``."""
        frame = self._resident.get(page_id)
        if frame is not None:
            self._resident.move_to_end(page_id)
            self.page_hits += 1
            return self.frames[frame], True
        self.page_misses += 1
        if self._free:
            index = self._free.pop()
        else:
            _victim_page, index = self._resident.popitem(last=False)
        self._resident[page_id] = index
        return self.frames[index], False

    def preload(self, page_ids) -> int:
        """Mark pages resident without emitting any accesses (warm start).

        Models the paper's warmed-up state in which the hot working set is
        already in the buffer pool when tracing begins; the cache simulator
        still sees the first post-warm-up access to each block as a
        compulsory miss, but no disk-read/copyout traffic is fabricated.
        Returns the number of pages actually preloaded (bounded by the
        number of free frames).
        """
        loaded = 0
        for page_id in page_ids:
            if not self._free:
                break
            if page_id in self._resident:
                continue
            index = self._free.pop()
            self._resident[page_id] = index
            loaded += 1
        return loaded

    def resident(self, page_id: int) -> bool:
        return page_id in self._resident

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    # ------------------------------------------------------------------ #
    def fix_page(self, page_id: int,
                 fn: FunctionRef = Sym.SQLB_FIX_PAGE) -> OpStream:
        """Pin a page in the pool, reading it from disk if necessary."""
        bucket = self.directory[page_id % len(self.directory)]
        yield read(bucket, fn, icount=10)
        frame, resident = self._frame_for(page_id)
        if not resident:
            # Read the page from disk: driver + DMA into a kernel buffer,
            # then a kernel-to-user bulk copy into the frame.
            kernel_buf = self._next_io_buffer()
            yield from self.kernel.blockdev.disk_read(kernel_buf,
                                                      size=self.page_size)
            yield from copyout(kernel_buf, frame, self.page_size)
            yield write(bucket, Sym.SQLPG_READ_PAGE, icount=8)
        # Page header access (pin count, LSN).
        yield read(frame, fn, icount=8)
        return frame

    def page_address(self, page_id: int) -> Optional[int]:
        """Frame address of a resident page (None if not resident)."""
        frame = self._resident.get(page_id)
        return self.frames[frame] if frame is not None else None

    def scan_page(self, page_id: int, n_rows: int,
                  fn: FunctionRef = Sym.SQLD_ROW_FETCH,
                  row_bytes: int = 128) -> OpStream:
        """Fix a page then read ``n_rows`` sequential rows from it."""
        frame = yield from self.fix_page(page_id)
        offset = 0
        for _ in range(max(1, n_rows)):
            yield read(frame + (offset % self.page_size), fn,
                       size=row_bytes, icount=18)
            offset += row_bytes

    def access_row(self, page_id: int, row_hash: int, update: bool = False,
                   fn: FunctionRef = Sym.SQLD_ROW_FETCH) -> OpStream:
        """Fix a page and access (optionally update) one row on it."""
        frame = yield from self.fix_page(page_id)
        slot = (row_hash * 131) % (self.page_size // BLOCK_SIZE)
        addr = frame + slot * BLOCK_SIZE
        yield read(addr, fn, icount=20)
        if update:
            yield write(addr, Sym.SQLD_ROW_UPDATE, icount=12)


class LockManager:
    """DB2 row/table lock hash table (``sqlp`` module)."""

    def __init__(self, builder: TraceBuilder, n_buckets: int = 64) -> None:
        region = builder.space.add_region("db.lockmgr",
                                          (n_buckets + 2) * BLOCK_SIZE)
        self.buckets = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                        for _ in range(n_buckets)]
        self.latch = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)

    def acquire(self, resource: int) -> OpStream:
        bucket = self.buckets[resource % len(self.buckets)]
        yield read(self.latch, Sym.SQLO_LOCK, icount=4)
        yield write(self.latch, Sym.SQLO_LOCK, icount=4)
        yield read(bucket, Sym.SQLP_LOCK_REQUEST, icount=10)
        yield write(bucket, Sym.SQLP_LOCK_REQUEST, icount=8)
        yield write(self.latch, Sym.SQLO_LOCK, icount=3)

    def release(self, resource: int) -> OpStream:
        bucket = self.buckets[resource % len(self.buckets)]
        yield read(self.latch, Sym.SQLO_LOCK, icount=4)
        yield write(self.latch, Sym.SQLO_LOCK, icount=4)
        yield read(bucket, Sym.SQLP_LOCK_RELEASE, icount=8)
        yield write(bucket, Sym.SQLP_LOCK_RELEASE, icount=6)
        yield write(self.latch, Sym.SQLO_LOCK, icount=3)


class TransactionTable:
    """Active transaction table (shared read-write metadata)."""

    def __init__(self, builder: TraceBuilder, n_entries: int = 32) -> None:
        region = builder.space.add_region("db.xact_table",
                                          (n_entries + 1) * BLOCK_SIZE)
        self.entries = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                        for _ in range(n_entries)]
        self.anchor = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)

    def begin(self, xact_id: int) -> OpStream:
        yield read(self.anchor, Sym.SQLP_XACT_TABLE, icount=6)
        yield write(self.anchor, Sym.SQLP_XACT_TABLE, icount=6)
        yield write(self.entries[xact_id % len(self.entries)],
                    Sym.SQLP_XACT_TABLE, icount=8)

    def commit(self, xact_id: int) -> OpStream:
        yield read(self.entries[xact_id % len(self.entries)],
                   Sym.SQLP_XACT_TABLE, icount=6)
        yield write(self.entries[xact_id % len(self.entries)],
                    Sym.SQLP_XACT_TABLE, icount=8)
        yield write(self.anchor, Sym.SQLP_XACT_TABLE, icount=4)


class TransactionLog:
    """Sequential write-ahead log buffer with periodic forced flushes."""

    def __init__(self, builder: TraceBuilder, kernel: KernelModel,
                 buffer_pages: int = 8, flush_interval: int = 16) -> None:
        self.kernel = kernel
        self.flush_interval = max(1, flush_interval)
        region = builder.space.add_region("db.log",
                                          buffer_pages * PAGE_SIZE + BLOCK_SIZE)
        self.buffer_base = region.alloc(buffer_pages * PAGE_SIZE,
                                        align=PAGE_SIZE)
        self.buffer_bytes = buffer_pages * PAGE_SIZE
        self.anchor = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
        self._cursor = 0
        self._appends = 0

    def append(self, n_bytes: int = 192) -> OpStream:
        """Append a log record (sequential, strided writes)."""
        yield read(self.anchor, Sym.SQLZ_LOG_WRITE, icount=6)
        yield write(self.anchor, Sym.SQLZ_LOG_WRITE, icount=4)
        for offset in range(0, max(n_bytes, 1), BLOCK_SIZE):
            addr = self.buffer_base + (self._cursor + offset) % self.buffer_bytes
            yield write(addr, Sym.SQLZ_LOG_WRITE, size=BLOCK_SIZE, icount=6)
        self._cursor = (self._cursor + n_bytes) % self.buffer_bytes
        self._appends += 1
        if self._appends % self.flush_interval == 0:
            yield from self.kernel.blockdev.disk_write(self.buffer_base,
                                                       size=PAGE_SIZE)


class PackageCache:
    """Compiled statement sections and access plans (read-mostly)."""

    def __init__(self, builder: TraceBuilder, n_sections: int = 16,
                 blocks_per_section: int = 12) -> None:
        region = builder.space.add_region(
            "db.package_cache", n_sections * blocks_per_section * BLOCK_SIZE)
        self.sections = [
            [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
             for _ in range(blocks_per_section)]
            for _ in range(n_sections)]

    def load_section(self, section_id: int) -> OpStream:
        """``sqlra_get_section``: read the compiled plan for a statement."""
        for block in self.sections[section_id % len(self.sections)]:
            yield read(block, Sym.SQLRA_GET_SECTION, icount=8)


class CursorPool:
    """Per-agent cursor / request-control blocks (``sqlrr``/``sqlra``)."""

    def __init__(self, builder: TraceBuilder, n_agents: int = 32,
                 blocks_per_agent: int = 4) -> None:
        region = builder.space.add_region(
            "db.cursors", n_agents * blocks_per_agent * BLOCK_SIZE)
        self.agents = [
            [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
             for _ in range(blocks_per_agent)]
            for _ in range(n_agents)]

    def open(self, agent_id: int) -> OpStream:
        blocks = self.agents[agent_id % len(self.agents)]
        yield read(blocks[0], Sym.SQLRR_OPEN, icount=10)
        yield write(blocks[0], Sym.SQLRR_OPEN, icount=8)
        yield write(blocks[1], Sym.SQLRA_CURSOR, icount=6)

    def fetch(self, agent_id: int) -> OpStream:
        blocks = self.agents[agent_id % len(self.agents)]
        yield read(blocks[1], Sym.SQLRR_FETCH, icount=8)
        yield write(blocks[1], Sym.SQLRA_CURSOR, icount=6)
        yield read(blocks[2], Sym.SQLRR_FETCH, icount=6)

    def commit(self, agent_id: int) -> OpStream:
        blocks = self.agents[agent_id % len(self.agents)]
        yield read(blocks[0], Sym.SQLRR_COMMIT, icount=8)
        yield write(blocks[0], Sym.SQLRR_COMMIT, icount=8)
        yield write(blocks[3], Sym.SQLRR_COMMIT, icount=4)


class IpcChannel:
    """Client/server request and response buffers (``sqle`` module)."""

    def __init__(self, builder: TraceBuilder, n_channels: int = 16,
                 buffer_blocks: int = 4) -> None:
        region = builder.space.add_region(
            "db.ipc", n_channels * (buffer_blocks + 1) * BLOCK_SIZE)
        self.channels = [
            ([region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
              for _ in range(buffer_blocks)],
             region.alloc(BLOCK_SIZE, align=BLOCK_SIZE))
            for _ in range(n_channels)]

    def receive_request(self, channel_id: int) -> OpStream:
        buffers, control = self.channels[channel_id % len(self.channels)]
        yield read(control, Sym.SQLE_AGENT_DISPATCH, icount=8)
        yield write(control, Sym.SQLE_AGENT_DISPATCH, icount=6)
        for block in buffers:
            yield read(block, Sym.SQLE_IPC_RECV, icount=6)

    def send_response(self, channel_id: int) -> OpStream:
        buffers, control = self.channels[channel_id % len(self.channels)]
        for block in buffers:
            yield write(block, Sym.SQLE_IPC_SEND, icount=6)
        yield write(control, Sym.SQLE_IPC_SEND, icount=4)
