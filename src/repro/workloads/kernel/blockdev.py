"""Block device driver model (disk I/O path for the database workloads).

Table 2 ("Kernel block device driver"): a small number of functions that
manage I/O to block devices such as disks.  A disk read touches the buf
structure, the driver's per-device state, and the DMA scatter/gather setup,
then the device DMAs the page into the destination buffer.
"""

from __future__ import annotations

from typing import Iterator

from ...mem.config import BLOCK_SIZE, PAGE_SIZE
from ..base import Op, TraceBuilder, dma_write, read, write
from ..symbols import Sym


class BlockDeviceModel:
    """Memory behaviour of the sd/ssd disk driver path."""

    def __init__(self, builder: TraceBuilder, n_bufs: int = 16,
                 n_devices: int = 4) -> None:
        self.builder = builder
        region = builder.space.add_region(
            "kernel.blockdev", (n_bufs + 2 * n_devices) * BLOCK_SIZE)
        #: buf_t structures, reused round-robin.
        self.bufs = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                     for _ in range(n_bufs)]
        #: Per-device driver soft-state + queue blocks.
        self.devices = [(region.alloc(BLOCK_SIZE, align=BLOCK_SIZE),
                         region.alloc(BLOCK_SIZE, align=BLOCK_SIZE))
                        for _ in range(n_devices)]
        self._next_buf = 0

    def disk_read(self, dest_addr: int, size: int = PAGE_SIZE,
                  device: int = 0) -> Iterator[Op]:
        """Issue a disk read of ``size`` bytes DMA'd into ``dest_addr``."""
        buf = self.bufs[self._next_buf % len(self.bufs)]
        self._next_buf += 1
        state, queue = self.devices[device % len(self.devices)]
        yield read(buf, Sym.BDEV_STRATEGY)
        yield write(buf, Sym.BDEV_STRATEGY)
        yield read(state, Sym.SD_START)
        yield write(queue, Sym.SD_START)
        # The device transfers the data into memory.
        yield dma_write(dest_addr, size, Sym.SD_INTR)
        # Completion interrupt: driver updates its state and the buf.
        yield read(queue, Sym.SD_INTR)
        yield write(state, Sym.SD_INTR)
        yield write(buf, Sym.SD_INTR)

    def disk_write(self, src_addr: int, size: int = PAGE_SIZE,
                   device: int = 0) -> Iterator[Op]:
        """Issue a disk write (e.g. flushing a dirty page or the log)."""
        buf = self.bufs[self._next_buf % len(self.bufs)]
        self._next_buf += 1
        state, queue = self.devices[device % len(self.devices)]
        yield read(buf, Sym.BDEV_STRATEGY)
        yield write(buf, Sym.BDEV_STRATEGY)
        # The driver reads the source data to feed the device (block granular).
        first = src_addr - src_addr % BLOCK_SIZE
        for offset in range(0, max(size, 1), BLOCK_SIZE * 8):
            yield read(first + offset, Sym.SD_START, size=BLOCK_SIZE)
        yield read(state, Sym.SD_START)
        yield write(queue, Sym.SD_START)
        yield write(buf, Sym.SD_INTR)
