"""Bulk memory copy model: memcpy/bcopy and the ``default_copyout`` family.

Table 2 ("Bulk memory copies"): kernel and user memory-copy functions.  The
most notable is ``default_copyout``, which copies the results of I/O arriving
via DMA from kernel buffers to user buffers using non-allocating stores.

A bulk copy of N bytes appears in the trace as block-granular reads of the
source buffer plus stores to the destination; for ``copyout`` the stores are
:class:`~repro.mem.records.AccessKind.COPYOUT_WRITE` so the destination
blocks are invalidated rather than allocated, and later reads of them
classify as I/O-coherence misses.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...mem.config import BLOCK_SIZE
from ...mem.records import FunctionRef
from ..base import Op, copyout_store, read, write
from ..symbols import Sym


def _blocks(addr: int, size: int) -> Iterator[int]:
    first = addr - addr % BLOCK_SIZE
    last = addr + max(size, 1) - 1
    last -= last % BLOCK_SIZE
    block = first
    while True:
        yield block
        if block >= last:
            break
        block += BLOCK_SIZE


def bulk_copy(src: int, dst: int, size: int,
              fn: Optional[FunctionRef] = None) -> Iterator[Op]:
    """An ordinary cacheable copy (``memcpy``/``bcopy``)."""
    fn = fn if fn is not None else Sym.BCOPY
    for src_block, dst_block in zip(_blocks(src, size), _blocks(dst, size)):
        yield read(src_block, fn, size=BLOCK_SIZE, icount=4)
        yield write(dst_block, fn, size=BLOCK_SIZE, icount=4)


def copyout(src: int, dst: int, size: int,
            fn: Optional[FunctionRef] = None) -> Iterator[Op]:
    """Kernel-to-user copy with non-allocating destination stores."""
    fn = fn if fn is not None else Sym.DEFAULT_COPYOUT
    for src_block, dst_block in zip(_blocks(src, size), _blocks(dst, size)):
        yield read(src_block, fn, size=BLOCK_SIZE, icount=4)
        yield copyout_store(dst_block, BLOCK_SIZE, fn, icount=2)


def copyin(src: int, dst: int, size: int,
           fn: Optional[FunctionRef] = None) -> Iterator[Op]:
    """User-to-kernel copy (ordinary cacheable stores on the kernel side)."""
    fn = fn if fn is not None else Sym.DEFAULT_COPYIN
    for src_block, dst_block in zip(_blocks(src, size), _blocks(dst, size)):
        yield read(src_block, fn, size=BLOCK_SIZE, icount=4)
        yield write(dst_block, fn, size=BLOCK_SIZE, icount=4)
