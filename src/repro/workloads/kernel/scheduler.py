"""Solaris dispatcher model: per-CPU dispatch queues and work stealing.

Section 2.1 (example two) describes the behaviour this model reproduces:
Solaris keeps one dispatch queue per processor plus a real-time queue, each
protected by its own lock.  When a CPU's own queue is empty it scans the
other queues in a fixed order (``disp_getwork`` / ``disp_getbest``), removes
a thread (``dispdeq``) and re-checks priorities (``disp_ratify``).  Because
every CPU scans the queues in the same order and the locks live at fixed
addresses, the resulting miss sequences are highly repetitive and, in the
multi-chip system, almost entirely coherence misses.
"""

from __future__ import annotations

from typing import Iterator, List

from ...mem.config import BLOCK_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class DispatcherModel:
    """Models the memory behaviour of the Solaris per-CPU dispatcher."""

    #: Blocks per dispatch queue: lock, queue header, priority bitmap.
    _QUEUE_BLOCKS = 3

    def __init__(self, builder: TraceBuilder, n_threads: int = 64) -> None:
        self.builder = builder
        n_cpus = builder.n_cpus
        space = builder.space
        region = space.add_region(
            "kernel.dispatcher",
            (n_cpus + 1) * self._QUEUE_BLOCKS * BLOCK_SIZE
            + n_threads * BLOCK_SIZE + 4 * BLOCK_SIZE)
        #: Real-time queue blocks (scanned first by every CPU).
        self.realtime_queue = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                               for _ in range(self._QUEUE_BLOCKS)]
        #: Per-CPU dispatch queue blocks.
        self.cpu_queues: List[List[int]] = [
            [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
             for _ in range(self._QUEUE_BLOCKS)]
            for _ in range(n_cpus)]
        #: kthread_t structures, one block each (indexed by thread id mod pool).
        self.threads = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                        for _ in range(n_threads)]
        #: cpu_t / global dispatcher state.
        self.cpu_global = region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)

    # ------------------------------------------------------------------ #
    def thread_struct(self, thread: int) -> int:
        return self.threads[thread % len(self.threads)]

    # ------------------------------------------------------------------ #
    # Dispatcher entry points (generators of Ops)
    # ------------------------------------------------------------------ #
    def enqueue(self, cpu: int, thread: int) -> Iterator[Op]:
        """``setbackdq``: put a runnable thread on a CPU's dispatch queue."""
        queue = self.cpu_queues[cpu % len(self.cpu_queues)]
        yield read(queue[0], Sym.SETBACKDQ)            # queue lock
        yield write(queue[0], Sym.SETBACKDQ)
        yield read(queue[1], Sym.SETBACKDQ)            # queue header
        yield write(queue[1], Sym.SETBACKDQ)
        yield write(self.thread_struct(thread), Sym.SETBACKDQ)
        yield write(queue[0], Sym.SETBACKDQ, icount=3)  # unlock

    def pick_local(self, cpu: int, thread: int) -> Iterator[Op]:
        """``swtch``/``dispdeq`` on the CPU's own queue."""
        queue = self.cpu_queues[cpu % len(self.cpu_queues)]
        yield read(self.cpu_global, Sym.SWTCH)
        yield read(queue[0], Sym.SWTCH)                # own queue lock
        yield write(queue[0], Sym.DISPDEQ)
        yield read(queue[1], Sym.DISPDEQ)              # queue header
        yield read(queue[2], Sym.DISPDEQ)              # priority bitmap
        yield write(queue[1], Sym.DISPDEQ)
        yield read(self.thread_struct(thread), Sym.SWTCH)
        yield write(self.thread_struct(thread), Sym.SWTCH)
        yield write(queue[0], Sym.DISPDEQ, icount=3)

    def steal_work(self, cpu: int, thread: int, found: bool = True,
                   scan_limit: int = 0) -> Iterator[Op]:
        """``disp_getwork``: scan the queues in fixed order, then steal.

        All CPUs perform this scan in the same order (real-time queue first,
        then the per-CPU queues), which is exactly what makes the resulting
        miss sequence a temporal stream shared across processors.  The scan
        stops as soon as a non-empty queue is found; ``scan_limit`` bounds
        how many per-CPU queues are examined (0 means all of them).
        """
        yield read(self.cpu_global, Sym.DISP_GETWORK)
        yield read(self.realtime_queue[0], Sym.DISP_GETWORK)
        yield read(self.realtime_queue[1], Sym.DISP_GETWORK)
        n_scanned = len(self.cpu_queues) if scan_limit <= 0 else \
            min(scan_limit, len(self.cpu_queues))
        for queue in self.cpu_queues[:n_scanned]:
            yield read(queue[1], Sym.DISP_GETWORK)     # queue header
        if found:
            victim = self.cpu_queues[(cpu + 1) % len(self.cpu_queues)]
            yield read(victim[0], Sym.DISP_GETBEST)
            yield write(victim[0], Sym.DISP_GETBEST)
            yield read(victim[1], Sym.DISP_GETBEST)
            yield read(victim[2], Sym.DISP_GETBEST)
            yield read(self.thread_struct(thread), Sym.DISPDEQ)
            yield write(victim[1], Sym.DISPDEQ)
            yield write(victim[0], Sym.DISPDEQ)
            own = self.cpu_queues[cpu % len(self.cpu_queues)]
            yield read(own[1], Sym.DISP_RATIFY)
            yield read(self.realtime_queue[1], Sym.DISP_RATIFY)

    def tick(self, cpu: int, thread: int) -> Iterator[Op]:
        """``ts_tick``/``cpu_resched``: bookkeeping at quantum expiration."""
        yield read(self.thread_struct(thread), Sym.TS_TICK)
        yield write(self.thread_struct(thread), Sym.TS_TICK)
        yield read(self.cpu_global, Sym.CPU_RESCHED)
