"""Solaris synchronization primitive model: mutexes and condition variables.

Table 2 ("Kernel synchronization primitives"): Solaris-supplied mutex and
condition-variable primitives, including the linked lists of threads waiting
on them.  These structures live at fixed addresses and are written by every
acquiring CPU, so in the multi-chip context they are classic coherence-miss
producers with highly repetitive access sequences (lock word, turnstile,
sleep-queue head, waiter list).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ...mem.config import BLOCK_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class SyncModel:
    """Models kernel mutexes, turnstiles, and condition variables."""

    def __init__(self, builder: TraceBuilder, n_locks: int = 32,
                 n_condvars: int = 16) -> None:
        self.builder = builder
        region = builder.space.add_region(
            "kernel.sync",
            (n_locks + 2 * n_condvars + n_locks) * BLOCK_SIZE)
        #: mutex lock words (one block each, as adaptive mutexes pad to a line).
        self.locks = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                      for _ in range(n_locks)]
        #: turnstile structures, hashed by lock.
        self.turnstiles = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                           for _ in range(n_locks)]
        #: condition variables: cv word + sleep-queue head.
        self.condvars = [(region.alloc(BLOCK_SIZE, align=BLOCK_SIZE),
                          region.alloc(BLOCK_SIZE, align=BLOCK_SIZE))
                         for _ in range(n_condvars)]

    # ------------------------------------------------------------------ #
    def mutex_enter(self, lock_id: int, contended: bool = False) -> Iterator[Op]:
        """Acquire kernel mutex ``lock_id`` (fast path or adaptive spin)."""
        lock = self.locks[lock_id % len(self.locks)]
        yield read(lock, Sym.MUTEX_ENTER, icount=3)
        yield write(lock, Sym.MUTEX_ENTER, icount=3)
        if contended:
            turnstile = self.turnstiles[lock_id % len(self.turnstiles)]
            yield read(lock, Sym.MUTEX_VECTOR_ENTER)
            yield read(turnstile, Sym.TURNSTILE_BLOCK)
            yield write(turnstile, Sym.TURNSTILE_BLOCK)
            yield read(lock, Sym.MUTEX_VECTOR_ENTER)
            yield write(lock, Sym.MUTEX_VECTOR_ENTER)

    def mutex_exit(self, lock_id: int, waiters: bool = False) -> Iterator[Op]:
        """Release kernel mutex ``lock_id``."""
        lock = self.locks[lock_id % len(self.locks)]
        yield write(lock, Sym.MUTEX_EXIT, icount=3)
        if waiters:
            turnstile = self.turnstiles[lock_id % len(self.turnstiles)]
            yield read(turnstile, Sym.TURNSTILE_WAKEUP)
            yield write(turnstile, Sym.TURNSTILE_WAKEUP)

    def cv_wait(self, cv_id: int, lock_id: int) -> Iterator[Op]:
        """Block on a condition variable (manipulates the sleep queue)."""
        cv, sleepq = self.condvars[cv_id % len(self.condvars)]
        yield read(cv, Sym.CV_WAIT)
        yield write(cv, Sym.CV_WAIT)
        yield read(sleepq, Sym.CV_WAIT)
        yield write(sleepq, Sym.CV_WAIT)
        yield from self.mutex_exit(lock_id)

    def cv_signal(self, cv_id: int) -> Iterator[Op]:
        """Wake one waiter on a condition variable."""
        cv, sleepq = self.condvars[cv_id % len(self.condvars)]
        yield read(cv, Sym.CV_SIGNAL)
        yield read(sleepq, Sym.CV_SIGNAL)
        yield write(sleepq, Sym.CV_SIGNAL)

    def cv_broadcast(self, cv_id: int, n_waiters: int = 2) -> Iterator[Op]:
        """Wake all waiters on a condition variable."""
        cv, sleepq = self.condvars[cv_id % len(self.condvars)]
        yield read(cv, Sym.CV_BROADCAST)
        for _ in range(max(1, n_waiters)):
            yield read(sleepq, Sym.CV_BROADCAST)
            yield write(sleepq, Sym.CV_BROADCAST)
