"""SPARC MMU / trap-handler model: software TLB fills and window traps.

Table 2 ("Kernel MMU and trap handlers"): the most frequent traps are the
``data_access_MMU_miss`` and ``instruction_access_MMU_miss`` traps, which
fill virtual-to-physical translations into the MMU from software caches (the
TSB) and page tables; register-window spill/fill traps also contribute.
Because many translations are loaded repeatedly, the misses incurred during
the translation walk repeat — a per-page temporal stream at fixed TSB /
page-table addresses (Section 5.2).

The model keeps a small per-CPU TLB; on a TLB miss it emits the TSB probe
and, with some probability, the multi-level page-table walk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from ...mem.config import BLOCK_SIZE, PAGE_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class MmuModel:
    """Per-CPU TLB + shared TSB and page-table memory behaviour."""

    def __init__(self, builder: TraceBuilder, tlb_entries: int = 64,
                 tsb_entries: int = 512, walk_probability: float = 0.25,
                 window_trap_period: int = 400) -> None:
        self.builder = builder
        self.tlb_entries = tlb_entries
        self.walk_probability = walk_probability
        self.window_trap_period = max(1, window_trap_period)
        region = builder.space.add_region(
            "kernel.mmu",
            tsb_entries * BLOCK_SIZE + 64 * BLOCK_SIZE
            + builder.n_cpus * 2 * BLOCK_SIZE)
        #: TSB entries (direct-mapped by page number hash), one block each.
        self.tsb = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                    for _ in range(tsb_entries)]
        #: Page-table (hme/hash-bucket) blocks, hashed by page number.
        self.page_table = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                           for _ in range(64)]
        #: Per-CPU register-window save areas (kernel stack blocks).
        self.window_area = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                            for _ in range(builder.n_cpus)]
        self._tlbs: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(builder.n_cpus)]
        self._op_counter = [0] * builder.n_cpus

    # ------------------------------------------------------------------ #
    def translate(self, cpu: int, vaddr: int) -> Iterator[Op]:
        """TLB lookup for ``vaddr``; on a miss, emit the TSB/page-table walk."""
        page = vaddr // PAGE_SIZE
        tlb = self._tlbs[cpu % len(self._tlbs)]
        if page in tlb:
            tlb.move_to_end(page)
            return
        if len(tlb) >= self.tlb_entries:
            tlb.popitem(last=False)
        tlb[page] = True
        tsb_entry = self.tsb[page % len(self.tsb)]
        yield read(tsb_entry, Sym.DTLB_MISS, icount=3)
        yield read(tsb_entry, Sym.SFMMU_TSB_MISS, icount=3)
        # With some probability the TSB probe misses too and the full
        # hat-layer hash walk runs, touching the page-table buckets.
        if self.builder.rng.random() < self.walk_probability:
            bucket = self.page_table[page % len(self.page_table)]
            bucket2 = self.page_table[(page // 7) % len(self.page_table)]
            yield read(bucket, Sym.SFMMU_TSB_MISS)
            yield read(bucket2, Sym.HAT_MEMLOAD)
            yield write(tsb_entry, Sym.HAT_MEMLOAD)

    def maybe_window_trap(self, cpu: int) -> Iterator[Op]:
        """Occasional register-window spill/fill to the kernel stack area."""
        idx = cpu % len(self._op_counter)
        self._op_counter[idx] += 1
        if self._op_counter[idx] % self.window_trap_period:
            return
        area = self.window_area[idx]
        yield write(area, Sym.SPILL_WINDOW, size=64, icount=8)
        yield read(area, Sym.FILL_WINDOW, size=64, icount=8)

    def tlb_shootdown(self, page_vaddr: int) -> None:
        """Invalidate a page translation in every CPU's TLB (unmap/remap)."""
        page = page_vaddr // PAGE_SIZE
        for tlb in self._tlbs:
            tlb.pop(page, None)
