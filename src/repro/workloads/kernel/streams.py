"""Solaris STREAMS subsystem model.

Table 2 ("Kernel STREAMS"): implementation of stream-based I/O such as stdin
and stdout; consists largely of functions that move pointers to strings among
thread-safe queues.  Section 5.1 explains why this matters for web serving:
the web server and the FastCGI perl processes communicate over standard I/O
streams, the STREAMS code breaks the data into messages that pass through a
chain of queue modules, and both the queue locks and the message-pointer
manipulation produce highly repetitive access sequences (~80% of STREAMS
misses fall in temporal streams).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...mem.config import BLOCK_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class StreamsModel:
    """Stream heads, queue pairs, and a recycled message-block pool."""

    #: Blocks per queue: lock, q_first/q_last pointers, qband info.
    _QUEUE_BLOCKS = 3

    def __init__(self, builder: TraceBuilder, n_streams: int = 16,
                 n_modules: int = 2, msg_pool_blocks: int = 64) -> None:
        self.builder = builder
        self.n_modules = max(1, n_modules)
        per_stream = (1 + 2 * self.n_modules * self._QUEUE_BLOCKS)
        region = builder.space.add_region(
            "kernel.streams",
            (n_streams * per_stream + msg_pool_blocks + 4) * BLOCK_SIZE)
        #: One stream head block per stream (stdin/stdout of a CGI process,
        #: or a socket stream).
        self.stream_heads = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                             for _ in range(n_streams)]
        #: Per stream: a chain of (read queue, write queue) module pairs.
        self.queues: List[List[Tuple[List[int], List[int]]]] = []
        for _ in range(n_streams):
            chain = []
            for _ in range(self.n_modules):
                rq = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                      for _ in range(self._QUEUE_BLOCKS)]
                wq = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                      for _ in range(self._QUEUE_BLOCKS)]
                chain.append((rq, wq))
            self.queues.append(chain)
        #: Recycled mblk/dblk pool: message headers are allocated round-robin
        #: from a kmem cache, so the same addresses are reused constantly.
        self.msg_pool = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                         for _ in range(msg_pool_blocks)]
        self._next_msg = 0

    # ------------------------------------------------------------------ #
    def _alloc_msg(self) -> int:
        block = self.msg_pool[self._next_msg % len(self.msg_pool)]
        self._next_msg += 1
        return block

    # ------------------------------------------------------------------ #
    def stream_write(self, stream_id: int, n_messages: int = 1) -> Iterator[Op]:
        """``strwrite``/``putnext``/``putq``: send messages down a stream."""
        stream_id %= len(self.stream_heads)
        head = self.stream_heads[stream_id]
        yield read(head, Sym.STRWRITE)
        for _ in range(max(1, n_messages)):
            msg = self._alloc_msg()
            yield read(msg, Sym.ALLOCB)
            yield write(msg, Sym.ALLOCB)
            for rq, wq in self.queues[stream_id]:
                yield read(wq[0], Sym.CANPUT)       # flow-control check
                yield read(wq[0], Sym.PUTNEXT)      # queue lock
                yield write(wq[0], Sym.PUTQ)
                yield read(wq[1], Sym.PUTQ)         # q_first / q_last
                yield write(wq[1], Sym.PUTQ)
                yield write(msg, Sym.PUTQ)          # link message into queue
                yield write(wq[0], Sym.PUTQ, icount=3)
        yield write(head, Sym.STRWRITE)

    def stream_read(self, stream_id: int, n_messages: int = 1) -> Iterator[Op]:
        """``strread``/``getq``: drain messages from a stream head."""
        stream_id %= len(self.stream_heads)
        head = self.stream_heads[stream_id]
        yield read(head, Sym.STRREAD)
        for _ in range(max(1, n_messages)):
            for rq, wq in reversed(self.queues[stream_id]):
                yield read(rq[0], Sym.GETQ)
                yield write(rq[0], Sym.GETQ)
                yield read(rq[1], Sym.GETQ)
                yield write(rq[1], Sym.GETQ)
            msg = self.msg_pool[(self._next_msg - 1) % len(self.msg_pool)]
            yield read(msg, Sym.STRRPUT)
            yield write(msg, Sym.FREEB)
        yield write(head, Sym.STRREAD)
