"""IP / TCP packet-assembly model.

Table 2 ("Kernel IP packet assembly"): functions that divide data written to
sockets into individual IP packets.  The per-connection ``tcp_t``/``ip``
structures and the header template are read and written on every packet, and
the same assembly sequence runs for every response, so these misses are
repetitive; in the multi-chip context they bounce between processors as
connections are serviced by different CPUs.
"""

from __future__ import annotations

from typing import Iterator, List

from ...mem.config import BLOCK_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class IpModel:
    """Per-connection TCP/IP state and packet assembly behaviour."""

    #: Blocks per connection: tcp_t, ip header template, send buffer head.
    _CONN_BLOCKS = 3

    def __init__(self, builder: TraceBuilder, n_connections: int = 32,
                 mss_bytes: int = 1460) -> None:
        self.builder = builder
        self.mss_bytes = mss_bytes
        region = builder.space.add_region(
            "kernel.ip", (n_connections * self._CONN_BLOCKS + 8) * BLOCK_SIZE)
        self.connections = [
            [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
             for _ in range(self._CONN_BLOCKS)]
            for _ in range(n_connections)]
        #: Global IP routing / interface state touched on every send.
        self.ip_globals = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                           for _ in range(4)]

    def send(self, conn_id: int, n_bytes: int) -> Iterator[Op]:
        """Assemble and send ``n_bytes`` on connection ``conn_id``."""
        conn = self.connections[conn_id % len(self.connections)]
        tcp_t, header_template, sendbuf_head = conn
        yield read(tcp_t, Sym.TCP_WPUT)
        yield read(sendbuf_head, Sym.TCP_WPUT)
        n_packets = max(1, (max(n_bytes, 1) + self.mss_bytes - 1) // self.mss_bytes)
        for _ in range(n_packets):
            yield read(header_template, Sym.IP_HDR_ASSEMBLE)
            yield write(header_template, Sym.IP_HDR_ASSEMBLE)
            yield read(self.ip_globals[0], Sym.IP_WPUT)
            yield read(self.ip_globals[1], Sym.IP_OUTPUT)
            yield write(tcp_t, Sym.TCP_SEND_DATA)
        yield write(sendbuf_head, Sym.TCP_SEND_DATA)

    def receive(self, conn_id: int) -> Iterator[Op]:
        """Process an inbound segment (ack / request arrival) on a connection."""
        conn = self.connections[conn_id % len(self.connections)]
        tcp_t, _header_template, sendbuf_head = conn
        yield read(self.ip_globals[2], Sym.IP_OUTPUT)
        yield read(tcp_t, Sym.TCP_WPUT)
        yield write(tcp_t, Sym.TCP_WPUT)
        yield read(sendbuf_head, Sym.TCP_SEND_DATA)
