"""Solaris kernel model: scheduler, synchronization, MMU, I/O paths.

:class:`KernelModel` composes the individual subsystem models and implements
the :class:`~repro.workloads.base.KernelHooks` interface the workload driver
invokes at dispatch points, so every workload automatically exhibits the OS
behaviours the paper attributes misses to (Tables 3-5): dispatcher queue
scans, synchronization, TSB fills, bulk copies, STREAMS, IP assembly, and the
block-device driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from ...mem.records import AccessKind
from ..base import Job, KernelHooks, Op, TraceBuilder
from .blockdev import BlockDeviceModel
from .copy import bulk_copy, copyin, copyout
from .ip import IpModel
from .mmu import MmuModel
from .scheduler import DispatcherModel
from .streams import StreamsModel
from .sync import SyncModel
from .syscalls import SyscallModel


@dataclass
class KernelConfig:
    """Tuning knobs for the kernel model's intensity.

    The defaults approximate a busy commercial server; the workload
    definitions override individual knobs (e.g. DSS performs far less
    scheduling because it runs a few long query threads).
    """

    #: Probability that a CPU finds its own queue empty at dispatch and runs
    #: the disp_getwork scan over the other queues (work stealing).
    steal_probability: float = 0.30
    #: Probability that a dispatch/completion interacts with a condition
    #: variable (worker pools sleeping on request queues).
    cv_probability: float = 0.35
    #: Number of kernel thread structures (proportional to server threads).
    n_threads: int = 64
    #: Per-CPU TLB entries for the MMU model.
    tlb_entries: int = 48
    #: Probability that a TSB probe misses and the hat hash walk runs.
    mmu_walk_probability: float = 0.25
    #: Emit one register-window spill/fill every this many user ops per CPU.
    window_trap_period: int = 500
    #: Number of kernel mutexes (hashed by lock id).
    n_locks: int = 32
    #: Number of condition variables.
    n_condvars: int = 16


class KernelModel(KernelHooks):
    """The composed Solaris kernel model used by all workloads."""

    def __init__(self, builder: TraceBuilder,
                 config: KernelConfig | None = None) -> None:
        self.builder = builder
        self.config = config if config is not None else KernelConfig()
        cfg = self.config
        self.dispatcher = DispatcherModel(builder, n_threads=cfg.n_threads)
        self.sync = SyncModel(builder, n_locks=cfg.n_locks,
                              n_condvars=cfg.n_condvars)
        self.mmu = MmuModel(builder, tlb_entries=cfg.tlb_entries,
                            walk_probability=cfg.mmu_walk_probability,
                            window_trap_period=cfg.window_trap_period)
        self.syscalls = SyscallModel(builder)
        self.streams = StreamsModel(builder)
        self.ip = IpModel(builder)
        self.blockdev = BlockDeviceModel(builder)

    # ------------------------------------------------------------------ #
    # KernelHooks implementation (invoked by the WorkloadDriver)
    # ------------------------------------------------------------------ #
    def on_dispatch(self, cpu: int, job: Job) -> Iterable[Op]:
        rng = self.builder.rng
        ops: List[Op] = []
        if rng.random() < self.config.steal_probability:
            # Empty local queue: scan the other queues for work to steal.
            # The scan covers a prefix of the fixed queue order, so the miss
            # sequence is repetitive even though its length varies.
            limit = rng.choice((4, 8, 0))
            ops.extend(self.dispatcher.steal_work(cpu, job.thread, found=True,
                                                  scan_limit=limit))
        else:
            ops.extend(self.dispatcher.pick_local(cpu, job.thread))
        if rng.random() < self.config.cv_probability:
            ops.extend(self.sync.cv_signal(job.thread))
        return ops

    def on_quantum_expire(self, cpu: int, job: Job) -> Iterable[Op]:
        ops: List[Op] = []
        ops.extend(self.dispatcher.tick(cpu, job.thread))
        ops.extend(self.dispatcher.enqueue(cpu, job.thread))
        return ops

    def on_job_complete(self, cpu: int, job: Job) -> Iterable[Op]:
        rng = self.builder.rng
        ops: List[Op] = []
        ops.extend(self.dispatcher.tick(cpu, job.thread))
        if rng.random() < self.config.cv_probability:
            lock_id = job.thread % self.config.n_locks
            ops.extend(self.sync.mutex_enter(lock_id,
                                             contended=rng.random() < 0.3))
            ops.extend(self.sync.cv_signal(job.thread))
            ops.extend(self.sync.mutex_exit(lock_id))
        return ops

    def on_idle(self, cpu: int) -> Iterable[Op]:
        return self.dispatcher.steal_work(cpu, thread=cpu, found=False)

    def translate(self, cpu: int, op: Op) -> Iterable[Op]:
        # DMA writes are device-initiated and do not go through the MMU.
        if op.kind == AccessKind.DMA_WRITE:
            return ()
        ops: List[Op] = []
        ops.extend(self.mmu.translate(cpu, op.addr))
        ops.extend(self.mmu.maybe_window_trap(cpu))
        return ops


__all__ = [
    "BlockDeviceModel", "DispatcherModel", "IpModel", "KernelConfig",
    "KernelModel", "MmuModel", "StreamsModel", "SyncModel", "SyscallModel",
    "bulk_copy", "copyin", "copyout",
]
