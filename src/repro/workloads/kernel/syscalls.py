"""System-call implementation model.

Table 2 ("System call implementation"): kernel functionality invoked on
behalf of user threads within system-call interfaces; the most frequent calls
all involve I/O — ``poll``, ``open``, ``read``, ``write``, and ``stat``.

The model provides the kernel-side data-structure footprints of those calls:
the per-process file-descriptor table, ``file_t``/``vnode_t`` structures, the
pollcache, and directory-lookup structures.  These are shared, read-write
kernel structures at fixed addresses, so their misses repeat and — in the
multi-chip context — show up as coherence misses.
"""

from __future__ import annotations

from typing import Iterator, List

from ...mem.config import BLOCK_SIZE
from ..base import Op, TraceBuilder, read, write
from ..symbols import Sym


class SyscallModel:
    """Kernel-side memory behaviour of frequent I/O system calls."""

    def __init__(self, builder: TraceBuilder, n_fds: int = 64,
                 n_vnodes: int = 48) -> None:
        self.builder = builder
        region = builder.space.add_region(
            "kernel.syscalls",
            (4 + n_fds + n_vnodes + 16 + 8) * BLOCK_SIZE)
        #: Per-process uf_entry / fd table blocks (shared by all workers of a
        #: process, written on open/close and on poll bookkeeping).
        self.fd_table = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                         for _ in range(4)]
        #: file_t structures, one block per open descriptor.
        self.file_structs = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                             for _ in range(n_fds)]
        #: vnode_t structures.
        self.vnodes = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                       for _ in range(n_vnodes)]
        #: pollcache / pollfd array blocks (scanned by every poll call).
        self.pollcache = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                          for _ in range(16)]
        #: Directory name lookup cache buckets.
        self.dnlc = [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE)
                     for _ in range(8)]

    # ------------------------------------------------------------------ #
    def poll(self, n_fds_scanned: int = 8) -> Iterator[Op]:
        """``poll``/``pollsys``: scan the pollcache and referenced file_t's."""
        yield read(self.fd_table[0], Sym.POLL)
        for i in range(max(1, n_fds_scanned)):
            yield read(self.pollcache[i % len(self.pollcache)], Sym.POLL)
            yield read(self.file_structs[i % len(self.file_structs)], Sym.POLLSYS)
        yield write(self.pollcache[0], Sym.POLLSYS)

    def syscall_read(self, fd: int) -> Iterator[Op]:
        """``read``: fd table, file_t, vnode, offset update."""
        yield read(self.fd_table[fd % len(self.fd_table)], Sym.READ)
        yield read(self.file_structs[fd % len(self.file_structs)], Sym.READ)
        yield read(self.vnodes[fd % len(self.vnodes)], Sym.READ)
        yield write(self.file_structs[fd % len(self.file_structs)], Sym.READ)

    def syscall_write(self, fd: int) -> Iterator[Op]:
        """``write``: fd table, file_t, vnode, offset update."""
        yield read(self.fd_table[fd % len(self.fd_table)], Sym.WRITE)
        yield read(self.file_structs[fd % len(self.file_structs)], Sym.WRITE)
        yield read(self.vnodes[fd % len(self.vnodes)], Sym.WRITE)
        yield write(self.file_structs[fd % len(self.file_structs)], Sym.WRITE)

    def syscall_open(self, path_hash: int) -> Iterator[Op]:
        """``open``: name lookup through the DNLC plus fd allocation."""
        yield read(self.fd_table[0], Sym.OPEN)
        yield read(self.dnlc[path_hash % len(self.dnlc)], Sym.FOP_LOOKUP)
        yield read(self.vnodes[path_hash % len(self.vnodes)], Sym.FOP_LOOKUP)
        yield write(self.fd_table[0], Sym.COPEN)
        yield write(self.file_structs[path_hash % len(self.file_structs)], Sym.COPEN)

    def syscall_stat(self, path_hash: int) -> Iterator[Op]:
        """``stat``: name lookup and vnode attribute read."""
        yield read(self.dnlc[path_hash % len(self.dnlc)], Sym.STAT)
        yield read(self.vnodes[path_hash % len(self.vnodes)], Sym.STAT)

    def syscall_close(self, fd: int) -> Iterator[Op]:
        """``close``: release the file_t and clear the fd slot."""
        yield read(self.fd_table[fd % len(self.fd_table)], Sym.CLOSE)
        yield write(self.file_structs[fd % len(self.file_structs)], Sym.CLOSE)
        yield write(self.fd_table[fd % len(self.fd_table)], Sym.CLOSE)
