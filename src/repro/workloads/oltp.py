"""OLTP workload model (TPC-C-style transactions on the DB2 substrate).

Section 5.2 of the paper: the most significant miss sources in OLTP are the
index, tuple, and page accesses issued to the database buffer pool (about one
sixth to one fifth of all misses, index accesses largest), while the higher
layers of the engine — transaction management, execution-plan interpreter,
interprocess communication — are more repetitive (~90%) because they touch
meta-data that never leaves memory.  The Solaris scheduler and
synchronization primitives contribute substantially wherever coherence
matters (multi-chip, intra-chip) but vanish from the single-chip off-chip
profile, and MMU trap handlers produce many temporal streams.

The model executes a mix of new-order / payment / order-status style
transactions over B+-tree indexes, a buffer pool with a hot working set, a
lock manager, a transaction table, a sequential log, and IPC channels, all
driven through the shared Solaris kernel model.
"""

from __future__ import annotations

from typing import Iterator, List

from ..mem.config import BLOCK_SIZE
from .base import Job, Op, OpStream, TraceBuilder, Workload, read, write
from .btree import BPlusTree
from .configs import ApplicationConfig, get_config, scaled_parameter
from .db2 import (BufferPool, CursorPool, IpcChannel, LockManager,
                  PackageCache, TransactionLog, TransactionTable)
from .kernel import KernelConfig, KernelModel
from .symbols import Sym


class OltpWorkload(Workload):
    """TPC-C-like transaction processing over the DB2 substrate."""

    quantum = 80

    def __init__(self, n_cpus: int, seed: int = 42, size: str = "default",
                 config: ApplicationConfig = None) -> None:
        self.config = config if config is not None else get_config("OLTP")
        self.size = size
        self.n_cpus = n_cpus
        self.builder = TraceBuilder(n_cpus=n_cpus, seed=seed)
        self.kernel = KernelModel(self.builder,
                                  KernelConfig(steal_probability=0.3,
                                               cv_probability=0.4))
        params = self.config.model_parameters
        self.n_transactions = scaled_parameter(self.config, "n_transactions",
                                               size)
        self.n_clients = params["n_clients"]
        self.n_data_pages = params["n_data_pages"]
        self.hot_pages = params["hot_pages"]
        index_keys = params["index_keys"]

        # -- DB2 substrate ------------------------------------------------ #
        self.pool = BufferPool(self.builder, self.kernel, "oltp",
                               n_frames=params["n_pool_frames"],
                               n_kernel_buffers=0)
        # The paper warms for thousands of transactions before tracing; start
        # with the hot working set already resident in the buffer pool.
        self.pool.preload(range(self.hot_pages))
        self.item_index = BPlusTree(self.builder, "item", n_keys=index_keys)
        self.stock_index = BPlusTree(self.builder, "stock", n_keys=index_keys)
        self.customer_index = BPlusTree(self.builder, "customer",
                                        n_keys=index_keys // 2)
        self.orders_index = BPlusTree(self.builder, "orders",
                                      n_keys=index_keys)
        self.locks = LockManager(self.builder, n_buckets=64)
        self.xact_table = TransactionTable(self.builder, n_entries=32)
        self.log = TransactionLog(self.builder, self.kernel)
        self.package_cache = PackageCache(self.builder, n_sections=12)
        self.cursors = CursorPool(self.builder, n_agents=self.n_clients)
        self.ipc = IpcChannel(self.builder, n_channels=self.n_clients)
        #: Small per-agent sort/work heaps for the runtime interpreter.
        region = self.builder.space.add_region(
            "db.agent_heaps", self.n_clients * 4 * BLOCK_SIZE)
        self.agent_heaps = [
            [region.alloc(BLOCK_SIZE, align=BLOCK_SIZE) for _ in range(4)]
            for _ in range(self.n_clients)]

    # ------------------------------------------------------------------ #
    # Data-access helpers
    # ------------------------------------------------------------------ #
    def _page_for_key(self, key: int) -> int:
        """Deterministic key -> data page mapping with a hot/cold skew.

        A key always lives on the same page (as in a real table), and most
        keys map into the hot page set that fits the buffer pool; repeated
        accesses to popular keys therefore produce recurring miss sequences,
        while the cold tail triggers occasional disk reads.
        """
        h = (key * 2654435761) & 0xFFFFFFFF
        if h % 1000 < 993:
            return h % self.hot_pages
        return self.hot_pages + h % (self.n_data_pages - self.hot_pages)

    def _pick_key(self, n_keys: int) -> int:
        """Pick a key with TPC-C-like skew: most requests hit popular keys."""
        rng = self.builder.rng
        if rng.random() < 0.75:
            # Popular subset (e.g. this warehouse's districts and top items).
            return rng.randrange(max(1, n_keys // 64))
        return rng.randrange(n_keys)

    def _interpreter_ops(self, agent: int, n_ops: int) -> OpStream:
        """sqlri: evaluate predicates / move values through the agent heap."""
        heap = self.agent_heaps[agent % len(self.agent_heaps)]
        section = self.package_cache.sections[agent % len(self.package_cache.sections)]
        for i in range(max(1, n_ops)):
            yield read(section[i % len(section)], Sym.SQLRI_EVAL, icount=12)
            yield read(heap[i % len(heap)], Sym.SQLRI_FETCH, icount=8)
            if i % 3 == 0:
                yield write(heap[(i + 1) % len(heap)], Sym.SQLRI_EVAL, icount=6)

    def _client_request(self, agent: int) -> OpStream:
        """Receive a client request: poll/read syscalls plus the IPC buffers."""
        yield from self.kernel.syscalls.poll(n_fds_scanned=4)
        yield from self.kernel.syscalls.syscall_read(agent)
        yield from self.ipc.receive_request(agent)

    def _client_response(self, agent: int) -> OpStream:
        """Send the response back: IPC buffers plus the write syscall."""
        yield from self.ipc.send_response(agent)
        yield from self.kernel.syscalls.syscall_write(agent)

    # ------------------------------------------------------------------ #
    # Transaction types
    # ------------------------------------------------------------------ #
    def _new_order(self, xact_id: int, agent: int) -> OpStream:
        rng = self.builder.rng
        yield from self._client_request(agent)
        yield from self.cursors.open(agent)
        yield from self.package_cache.load_section(agent % 12)
        yield from self.xact_table.begin(xact_id)
        n_items = rng.randint(5, 12)
        for _ in range(n_items):
            item_key = self._pick_key(self.item_index.n_keys)
            yield from self.item_index.search(item_key)
            yield from self.locks.acquire(item_key)
            yield from self.pool.access_row(self._page_for_key(item_key),
                                            item_key)
            stock_key = self._pick_key(self.stock_index.n_keys)
            yield from self.stock_index.search(stock_key)
            yield from self.pool.access_row(self._page_for_key(stock_key),
                                            stock_key, update=True)
            yield from self._interpreter_ops(agent, 2)
            yield from self.log.append(160)
            yield from self.locks.release(item_key)
        order_key = rng.randrange(self.orders_index.n_keys)
        yield from self.orders_index.insert(order_key)
        yield from self.pool.access_row(self._page_for_key(order_key),
                                        order_key, update=True)
        yield from self.cursors.fetch(agent)
        yield from self.log.append(224)
        yield from self.xact_table.commit(xact_id)
        yield from self.cursors.commit(agent)
        yield from self._client_response(agent)

    def _payment(self, xact_id: int, agent: int) -> OpStream:
        rng = self.builder.rng
        yield from self._client_request(agent)
        yield from self.cursors.open(agent)
        yield from self.xact_table.begin(xact_id)
        customer_key = self._pick_key(self.customer_index.n_keys)
        yield from self.customer_index.search(customer_key)
        yield from self.locks.acquire(customer_key)
        yield from self.pool.access_row(self._page_for_key(customer_key),
                                        customer_key, update=True)
        yield from self._interpreter_ops(agent, 3)
        yield from self.log.append(128)
        yield from self.locks.release(customer_key)
        yield from self.xact_table.commit(xact_id)
        yield from self.cursors.commit(agent)
        yield from self._client_response(agent)

    def _order_status(self, xact_id: int, agent: int) -> OpStream:
        """Read-only transaction: an index range scan over recent orders."""
        rng = self.builder.rng
        yield from self._client_request(agent)
        yield from self.cursors.open(agent)
        start = rng.randrange(max(1, self.orders_index.n_keys - 256))
        yield from self.orders_index.range_scan(start, 192)
        for offset in range(4):
            yield from self.pool.access_row(self._page_for_key(start + offset),
                                            start + offset)
        yield from self._interpreter_ops(agent, 4)
        yield from self.cursors.commit(agent)
        yield from self._client_response(agent)

    # ------------------------------------------------------------------ #
    def _make_job(self, index: int) -> Job:
        agent = index % self.n_clients
        rng_value = (index * 2654435761) % 100
        if rng_value < 55:
            factory = lambda i=index, a=agent: self._new_order(i, a)
            name = f"new_order[{index}]"
        elif rng_value < 85:
            factory = lambda i=index, a=agent: self._payment(i, a)
            name = f"payment[{index}]"
        else:
            factory = lambda i=index, a=agent: self._order_status(i, a)
            name = f"order_status[{index}]"
        return Job(name=name, factory=factory, thread=agent)

    def jobs(self) -> List[Job]:
        """The transaction mix for one run, in submission order."""
        return [self._make_job(i) for i in range(self.n_transactions)]
