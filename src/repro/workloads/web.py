"""Web-server workload models (SPECweb99 on Apache and Zeus).

Section 5.1 of the paper: the HTTP server software itself accounts for only
about 3% of off-chip misses; activity is dominated by the interaction between
the perl scripts generating dynamic content, the web server, and the kernel
interfaces sending replies to the network.  The biggest stream producers are
the kernel STREAMS subsystem carrying the FastCGI traffic (~80% repetitive),
the perl interpreter (input parsing ~99% repetitive, op execution ~75%), the
poll system call, the scheduler/synchronization caused by the many worker
threads, and bulk copies into *reused* network I/O buffers.

Each simulated request:

1. arrives via network DMA into a per-connection kernel socket buffer,
2. is noticed by ``poll`` and read by a server worker (``read`` syscall plus
   ``copyout`` from the socket buffer into the worker's user buffer),
3. is either served statically (file-cache lookup + copy) or passed to a
   FastCGI perl process through STREAMS, parsed by ``Perl_sv_gets``, executed
   over the script's op-tree, and returned through STREAMS,
4. and is finally written back: ``write`` syscall, user-to-kernel copy, and
   TCP/IP packet assembly.

Apache and Zeus share the model; they differ in connection count, the
dynamic/static mix, and threading intensity (Table 1 shows the same
SPECweb99 setup for both, and the paper's results for the two servers are
close).
"""

from __future__ import annotations

from typing import Iterator, List

from ..mem.config import BLOCK_SIZE, PAGE_SIZE
from .base import Job, Op, OpStream, TraceBuilder, Workload, read, write
from .configs import ApplicationConfig, get_config, scaled_parameter
from .kernel import KernelConfig, KernelModel, bulk_copy, copyin, copyout
from .perl import PerlPool
from .symbols import Sym
from .webserver import ConnectionTable, FileCache


class WebWorkload(Workload):
    """SPECweb99-style web serving on Apache or Zeus."""

    quantum = 80

    def __init__(self, variant: str, n_cpus: int, seed: int = 42,
                 size: str = "default",
                 config: ApplicationConfig = None) -> None:
        variant = variant.lower()
        if variant not in ("apache", "zeus"):
            raise ValueError("variant must be 'apache' or 'zeus'")
        self.variant = variant
        self.config = (config if config is not None
                       else get_config(variant.capitalize()))
        self.size = size
        self.n_cpus = n_cpus
        self.builder = TraceBuilder(n_cpus=n_cpus, seed=seed)
        # Web servers run hundreds of threads; scheduling and synchronization
        # are intense (Section 5.1).
        self.kernel = KernelModel(self.builder,
                                  KernelConfig(steal_probability=0.25,
                                               cv_probability=0.45,
                                               n_threads=96))
        params = self.config.model_parameters
        self.n_requests = scaled_parameter(self.config, "n_requests", size)
        self.dynamic_permille = params["dynamic_permille"]

        server_fn = (Sym.AP_PROCESS_REQUEST if variant == "apache"
                     else Sym.ZEUS_WORKER)
        self.server_fn = server_fn
        self.output_fn = (Sym.AP_OUTPUT_FILTER if variant == "apache"
                          else Sym.ZEUS_SENDFILE)
        self.read_fn = (Sym.AP_READ_REQUEST if variant == "apache"
                        else Sym.ZEUS_WORKER)

        self.connections = ConnectionTable(self.builder, server_fn,
                                           n_connections=params["n_connections"])
        self.file_cache = FileCache(self.builder,
                                    n_files=params["n_static_files"],
                                    pages_per_file=2)
        self.perl_pool = PerlPool(self.builder,
                                  n_processes=params["n_perl_processes"],
                                  script_ops=160)
        #: Kernel socket receive buffers, one page per connection, reused for
        #: every request on that connection (the source of the repetitive
        #: I/O-coherence misses the paper observes).
        region = self.builder.space.add_region(
            "kernel.socket_buffers", len(self.connections) * PAGE_SIZE)
        self.socket_buffers = [region.alloc(PAGE_SIZE, align=PAGE_SIZE)
                               for _ in range(len(self.connections))]
        #: Kernel-side staging buffers for outbound data (reused round-robin).
        out_region = self.builder.space.add_region(
            "kernel.out_buffers", 16 * PAGE_SIZE)
        self.out_buffers = [out_region.alloc(PAGE_SIZE, align=PAGE_SIZE)
                            for _ in range(16)]
        self._next_out = 0

    # ------------------------------------------------------------------ #
    def _out_buffer(self) -> int:
        buf = self.out_buffers[self._next_out % len(self.out_buffers)]
        self._next_out += 1
        return buf

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def _accept_and_read(self, conn_id: int, request_bytes: int) -> OpStream:
        """poll + network DMA + read() + copyout into the worker's buffer."""
        yield from self.kernel.syscalls.poll(n_fds_scanned=6)
        socket_buf = self.socket_buffers[conn_id % len(self.socket_buffers)]
        # The NIC DMAs the request into the (reused) kernel socket buffer.
        yield from self.connections.network_arrival(conn_id, request_bytes,
                                                    target_addr=socket_buf)
        yield from self.kernel.ip.receive(conn_id)
        yield from self.kernel.syscalls.syscall_read(conn_id)
        yield from copyout(socket_buf,
                           self.connections.request_buffer(conn_id),
                           request_bytes)
        yield from self.connections.read_request(conn_id, fn=self.read_fn)

    def _respond(self, conn_id: int, src_addr: int,
                 response_bytes: int) -> OpStream:
        """write() + user-to-kernel copy + TCP/IP packet assembly."""
        yield from self.kernel.syscalls.syscall_write(conn_id)
        staging = self._out_buffer()
        yield from copyin(src_addr, staging, min(response_bytes, PAGE_SIZE))
        yield from self.kernel.ip.send(conn_id, response_bytes)
        yield read(self.connections.connection_struct(conn_id), self.server_fn,
                   icount=8)

    def _dynamic_request(self, conn_id: int, request_id: int) -> OpStream:
        """A FastCGI dynamic-content request through a perl worker."""
        rng = self.builder.rng
        yield from self._accept_and_read(conn_id, request_bytes=384)
        process = self.perl_pool.acquire()
        stream_id = request_id % len(self.kernel.streams.stream_heads)
        # Server writes the CGI request down the stream to the perl process.
        yield from self.kernel.syscalls.syscall_write(conn_id + 64)
        yield from copyin(self.connections.request_buffer(conn_id),
                          process.input_address(), 256)
        yield from self.kernel.streams.stream_write(stream_id, n_messages=1)
        # Perl worker wakes, parses the request, and runs the script.
        yield from self.kernel.streams.stream_read(stream_id, n_messages=1)
        yield from process.parse_request()
        yield from process.run_script(work_factor=0.6 + 0.8 * rng.random())
        # Perl prints the generated page back to the server.
        yield from self.kernel.streams.stream_write(stream_id, n_messages=2)
        yield from self.kernel.streams.stream_read(stream_id, n_messages=2)
        yield read(process.output_address(), self.output_fn, icount=10)
        yield from self._respond(conn_id, process.output_address(),
                                 response_bytes=2048 + rng.randrange(4096))

    def _static_request(self, conn_id: int, request_id: int) -> OpStream:
        """A static-file request served from the file cache."""
        rng = self.builder.rng
        yield from self._accept_and_read(conn_id, request_bytes=256)
        # SPECweb's static file accesses follow a Zipf-like popularity curve:
        # most requests hit a small hot subset, so their copy sequences recur.
        if rng.random() < 0.7:
            file_id = rng.randrange(max(1, len(self.file_cache.files) // 4))
        else:
            file_id = rng.randrange(len(self.file_cache.files))
        yield from self.kernel.syscalls.syscall_open(file_id)
        yield from self.kernel.syscalls.syscall_stat(file_id)
        yield from self.file_cache.lookup(file_id)
        pages = self.file_cache.pages(file_id)
        # The server sends the file: each cached page is copied into a kernel
        # staging buffer and packetised.
        for page in pages:
            staging = self._out_buffer()
            yield from bulk_copy(page, staging, PAGE_SIZE, fn=Sym.BCOPY)
            yield from self.kernel.ip.send(conn_id, PAGE_SIZE)
        yield from self.kernel.syscalls.syscall_close(file_id)
        yield read(self.connections.connection_struct(conn_id), self.server_fn,
                   icount=6)

    # ------------------------------------------------------------------ #
    def _make_job(self, request_id: int) -> Job:
        conn_id = request_id % len(self.connections)
        is_dynamic = (request_id * 2654435761) % 1000 < self.dynamic_permille
        if is_dynamic:
            factory = lambda c=conn_id, r=request_id: self._dynamic_request(c, r)
            name = f"{self.variant}_dynamic[{request_id}]"
        else:
            factory = lambda c=conn_id, r=request_id: self._static_request(c, r)
            name = f"{self.variant}_static[{request_id}]"
        return Job(name=name, factory=factory, thread=conn_id)

    def jobs(self) -> List[Job]:
        """The request mix for one run, in arrival order."""
        return [self._make_job(i) for i in range(self.n_requests)]
