"""Synthetic commercial server workload models.

This package builds the access traces the paper's analysis consumes: web
serving (Apache, Zeus), online transaction processing (OLTP on a DB2-like
substrate), and decision support (TPC-H-like queries 1, 2, 17), all running
on top of a Solaris kernel model (scheduler, synchronization, MMU, STREAMS,
IP, block devices, bulk copies).

Use :func:`create_workload` / :func:`generate_trace` to obtain traces by the
paper's workload names (``Apache``, ``Zeus``, ``OLTP``, ``Qry1``, ``Qry2``,
``Qry17``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator

from ..api.registry import WORKLOADS, register_workload
from ..mem.records import Access
from ..mem.trace import AccessTrace
from .base import (GENERATION_STATS, DriverStats, GenerationStats, Job,
                   KernelHooks, Op, OpStream, TraceBuilder, Workload,
                   WorkloadDriver, copyout_store, dma_write, read, write)
from .btree import BPlusTree
from .configs import (SIZE_PRESETS, TABLE1, WORKLOAD_NAMES, ApplicationConfig,
                      get_config, scaled_parameter)
from .db2 import (BufferPool, CursorPool, IpcChannel, LockManager,
                  PackageCache, TransactionLog, TransactionTable)
from .dss import DssWorkload
from .kernel import KernelConfig, KernelModel
from .oltp import OltpWorkload
from .perl import PerlPool, PerlProcess
from .symbols import Sym, all_functions, lookup
from .web import WebWorkload
from .webserver import ConnectionTable, FileCache


# --------------------------------------------------------------------------- #
# Registry entries: each factory builds one paper workload.  Registering here
# (rather than via an if/elif chain in create_workload) lets external code add
# workloads with @register_workload and have them picked up by specs, plans,
# and the CLI without touching this package.
# --------------------------------------------------------------------------- #
@register_workload("Apache")
def _apache(n_cpus: int, seed: int = 42, size: str = "default") -> WebWorkload:
    return WebWorkload("apache", n_cpus=n_cpus, seed=seed, size=size)


@register_workload("Zeus")
def _zeus(n_cpus: int, seed: int = 42, size: str = "default") -> WebWorkload:
    return WebWorkload("zeus", n_cpus=n_cpus, seed=seed, size=size)


@register_workload("OLTP", aliases=("db2", "tpcc", "tpc-c"))
def _oltp(n_cpus: int, seed: int = 42, size: str = "default") -> OltpWorkload:
    return OltpWorkload(n_cpus=n_cpus, seed=seed, size=size)


@register_workload("Qry1", aliases=("q1", "query1"))
def _qry1(n_cpus: int, seed: int = 42, size: str = "default") -> DssWorkload:
    return DssWorkload(1, n_cpus=n_cpus, seed=seed, size=size)


@register_workload("Qry2", aliases=("q2", "query2"))
def _qry2(n_cpus: int, seed: int = 42, size: str = "default") -> DssWorkload:
    return DssWorkload(2, n_cpus=n_cpus, seed=seed, size=size)


@register_workload("Qry17", aliases=("q17", "query17"))
def _qry17(n_cpus: int, seed: int = 42, size: str = "default") -> DssWorkload:
    return DssWorkload(17, n_cpus=n_cpus, seed=seed, size=size)


# Registering the paper workloads above is half the axis; the trace-ingest
# package contributes the other half by claiming the "import:" and "fuzz:"
# name prefixes on the same registry.  Importing it here guarantees the
# prefixes exist wherever workloads are resolvable — specs, plans, the CLI,
# and freshly spawned dispatch/process workers alike.
from .. import ingest as _ingest  # noqa: E402,F401  (registers prefixes)


def create_workload(name: str, n_cpus: int, seed: int = 42,
                    size: str = "default"):
    """Instantiate a workload model by its registered name.

    Parameters
    ----------
    name:
        A name or alias in :data:`repro.api.registry.WORKLOADS` — the paper
        names ``Apache``, ``Zeus``, ``OLTP``, ``Qry1``, ``Qry2``, ``Qry17``
        (case-insensitive) plus anything registered via
        :func:`repro.api.registry.register_workload`.
    n_cpus:
        Number of processors the workload's threads are interleaved over
        (16 for the multi-chip system, 4 for the single-chip CMP).
    seed:
        Seed for the workload's deterministic pseudo-random choices.
    size:
        Work-volume preset: ``tiny``, ``small``, ``default``, or ``large``.
    """
    factory = WORKLOADS.get(name)  # KeyError lists the registered names
    return factory(n_cpus=n_cpus, seed=seed, size=size)


def generate_trace(name: str, n_cpus: int, seed: int = 42,
                   size: str = "default") -> AccessTrace:
    """Build a workload and generate its access trace in one call."""
    return create_workload(name, n_cpus=n_cpus, seed=seed, size=size).generate()


def stream_accesses(name: str, n_cpus: int, seed: int = 42,
                    size: str = "default") -> Iterator[Access]:
    """Build a workload and lazily stream its accesses in one call.

    Unlike :func:`generate_trace` nothing is materialised: accesses are
    yielded as the driver schedules the workload's jobs, so memory stays
    bounded even for the ``large`` work-volume preset.
    """
    return create_workload(name, n_cpus=n_cpus, seed=seed,
                           size=size).iter_accesses()


__all__ = [
    "ApplicationConfig", "BPlusTree", "BufferPool", "ConnectionTable",
    "CursorPool", "DriverStats", "DssWorkload", "FileCache",
    "GENERATION_STATS", "GenerationStats", "IpcChannel",
    "Job", "KernelConfig", "KernelHooks", "KernelModel", "LockManager",
    "OltpWorkload", "Op", "OpStream", "PackageCache", "PerlPool",
    "PerlProcess", "SIZE_PRESETS", "Sym", "TABLE1", "TraceBuilder",
    "TransactionLog", "TransactionTable", "WORKLOAD_NAMES", "WebWorkload",
    "Workload", "WorkloadDriver", "all_functions", "copyout_store",
    "create_workload", "dma_write", "generate_trace", "get_config", "lookup",
    "read", "scaled_parameter", "stream_accesses", "write",
]
