"""Delta-encoded, content-addressed checkpoint chains.

A full checkpoint copies the whole system snapshot every time it is taken,
and the snapshot's dominant component — the accumulated miss trace — grows
linearly with the run, so per-epoch checkpointing of a long trace costs more
than the simulation itself (the historical ~12-snapshots-per-run throttle).
This module stores snapshots as *chains* instead:

* a snapshot is split into **sections** (each cache, each classification
  history, each miss trace) plus inline scalars;
* each section payload is pickled and stored as a **content-addressed
  chunk** (``sha256`` of the pickle) under the store's shared ``chunks/``
  directory — a section that did not change between boundaries re-uses the
  previous chunk byte-for-byte, and two *runs* whose state coincides (a
  shared-prefix warm start and its publisher) dedupe against each other;
* miss-trace sections are **append-encoded**: records and interned
  functions only ever grow during a run, so a delta link stores just the
  tail beyond the base boundary's counts instead of the whole trace;
* sorted row tables (the 4C+I/O classification history: flat lists of int
  rows keyed under one dict) are **rows-encoded**: a delta link stores the
  set difference against the previous boundary — churn per epoch is
  bounded by the epoch's accesses while the tables themselves grow with
  the run.  The fold ``sorted((base - removed) | added)`` reproduces the
  new table *exactly* whenever both tables are duplicate-free and sorted —
  an identity, not an assumption — and the encoder checks precisely those
  two properties, falling back to a whole chunk for any section that
  lacks them;
* a JSON **chain manifest** per boundary records the section -> chunk map;
  every :data:`~repro.checkpoint.format.DELTA_FULL_EVERY` links the chain
  restarts from a ``full`` manifest so restoring any epoch folds a bounded
  number of links.

:func:`load_chain` folds a chain back into the exact snapshot dict —
bit-identical (including key order) to the state that was saved — and the
store's ``load``/``latest`` treat manifests and legacy ``.ckpt.gz`` files
interchangeably.  A torn chunk or manifest is a warn-and-drop miss, so
``latest`` transparently falls back to the nearest earlier loadable (full)
boundary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .format import (CHAIN_SUFFIX, CHECKPOINT_FORMAT_VERSION,
                     CheckpointCorruptError, DELTA_FULL_EVERY,
                     parse_chain_name)

#: Keys that mark a section payload as a MissTrace ``state_dict()``; only
#: such sections are append-encoded (everything else is stored whole and
#: relies on content-address dedupe for the unchanged case).
_MISS_TRACE_KEYS = frozenset(("context", "instructions", "functions",
                              "records"))

#: Scalar snapshot values stored inline in the manifest instead of chunks.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def split_state(state: Dict[str, Any]
                ) -> Tuple[Dict[str, Any], Dict[str, Any], List[List[Any]]]:
    """Split a snapshot dict into ``(scalars, sections, order)``.

    ``order`` records how to reassemble the original dict exactly — one
    ``["scalar", key]``, ``["section", key]``, or ``["list", key, n]`` entry
    per top-level key, in the original key order — so the folded state is
    bit-identical to the saved one (dict order included).  Lists of dicts
    (the per-cache ``l1s``/``l2s``) become one section per element, so a
    single touched cache re-chunks alone.
    """
    scalars: Dict[str, Any] = {}
    sections: Dict[str, Any] = {}
    order: List[List[Any]] = []
    for key, value in state.items():
        if isinstance(value, _SCALAR_TYPES):
            scalars[key] = value
            order.append(["scalar", key])
        elif (isinstance(value, list) and value
              and all(isinstance(element, dict) for element in value)):
            for index, element in enumerate(value):
                sections[f"{key}[{index}]"] = element
            order.append(["list", key, len(value)])
        else:
            sections[key] = value
            order.append(["section", key])
    return scalars, sections, order


def join_state(scalars: Dict[str, Any], sections: Dict[str, Any],
               order: List[List[Any]]) -> Dict[str, Any]:
    """Reassemble a snapshot dict from :func:`split_state` parts."""
    state: Dict[str, Any] = {}
    for entry in order:
        kind, key = entry[0], entry[1]
        if kind == "scalar":
            state[key] = scalars[key]
        elif kind == "list":
            state[key] = [sections[f"{key}[{i}]"] for i in range(entry[2])]
        else:
            state[key] = sections[key]
    return state


def is_miss_trace(payload: Any) -> bool:
    """Whether a section payload is a MissTrace ``state_dict()``."""
    return isinstance(payload, dict) and _MISS_TRACE_KEYS <= set(payload)


def _row_kind(rows: List[Any]) -> Optional[str]:
    """``"int"``/``"list"`` from the first row of a flat row list.

    Deliberately O(1): only the first row is inspected.  A table whose
    later rows break the shape fails :func:`encode_rows`'s strict
    ordering check (comparing an int against a list raises ``TypeError``,
    which the encoder turns into a whole-chunk fallback), so the cheap
    guess never compromises exactness.
    """
    if not rows:
        return "int"
    first = rows[0]
    if isinstance(first, bool):
        return None
    if isinstance(first, int):
        return "int"
    if isinstance(first, list) and all(
            isinstance(cell, int) and not isinstance(cell, bool)
            for cell in first):
        return "list"
    return None


def is_rows_table(payload: Any) -> bool:
    """Whether a section payload is a dict of sorted flat row tables.

    Matches the classification-history shape: string keys mapping to
    scalars or to lists whose elements are all ints or all flat
    lists-of-ints, with at least one list present.  Miss traces (nested,
    append-encoded instead) and arbitrary sections do not match.
    """
    if not isinstance(payload, dict) or is_miss_trace(payload):
        return False
    saw_table = False
    for key, value in payload.items():
        if not isinstance(key, str):
            return False
        if isinstance(value, _SCALAR_TYPES):
            continue
        if not isinstance(value, list) or _row_kind(value) is None:
            return False
        saw_table = True
    return saw_table


def encode_rows(base: Dict[str, Any],
                payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The set-difference payload of a rows-encoded section, or ``None``.

    ``None`` means the pair is not diffable (key sets differ, a key
    changed shape, or a table has duplicate or unsorted rows) and the
    caller must fall back to a whole chunk.  The diff records, per table,
    the rows added relative to ``base`` and the *indices* of the removed
    base rows (indices pickle far smaller than repeating multi-int rows —
    an updated row costs one new row plus one small int, not two rows);
    because both tables are checked to be duplicate-free and the payload
    strictly sorted, :func:`fold_rows`'s
    ``sorted((base - removed) | added)`` rebuilds the new table exactly.
    """
    if list(base) != list(payload):
        return None
    scalars: Dict[str, Any] = {}
    tables: Dict[str, Dict[str, Any]] = {}
    try:
        for key, value in payload.items():
            if isinstance(value, _SCALAR_TYPES):
                scalars[key] = value
                continue
            kind = _row_kind(value)
            if kind is None or not isinstance(base.get(key), list):
                return None
            old = base[key]
            if any(a >= b for a, b in zip(value, value[1:])):
                return None  # unsorted or duplicate rows: fold would reorder
            if kind == "list":
                old_rows = [tuple(row) for row in old]
                new_set = {tuple(row) for row in value}
            else:
                old_rows = list(old)
                new_set = set(value)
            old_set = set(old_rows)
            if len(old_set) != len(old):
                return None  # duplicate rows in the base: fold would drop them
            removed = old_set - new_set
            tables[key] = {
                "kind": kind,
                "add": sorted(new_set - old_set),
                "del": sorted(index for index, row in enumerate(old_rows)
                              if row in removed)}
    except TypeError:  # heterogeneous rows: unhashable or unorderable
        return None
    return {"keys": list(payload), "scalars": scalars, "tables": tables}


def fold_rows(base: Dict[str, Any],
              diff: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a rows-encoded section payload from its base and a diff."""
    state: Dict[str, Any] = {}
    for key in diff["keys"]:
        if key in diff["scalars"]:
            state[key] = diff["scalars"][key]
            continue
        table = diff["tables"][key]
        dropped = set(table["del"])
        kept = [row for index, row in enumerate(base[key])
                if index not in dropped]
        if table["kind"] == "list":
            rows = {tuple(row) for row in kept}
            rows.update(tuple(row) for row in table["add"])
            state[key] = [list(row) for row in sorted(rows)]
        else:
            rows = set(kept)
            rows.update(table["add"])
            state[key] = sorted(rows)
    return state


def encode_append(payload: Dict[str, Any], base_records: int,
                  base_functions: int) -> Dict[str, Any]:
    """The tail-only payload of an append-encoded miss-trace section."""
    return {"context": payload["context"],
            "instructions": payload["instructions"],
            "functions": payload["functions"][base_functions:],
            "records": payload["records"][base_records:]}


def fold_append(base: Dict[str, Any], tail: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a full miss-trace payload from its base and a tail chunk."""
    return {"context": tail["context"],
            "instructions": tail["instructions"],
            "functions": list(base["functions"]) + list(tail["functions"]),
            "records": list(base["records"]) + list(tail["records"])}


class _PrevBoundary:
    """What the writer remembers about the last boundary it committed.

    Enough to *validate* the append property of miss-trace sections —
    counts plus the first/last record of the base — without holding the
    accumulated traces alive, plus the full payload of each rows-table
    section (bounded by the classifier tables, not the traces) so the next
    link can diff against it.  Unchanged non-trace sections need no
    bookkeeping: re-encoding them re-derives the same digest and the chunk
    write dedupes on the existing file.
    """

    def __init__(self, epoch: int, traces: Dict[str, Dict[str, Any]],
                 tables: Dict[str, Dict[str, Any]]) -> None:
        self.epoch = epoch
        self.traces = traces  # section -> {n_records, n_functions,
        #                                   functions, first, last}
        self.tables = tables  # section -> previous rows-table payload

    @staticmethod
    def trace_marks(payload: Dict[str, Any]) -> Dict[str, Any]:
        records = payload["records"]
        return {"n_records": len(records),
                "n_functions": len(payload["functions"]),
                "functions": [list(fn) for fn in payload["functions"]],
                "first": list(records[0]) if records else None,
                "last": list(records[-1]) if records else None}


def append_valid(marks: Dict[str, Any], payload: Dict[str, Any]) -> bool:
    """Whether ``payload`` extends the base the ``marks`` were taken from.

    Miss traces are append-only within a run, so the check is structural:
    the base's interned functions must be a prefix of the new ones and the
    base's first/last records must sit unchanged at their old positions.
    Any mismatch (a context that filtered or renumbered its records) simply
    disqualifies append encoding — the section falls back to a whole chunk.
    """
    records = payload["records"]
    functions = payload["functions"]
    n_rec, n_fn = marks["n_records"], marks["n_functions"]
    if len(records) < n_rec or len(functions) < n_fn:
        return False
    if functions[:n_fn] != marks["functions"]:
        return False
    if n_rec:
        if list(records[0]) != marks["first"]:
            return False
        if list(records[n_rec - 1]) != marks["last"]:
            return False
    return True


class DeltaChainWriter:
    """Commit successive boundary snapshots of one run as a delta chain.

    One writer per (store, params) run, fed boundaries in increasing epoch
    order — exactly the ``on_chunk`` cadence of
    :func:`~repro.checkpoint.replay.simulate_replay`.  The first boundary
    (and every :data:`DELTA_FULL_EVERY`-th after a full) writes a ``full``
    manifest; the rest write ``delta`` manifests whose miss-trace sections
    are append-encoded against the previous boundary.  Either kind lists
    *every* section, so only append sections need the chain walked at
    restore time; unchanged sections cost one manifest line and zero chunk
    bytes (the digest already exists).
    """

    def __init__(self, store: Any, params: Dict[str, Any],
                 full_every: int = DELTA_FULL_EVERY) -> None:
        if full_every < 1:
            raise ValueError("full_every must be >= 1")
        self.store = store
        self.params = dict(params)
        self.full_every = full_every
        self._prev: Optional[_PrevBoundary] = None
        self._links_since_full = 0

    def save(self, epoch: int, state: Dict[str, Any]) -> Path:
        from .store import STATS
        scalars, sections, order = split_state(state)
        prev = self._prev
        # A full link whenever there is no usable base: chain start, the
        # bounded-restore cadence, or a previous manifest that vanished
        # (e.g. a concurrent clear) — a delta against a missing base would
        # be unrestorable.
        kind = "delta"
        if (prev is None or self._links_since_full >= self.full_every
                or self.store.chain_manifest_path(self.params,
                                                  prev.epoch) is None):
            kind = "full"
        specs: Dict[str, Dict[str, Any]] = {}
        traces: Dict[str, Dict[str, Any]] = {}
        tables: Dict[str, Dict[str, Any]] = {}
        for name, payload in sections.items():
            spec: Dict[str, Any] = {}
            if (kind == "delta" and is_miss_trace(payload)
                    and name in prev.traces
                    and append_valid(prev.traces[name], payload)):
                marks = prev.traces[name]
                tail = encode_append(payload, marks["n_records"],
                                     marks["n_functions"])
                spec["append"] = {"base": prev.epoch,
                                  "records": marks["n_records"],
                                  "functions": marks["n_functions"]}
                spec["chunk"] = self.store.write_chunk(tail)
            else:
                diff = None
                if kind == "delta" and name in prev.tables:
                    diff = encode_rows(prev.tables[name], payload)
                if (diff is not None
                        and not any(table["add"] or table["del"]
                                    for table in diff["tables"].values())
                        and all(prev.tables[name][key] == value
                                for key, value in diff["scalars"].items())):
                    # Unchanged section: the whole chunk already exists, so
                    # re-deriving its digest costs zero new bytes, while an
                    # empty diff would be a new chunk file.
                    diff = None
                if diff is not None:
                    spec["rows"] = {"base": prev.epoch}
                    spec["chunk"] = self.store.write_chunk(diff)
                else:
                    spec["chunk"] = self.store.write_chunk(payload)
            specs[name] = spec
            if is_miss_trace(payload):
                traces[name] = _PrevBoundary.trace_marks(payload)
            elif is_rows_table(payload):
                tables[name] = payload
        manifest = {"format_version": CHECKPOINT_FORMAT_VERSION,
                    "epoch": int(epoch), "kind": kind,
                    "base": prev.epoch if kind == "delta" else None,
                    "params": self.params, "order": order,
                    "scalars": scalars, "sections": specs}
        path = self.store.save_chain_manifest(self.params, epoch, manifest)
        self._links_since_full = (0 if kind == "full"
                                  else self._links_since_full + 1)
        self._prev = _PrevBoundary(epoch, traces, tables)
        STATS.saves += 1
        if kind == "delta":
            STATS.delta_saves += 1
        return path


def _section_payload(store: Any, params: Dict[str, Any],
                     manifest: Dict[str, Any], name: str,
                     manifests: Dict[int, Dict[str, Any]]) -> Any:
    """Materialise one section of ``manifest``, folding append links.

    ``manifests`` memoises loaded manifests per fold so a chain of appends
    against the same base reads each manifest once.  Raises
    :class:`CheckpointCorruptError` when any link (manifest or chunk) of the
    section's chain is unreadable.
    """
    spec = manifest["sections"].get(name)
    if spec is None:
        raise CheckpointCorruptError(
            f"chain manifest at epoch {manifest['epoch']} has no section "
            f"{name!r}")
    payload = store.read_chunk(spec["chunk"])
    append = spec.get("append")
    rows = spec.get("rows")
    if append is None and rows is None:
        return payload
    link = append if append is not None else rows
    base_epoch = int(link["base"])
    base_manifest = manifests.get(base_epoch)
    if base_manifest is None:
        base_manifest = store.load_chain_manifest(params, base_epoch)
        if base_manifest is None:
            raise CheckpointCorruptError(
                f"delta section {name!r} at epoch {manifest['epoch']} "
                f"needs the missing base manifest at epoch {base_epoch}")
        manifests[base_epoch] = base_manifest
    base = _section_payload(store, params, base_manifest, name, manifests)
    if rows is not None:
        try:
            return fold_rows(base, payload)
        except (KeyError, TypeError) as exc:
            raise CheckpointCorruptError(
                f"rows section {name!r} at epoch {manifest['epoch']} "
                f"does not fold against its base: {exc}") from exc
    folded = fold_append(base, payload)
    if (len(folded["records"]) < int(append["records"])
            or len(folded["functions"]) < int(append["functions"])):
        raise CheckpointCorruptError(
            f"append section {name!r} at epoch {manifest['epoch']} folds "
            f"shorter than its declared base counts")
    return folded


def load_chain(store: Any, params: Dict[str, Any], epoch: int,
               manifest: Optional[Dict[str, Any]] = None
               ) -> Optional[Dict[str, Any]]:
    """Fold the chain ending at ``epoch`` back into the snapshot state.

    Returns ``None`` when no manifest exists at ``epoch``; raises
    :class:`CheckpointCorruptError` when the manifest or any chunk/base
    link it needs is unreadable (the store's ``load`` turns that into a
    warn-and-drop miss so ``latest`` falls back to an earlier boundary).
    """
    if manifest is None:
        manifest = store.load_chain_manifest(params, epoch)
        if manifest is None:
            return None
    if int(manifest.get("epoch", -1)) != epoch:
        raise CheckpointCorruptError(
            f"chain manifest holds epoch {manifest.get('epoch')}, "
            f"expected {epoch}")
    manifests: Dict[int, Dict[str, Any]] = {epoch: manifest}
    sections = {name: _section_payload(store, params, manifest, name,
                                       manifests)
                for name in manifest["sections"]}
    return join_state(manifest["scalars"], sections, manifest["order"])


# --------------------------------------------------------------------------- #
# maintenance: stats and garbage collection
# --------------------------------------------------------------------------- #
def iter_chain_manifests(store: Any):
    """Yield ``(path, manifest_dict)`` for every readable chain manifest.

    Walks every version directory (mirroring ``CheckpointStore.runs()``),
    reading manifests directly as JSON — maintenance must see chains of
    *other* format/package versions too, since their chunks share no
    namespace guard.  Unreadable manifests are skipped silently; the
    keyed ``load`` path owns warn-and-drop.
    """
    for run_dir in store.runs():
        for path in sorted(run_dir.iterdir()):
            if not (path.is_file() and parse_chain_name(path.name) >= 0):
                continue
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(manifest, dict) and "sections" in manifest:
                yield path, manifest


def referenced_digests(store: Any) -> Dict[str, int]:
    """Chunk digest -> number of manifest references across all chains."""
    refs: Dict[str, int] = {}
    for _path, manifest in iter_chain_manifests(store):
        for spec in manifest["sections"].values():
            digest = spec.get("chunk")
            if isinstance(digest, str):
                refs[digest] = refs.get(digest, 0) + 1
    return refs


def collect_garbage(store: Any) -> Tuple[int, int]:
    """Remove chunk files no chain manifest references.

    Returns ``(files_removed, bytes_freed)``.  Safe against concurrent
    readers of *referenced* chunks; a writer racing gc may need to rewrite
    a just-collected chunk (content addressing makes that benign).
    """
    refs = referenced_digests(store)
    removed = freed = 0
    for path in store.chunk_files():
        if path.name in refs:
            continue
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        removed += 1
        freed += size
    return removed, freed


def chain_stats(store: Any) -> Dict[str, Any]:
    """Aggregate chain/dedupe statistics for ``repro stats``.

    ``dedupe_ratio`` is manifest section references per unique referenced
    chunk — how many times the average chunk is shared (1.0 means no
    sharing at all).
    """
    refs = referenced_digests(store)
    full = delta = 0
    run_lengths: Dict[str, int] = {}
    for path, manifest in iter_chain_manifests(store):
        if manifest.get("kind") == "delta":
            delta += 1
        else:
            full += 1
        run = str(path.parent)
        run_lengths[run] = run_lengths.get(run, 0) + 1
    chunk_paths = store.chunk_files()
    referenced = sum(refs.values())
    return {
        "full_manifests": full,
        "delta_manifests": delta,
        "chains": len(run_lengths),
        "longest_chain": max(run_lengths.values(), default=0),
        "chunk_files": len(chunk_paths),
        "chunk_bytes": sum(p.stat().st_size for p in chunk_paths),
        "unreferenced_chunks": sum(1 for p in chunk_paths
                                   if p.name not in refs),
        "section_refs": referenced,
        "dedupe_ratio": (referenced / len(refs)) if refs else 0.0,
    }
