"""Shared-prefix warm starts: dedupe simulation prefixes across grid cells.

Grid cells that differ only in warm-up fraction (or in what is analysed
afterwards) run *bit-identical* simulations while recording is off: the
system state at every epoch boundary ``e`` with ``accesses_before(e) <= min
warmup`` is the same for every such cell, because nothing warmup-dependent
has happened yet.  This module gives that shared prefix its own checkpoint
identity:

* :func:`prefix_params` — a checkpoint-store key like
  :func:`~repro.checkpoint.store.checkpoint_params` but *without* the
  warm-up fraction (plus a ``prefix`` marker), so every cell of a group —
  and every later sweep over the same trace — resolves the same chain;
* :func:`shared_prefix_groups` — which (workload, organisation, scale)
  combinations of a spec deserve a prefix stage (at least two distinct
  clamped warm-ups, none of them zero);
* :func:`publish_prefix` — the ``prefix`` stage body: simulate the trace up
  to the last warmup-independent epoch boundary of the group's *smallest*
  warm-up with recording off throughout, leaving the boundary checkpoint
  chain under the prefix key.  Runs on any executor backend — dispatch
  workers resolve the same shared cache root — and resumes from its own
  earlier (shorter) prefix chains, so successive sweeps extend rather than
  recompute.

The consumer side is opportunistic: :func:`simulate_replay` takes the
prefix key plus the cell's own warmup-derived epoch limit and restores
whichever checkpoint — its own or the prefix's — is furthest along, so
warm starts also work for cells the planner never grouped (a later
single-cell run over the same trace still benefits).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..trace.format import DEFAULT_EPOCH_SIZE


def prefix_params(workload: str, n_cpus: int, seed: int, size: str,
                  organisation: str, scale: int,
                  epoch_size: int = DEFAULT_EPOCH_SIZE) -> Dict[str, Any]:
    """The checkpoint-store key of one shared simulation prefix.

    Warm-up is deliberately absent: the prefix only ever covers epochs
    every warm-up in the group agrees on, so one chain serves them all.
    The ``prefix`` marker keeps these runs from colliding with any cell's
    own checkpoint key.
    """
    return {"workload": workload, "n_cpus": n_cpus, "seed": seed,
            "size": size, "organisation": organisation, "scale": scale,
            "epoch_size": epoch_size, "prefix": True}


def shared_prefix_groups(cells: Iterable[Tuple[str, str, int, float]]
                         ) -> List[Tuple[Tuple[str, str, int], float]]:
    """The prefix groups of a spec's grid cells.

    ``cells`` yields ``(workload, organisation, scale, warmup)`` tuples
    whose warm-ups are *already clamped* (the caller owns the clamp so
    planner and runner agree on keys).  Returns
    ``[((workload, organisation, scale), min_warmup), ...]`` sorted for
    deterministic plan order, keeping only groups where a shared prefix
    exists and is non-empty: at least two distinct warm-ups, the smallest
    positive.
    """
    groups: Dict[Tuple[str, str, int], set] = {}
    for workload, organisation, scale, warmup in cells:
        groups.setdefault((workload, organisation, scale), set()).add(warmup)
    return [(key, min(warmups)) for key, warmups in sorted(groups.items())
            if len(warmups) >= 2 and min(warmups) > 0]


def publish_prefix(workload: str, organisation: str, size: str, seed: int,
                   scale: int, warmup_fraction: float, *,
                   cache_dir: Optional[str] = None,
                   resume: bool = True) -> str:
    """Simulate and publish one shared prefix; returns a stage status.

    ``warmup_fraction`` is the group's smallest (clamped) warm-up; the
    prefix runs to the last epoch boundary that fits inside it, with
    recording off for the whole range (``warmup = n_accesses``) — exactly
    the state every member cell passes through.  Publishing is idempotent:
    an existing boundary chain is ``"cached"``, a missing trace or store is
    ``"skipped"`` (the member cells then simply run cold).
    """
    from ..api.registry import SYSTEMS
    from ..trace import get_trace_store, trace_params
    from ..trace.epoch import boundary_at_or_before
    from .replay import simulate_replay
    from .store import get_checkpoint_store

    trace_store = get_trace_store(cache_dir)
    ckpt_store = get_checkpoint_store(cache_dir)
    if trace_store is None or ckpt_store is None:
        return "skipped"
    factory = SYSTEMS.get(organisation)
    reader = trace_store.open(trace_params(workload, factory.n_cpus, seed,
                                           size))
    if reader is None:
        return "skipped"
    warmup_accesses = int(reader.n_accesses * warmup_fraction)
    stop = boundary_at_or_before(reader.meta.segments, warmup_accesses)
    if stop < 1:
        return "skipped"
    key = prefix_params(workload, factory.n_cpus, seed, size, organisation,
                        scale, epoch_size=reader.meta.epoch_size)
    if stop in ckpt_store.epochs(key):
        return "cached"
    system = factory(scale=scale)
    simulate_replay(system, reader, warmup=reader.n_accesses,
                    store=ckpt_store, params=key, resume=resume,
                    stop_epoch=stop)
    return "ran"
