"""Checkpoint subsystem: epoch-boundary snapshots of full system state.

The simulation pass over a captured trace is strictly sequential — cache
contents, coherence state, and classification history at epoch *k* depend on
every epoch before it.  This package makes that state a first-class,
persistable artifact, in the spirit of checkpointed sampling (TurboSMARTS /
SimFlex): the memory models expose ``snapshot()``/``restore()`` returning
plain, versioned state dicts, and this package stores them compressed under
the shared cache root so that

* an interrupted run **resumes** from the latest epoch boundary instead of
  re-simulating from access zero, bit-identically, and
* once a serial pass has left checkpoints behind, *re*-simulation fans out
  **in parallel** across epoch ranges — each shard restores its starting
  checkpoint and the per-range miss records merge deterministically in
  epoch order (``ParallelSuiteRunner.simulate_trace``).

* :mod:`~repro.checkpoint.format` — versioned gzip-pickle encoding of one
  snapshot payload, plus content-addressed chunk encoding.
* :mod:`~repro.checkpoint.store` — :class:`CheckpointStore`,
  content-addressed under ``<cache root>/checkpoints``, with process-wide
  save/load/resume counters and a warn-and-drop policy for corrupt files.
* :mod:`~repro.checkpoint.delta` — delta-encoded checkpoint *chains*:
  per-section chunks, append-encoded miss traces, bounded-restore chain
  manifests, chunk garbage collection.
* :mod:`~repro.checkpoint.prefix` — shared-prefix warm starts: one prefix
  checkpoint chain per (trace, organisation, scale) group, published once
  and restored by every sibling grid cell.
* :mod:`~repro.checkpoint.replay` — :func:`simulate_replay` (resumable,
  warm-startable checkpointed replay) and :func:`simulate_epoch_range`
  (one parallel shard).

Layering: this package depends on the mem and trace layers only; the
experiments layer builds on it, never the other way around
(:func:`~repro.checkpoint.prefix.publish_prefix` touches the registries
via function-level imports for the same reason).
"""

from .delta import (DeltaChainWriter, chain_stats, collect_garbage,
                    load_chain)
from .format import (CHAIN_SUFFIX, CHECKPOINT_FORMAT_VERSION,
                     CheckpointCorruptError, DELTA_FULL_EVERY, chain_name,
                     checkpoint_name, decode_checkpoint, encode_checkpoint,
                     parse_chain_name, parse_checkpoint_name)
from .prefix import prefix_params, publish_prefix, shared_prefix_groups
from .replay import (DEFAULT_CHECKPOINT_TARGET, DELTA_CHECKPOINT_TARGET,
                     accesses_before, simulate_epoch_range, simulate_replay)
from .store import (CHECKPOINTS_SUBDIR, CHUNKS_SUBDIR, CheckpointStore,
                    CheckpointStoreStats, STATS, checkpoint_params,
                    get_checkpoint_store)

__all__ = [
    "CHAIN_SUFFIX", "CHECKPOINTS_SUBDIR", "CHECKPOINT_FORMAT_VERSION",
    "CHUNKS_SUBDIR", "CheckpointCorruptError", "CheckpointStore",
    "CheckpointStoreStats", "DEFAULT_CHECKPOINT_TARGET",
    "DELTA_CHECKPOINT_TARGET", "DELTA_FULL_EVERY", "DeltaChainWriter",
    "STATS", "accesses_before", "chain_name", "chain_stats",
    "checkpoint_name", "checkpoint_params", "collect_garbage",
    "decode_checkpoint", "encode_checkpoint", "get_checkpoint_store",
    "load_chain", "parse_chain_name", "parse_checkpoint_name",
    "prefix_params", "publish_prefix", "shared_prefix_groups",
    "simulate_epoch_range", "simulate_replay",
]
