"""Versioned, compressed on-disk encoding of system snapshots.

A checkpoint file holds one gzip-compressed pickle of a plain-structure
payload::

    {"format_version": 1,
     "params": {...},        # the CheckpointStore key that owns this file
     "epoch": 7,             # state after replaying epochs [0, 7)
     "state": {...}}         # a system model's snapshot() dict

The ``state`` dicts come from the ``snapshot()`` methods of the memory
models (:class:`~repro.mem.multichip.MultiChipSystem`,
:class:`~repro.mem.singlechip.SingleChipSystem`) and the prefetchers; they
contain only builtin containers and scalars, so the pickle payload is stable
across refactors of the model classes.  Bump
:data:`CHECKPOINT_FORMAT_VERSION` whenever the payload layout or any
``snapshot()`` schema changes incompatibly — the store namespaces entries by
this version (and the package version), so old checkpoints are orphaned
rather than restored into incompatible models.

gzip frames are written with ``mtime=0`` so encoding the same state twice
produces byte-identical files (checkpoints written by a rerun or a parallel
worker race benignly).
"""

from __future__ import annotations

import gzip
import hashlib
import pickle
from typing import Any, Dict, Tuple

#: Bump when the checkpoint payload layout (or any snapshot schema) changes
#: incompatibly.
CHECKPOINT_FORMAT_VERSION = 2

#: File-name suffix of one committed checkpoint.
CHECKPOINT_SUFFIX = ".ckpt.gz"

#: File-name suffix of one delta-chain manifest (JSON, referencing
#: content-addressed chunks; see :mod:`repro.checkpoint.delta`).
CHAIN_SUFFIX = ".chain.json"

#: A chain writes a ``full`` manifest every this many ``delta`` links, so
#: restoring any epoch folds a bounded number of manifests.
DELTA_FULL_EVERY = 8


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is unreadable or inconsistent with its header."""


def checkpoint_name(epoch: int) -> str:
    """File name of the checkpoint taken at epoch boundary ``epoch``."""
    if epoch < 0:
        raise ValueError("checkpoint epoch must be >= 0")
    return f"epoch-{epoch:06d}{CHECKPOINT_SUFFIX}"


def parse_checkpoint_name(name: str) -> int:
    """Epoch index encoded in a checkpoint file name, or -1 when foreign."""
    if not (name.startswith("epoch-") and name.endswith(CHECKPOINT_SUFFIX)):
        return -1
    digits = name[len("epoch-"):-len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else -1


def chain_name(epoch: int) -> str:
    """File name of the chain manifest at epoch boundary ``epoch``."""
    if epoch < 0:
        raise ValueError("checkpoint epoch must be >= 0")
    return f"epoch-{epoch:06d}{CHAIN_SUFFIX}"


def parse_chain_name(name: str) -> int:
    """Epoch index encoded in a chain-manifest file name, or -1 when foreign."""
    if not (name.startswith("epoch-") and name.endswith(CHAIN_SUFFIX)):
        return -1
    digits = name[len("epoch-"):-len(CHAIN_SUFFIX)]
    return int(digits) if digits.isdigit() else -1


def encode_chunk(payload: Any) -> Tuple[str, bytes]:
    """Serialise one section payload into ``(digest, blob)``.

    The digest addresses the *uncompressed* pickle, so identical payloads
    dedupe to one chunk file regardless of when (or by which run) they were
    written; the blob is the same deterministic gzip framing full
    checkpoints use (``mtime=0``, level 1).
    """
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(raw).hexdigest()
    return digest, gzip.compress(raw, compresslevel=1, mtime=0)


def decode_chunk(blob: bytes, digest: str) -> Any:
    """Decode a chunk blob, verifying it hashes to ``digest``.

    Raises :class:`CheckpointCorruptError` on a truncated frame, an
    unpicklable payload, or a digest mismatch (a torn write under the
    expected name), so chain loaders have one error to warn-and-drop on.
    """
    try:
        raw = gzip.decompress(blob)
    except (OSError, EOFError) as exc:
        raise CheckpointCorruptError(f"unreadable chunk {digest[:12]}: "
                                     f"{exc}") from exc
    actual = hashlib.sha256(raw).hexdigest()
    if actual != digest:
        raise CheckpointCorruptError(
            f"chunk content hashes to {actual[:12]}, expected {digest[:12]} "
            f"(torn or tampered write)")
    try:
        return pickle.loads(raw)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, TypeError, ValueError) as exc:
        raise CheckpointCorruptError(f"unpicklable chunk {digest[:12]}: "
                                     f"{exc}") from exc


def encode_checkpoint(params: Dict[str, Any], epoch: int,
                      state: Dict[str, Any]) -> bytes:
    """Serialise one snapshot into a compressed checkpoint blob."""
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "params": dict(params),
        "epoch": int(epoch),
        "state": state,
    }
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # Low compression level: checkpoint writes sit on the simulation's
    # critical path, and system snapshots compress well even at level 1.
    return gzip.compress(raw, compresslevel=1, mtime=0)


def decode_checkpoint(blob: bytes) -> Tuple[Dict[str, Any], int,
                                            Dict[str, Any]]:
    """Decode a checkpoint blob into ``(params, epoch, state)``.

    Raises :class:`CheckpointCorruptError` on any defect — truncated gzip
    frame, unpicklable payload, missing keys, or a format-version mismatch —
    so callers have exactly one error to turn into a warn-and-drop.
    """
    try:
        payload = pickle.loads(gzip.decompress(blob))
        version = int(payload["format_version"])
        params = dict(payload["params"])
        epoch = int(payload["epoch"])
        state = payload["state"]
    except (OSError, EOFError, KeyError, TypeError, ValueError,
            pickle.UnpicklingError, AttributeError, ImportError,
            IndexError) as exc:
        raise CheckpointCorruptError(
            f"unreadable checkpoint payload: {exc}") from exc
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"checkpoint has format version {version}, expected "
            f"{CHECKPOINT_FORMAT_VERSION}")
    if not isinstance(state, dict):
        raise CheckpointCorruptError(
            f"checkpoint state is {type(state).__name__}, expected dict")
    return params, epoch, state
