"""Versioned, compressed on-disk encoding of system snapshots.

A checkpoint file holds one gzip-compressed pickle of a plain-structure
payload::

    {"format_version": 1,
     "params": {...},        # the CheckpointStore key that owns this file
     "epoch": 7,             # state after replaying epochs [0, 7)
     "state": {...}}         # a system model's snapshot() dict

The ``state`` dicts come from the ``snapshot()`` methods of the memory
models (:class:`~repro.mem.multichip.MultiChipSystem`,
:class:`~repro.mem.singlechip.SingleChipSystem`) and the prefetchers; they
contain only builtin containers and scalars, so the pickle payload is stable
across refactors of the model classes.  Bump
:data:`CHECKPOINT_FORMAT_VERSION` whenever the payload layout or any
``snapshot()`` schema changes incompatibly — the store namespaces entries by
this version (and the package version), so old checkpoints are orphaned
rather than restored into incompatible models.

gzip frames are written with ``mtime=0`` so encoding the same state twice
produces byte-identical files (checkpoints written by a rerun or a parallel
worker race benignly).
"""

from __future__ import annotations

import gzip
import pickle
from typing import Any, Dict, Tuple

#: Bump when the checkpoint payload layout (or any snapshot schema) changes
#: incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: File-name suffix of one committed checkpoint.
CHECKPOINT_SUFFIX = ".ckpt.gz"


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is unreadable or inconsistent with its header."""


def checkpoint_name(epoch: int) -> str:
    """File name of the checkpoint taken at epoch boundary ``epoch``."""
    if epoch < 0:
        raise ValueError("checkpoint epoch must be >= 0")
    return f"epoch-{epoch:06d}{CHECKPOINT_SUFFIX}"


def parse_checkpoint_name(name: str) -> int:
    """Epoch index encoded in a checkpoint file name, or -1 when foreign."""
    if not (name.startswith("epoch-") and name.endswith(CHECKPOINT_SUFFIX)):
        return -1
    digits = name[len("epoch-"):-len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else -1


def encode_checkpoint(params: Dict[str, Any], epoch: int,
                      state: Dict[str, Any]) -> bytes:
    """Serialise one snapshot into a compressed checkpoint blob."""
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "params": dict(params),
        "epoch": int(epoch),
        "state": state,
    }
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # Low compression level: checkpoint writes sit on the simulation's
    # critical path, and system snapshots compress well even at level 1.
    return gzip.compress(raw, compresslevel=1, mtime=0)


def decode_checkpoint(blob: bytes) -> Tuple[Dict[str, Any], int,
                                            Dict[str, Any]]:
    """Decode a checkpoint blob into ``(params, epoch, state)``.

    Raises :class:`CheckpointCorruptError` on any defect — truncated gzip
    frame, unpicklable payload, missing keys, or a format-version mismatch —
    so callers have exactly one error to turn into a warn-and-drop.
    """
    try:
        payload = pickle.loads(gzip.decompress(blob))
        version = int(payload["format_version"])
        params = dict(payload["params"])
        epoch = int(payload["epoch"])
        state = payload["state"]
    except (OSError, EOFError, KeyError, TypeError, ValueError,
            pickle.UnpicklingError, AttributeError, ImportError,
            IndexError) as exc:
        raise CheckpointCorruptError(
            f"unreadable checkpoint payload: {exc}") from exc
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"checkpoint has format version {version}, expected "
            f"{CHECKPOINT_FORMAT_VERSION}")
    if not isinstance(state, dict):
        raise CheckpointCorruptError(
            f"checkpoint state is {type(state).__name__}, expected dict")
    return params, epoch, state
