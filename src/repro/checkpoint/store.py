"""Content-addressed on-disk store of epoch-boundary system checkpoints.

Sits alongside the trace and result stores under the same cache root::

    <root>/checkpoints/v<format>-<package version>/<param slug>/
        epoch-000004.ckpt.gz
        epoch-000008.ckpt.gz
        ...

A checkpoint run is keyed by everything that determines system state at an
epoch boundary: the trace key ``(workload, n_cpus, seed, size)`` — epochs
are defined by the captured trace — plus the system organisation, the cache
scale, and the warm-up fraction (recording on/off changes the statistics a
snapshot carries).  Entries are namespaced by the checkpoint format version
**and** the package version (model semantics change with releases), so
either bump orphans old checkpoints rather than restoring stale state.

Corrupt or truncated checkpoint files are a *miss*, not an error: ``load``
warns, unlinks the file, and returns ``None`` so the caller re-simulates
(mirroring ``ResultStore.load``); ``latest`` transparently falls back to the
next older epoch.

Module-level :data:`STATS` counts saves/loads/misses/resumes for this
process; tests and the CLI use it to prove a run resumed from disk instead
of simulating from the start.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..cachedir import default_cache_root, params_slug
from ..obs.metrics import REGISTRY
from ..trace.format import DEFAULT_EPOCH_SIZE
from .format import (CHECKPOINT_FORMAT_VERSION, CheckpointCorruptError,
                     chain_name, checkpoint_name, decode_checkpoint,
                     decode_chunk, encode_checkpoint, encode_chunk,
                     parse_chain_name, parse_checkpoint_name)

#: Subdirectory of the cache root holding all checkpoint versions.
CHECKPOINTS_SUBDIR = "checkpoints"

#: Subdirectory of one version dir holding content-addressed chunks, shared
#: by every run of that version (cross-run dedupe).  Never a run slug:
#: ``runs()`` skips it by name.
CHUNKS_SUBDIR = "chunks"


@dataclass
class CheckpointStoreStats:
    """Process-wide counters over every :class:`CheckpointStore` instance."""

    saves: int = 0
    loads: int = 0
    misses: int = 0
    #: Simulations that restored a checkpoint instead of starting fresh.
    resumes: int = 0
    #: Corrupt files dropped by ``load``.
    drops: int = 0
    #: Boundaries committed as delta links (subset of ``saves``).
    delta_saves: int = 0
    #: Content-addressed chunk files actually written.
    chunk_writes: int = 0
    #: Chunk writes elided because the digest already existed on disk.
    chunk_dedup_hits: int = 0
    #: Resumes that restored a *shared-prefix* checkpoint published by
    #: another cell (subset of ``resumes``).
    warm_starts: int = 0

    def reset(self) -> None:
        self.saves = self.loads = self.misses = self.resumes = self.drops = 0
        self.delta_saves = self.chunk_writes = self.chunk_dedup_hits = 0
        self.warm_starts = 0


#: Shared counters (all stores in this process).  Registered into the
#: unified metrics registry as the ``checkpoint_store.*`` section; the
#: module attribute stays the canonical increment site.
STATS = REGISTRY.register_stats("checkpoint_store", CheckpointStoreStats())


def checkpoint_params(workload: str, n_cpus: int, seed: int, size: str,
                      organisation: str, scale: int, warmup: float,
                      epoch_size: int = DEFAULT_EPOCH_SIZE) -> Dict[str, Any]:
    """The canonical key of one checkpointed simulation run.

    ``epoch_size`` is the segmentation of the captured trace the epochs are
    counted in — a checkpoint's epoch index is only meaningful relative to
    one segmentation, so a re-capture at a different epoch size must never
    restore the old run's snapshots.  Callers with a reader in hand pass
    ``reader.meta.epoch_size``.
    """
    return {"workload": workload, "n_cpus": n_cpus, "seed": seed,
            "size": size, "organisation": organisation, "scale": scale,
            "warmup": warmup, "epoch_size": epoch_size}


class CheckpointStore:
    """Directory-per-run store under ``<cache root>/checkpoints``."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        base = Path(root) if root is not None else default_cache_root()
        self.root = base / CHECKPOINTS_SUBDIR
        self.version = f"{CHECKPOINT_FORMAT_VERSION}-{__version__}"

    # ------------------------------------------------------------------ #
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, params: Dict[str, Any]) -> Path:
        """The directory the checkpoints of one run live in."""
        return self.version_dir / params_slug(params)

    def file_for(self, params: Dict[str, Any], epoch: int) -> Path:
        return self.path_for(params) / checkpoint_name(epoch)

    # ------------------------------------------------------------------ #
    # content-addressed chunks and chain manifests (delta checkpoints)
    # ------------------------------------------------------------------ #
    @property
    def chunk_dir(self) -> Path:
        return self.version_dir / CHUNKS_SUBDIR

    def chunk_path(self, digest: str) -> Path:
        return self.chunk_dir / digest[:2] / digest

    def write_chunk(self, payload: Any) -> str:
        """Persist one section payload by content; returns its digest.

        A chunk whose digest already exists on disk is not rewritten —
        that is the whole-point dedupe between consecutive boundaries of
        one run and between runs sharing a simulation prefix.
        """
        digest, blob = encode_chunk(payload)
        path = self.chunk_path(digest)
        if path.is_file():
            STATS.chunk_dedup_hits += 1
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path, blob)
        STATS.chunk_writes += 1
        return digest

    def read_chunk(self, digest: str) -> Any:
        """Load and verify one chunk; raises ``CheckpointCorruptError``.

        A torn chunk (digest mismatch) is unlinked so the next writer
        regenerates it instead of dedupe-skipping the bad file.
        """
        path = self.chunk_path(digest)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"missing chunk {digest[:12]}: {exc}") from exc
        try:
            return decode_chunk(blob, digest)
        except CheckpointCorruptError:
            try:
                path.unlink()
            except OSError:
                pass
            raise

    def chunk_files(self) -> List[Path]:
        """Every chunk file across every version directory."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob(f"v*/{CHUNKS_SUBDIR}/*/*")
                      if p.is_file())

    def chain_file_for(self, params: Dict[str, Any], epoch: int) -> Path:
        return self.path_for(params) / chain_name(epoch)

    def chain_manifest_path(self, params: Dict[str, Any],
                            epoch: int) -> Optional[Path]:
        """The manifest path at ``epoch`` if one exists on disk."""
        path = self.chain_file_for(params, epoch)
        return path if path.is_file() else None

    def save_chain_manifest(self, params: Dict[str, Any], epoch: int,
                            manifest: Dict[str, Any]) -> Path:
        path = self.chain_file_for(params, epoch)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(manifest, sort_keys=True).encode("utf-8")
        self._write_atomic(path, blob)
        return path

    def load_chain_manifest(self, params: Dict[str, Any],
                            epoch: int) -> Optional[Dict[str, Any]]:
        """The manifest dict at ``epoch``, or ``None``; corrupt JSON is a
        warn-and-drop miss like any other unreadable checkpoint file."""
        path = self.chain_file_for(params, epoch)
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._drop(path, CheckpointCorruptError(str(exc)))
            return None
        if not isinstance(manifest, dict) or "sections" not in manifest:
            self._drop(path, CheckpointCorruptError("not a chain manifest"))
            return None
        return manifest

    @staticmethod
    def _write_atomic(path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def save(self, params: Dict[str, Any], epoch: int,
             state: Dict[str, Any]) -> Path:
        """Atomically persist one snapshot at epoch boundary ``epoch``.

        Writes to a temporary sibling and ``os.replace``s it into place, so
        concurrent writers of the same (identical-by-construction) state
        race benignly.
        """
        path = self.file_for(params, epoch)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path, encode_checkpoint(params, epoch, state))
        STATS.saves += 1
        return path

    def load(self, params: Dict[str, Any],
             epoch: int) -> Optional[Dict[str, Any]]:
        """The snapshot state at ``epoch``, or ``None`` on miss.

        Resolves both encodings at a boundary — a legacy full ``.ckpt.gz``
        file or a delta-chain manifest (folded via
        :func:`repro.checkpoint.delta.load_chain`).  A corrupt or truncated
        file anywhere on the way is dropped with a warning and treated as a
        miss, so an interrupted writer can never wedge later runs.
        """
        path = self.file_for(params, epoch)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return self._load_chain(params, epoch)
        except OSError as exc:
            self._drop(path, exc)
            return None
        try:
            _, stored_epoch, state = decode_checkpoint(blob)
            if stored_epoch != epoch:
                raise CheckpointCorruptError(
                    f"file {path.name} holds epoch {stored_epoch}")
        except CheckpointCorruptError as exc:
            self._drop(path, exc)
            return None
        STATS.loads += 1
        return state

    def _load_chain(self, params: Dict[str, Any],
                    epoch: int) -> Optional[Dict[str, Any]]:
        """Fold the delta chain at ``epoch``; ``None`` on miss/corruption."""
        from . import delta  # function-level: delta imports this module
        path = self.chain_file_for(params, epoch)
        if not path.is_file():
            STATS.misses += 1
            return None
        manifest = self.load_chain_manifest(params, epoch)
        if manifest is None:
            return None  # already warned/dropped/counted
        try:
            state = delta.load_chain(self, params, epoch, manifest=manifest)
        except CheckpointCorruptError as exc:
            self._drop(path, exc)
            return None
        STATS.loads += 1
        return state

    def _drop(self, path: Path, exc: Exception) -> None:
        warnings.warn(
            f"dropping unreadable checkpoint {path} "
            f"({type(exc).__name__}: {exc}); the run will simulate from an "
            f"earlier epoch instead", RuntimeWarning, stacklevel=3)
        try:
            path.unlink()
        except OSError:
            pass
        STATS.drops += 1
        STATS.misses += 1

    # ------------------------------------------------------------------ #
    @staticmethod
    def epochs_in(run_dir: Path) -> List[int]:
        """Sorted epoch boundaries stored in one run directory.

        A boundary may be held by a legacy full file, a chain manifest, or
        (benignly, after a format migration mid-run) both.
        """
        if not run_dir.is_dir():
            return []
        found = {max(parse_checkpoint_name(p.name), parse_chain_name(p.name))
                 for p in run_dir.iterdir() if p.is_file()}
        return sorted(epoch for epoch in found if epoch >= 0)

    def epochs(self, params: Dict[str, Any]) -> List[int]:
        """Sorted epoch boundaries with a stored checkpoint for this run."""
        return self.epochs_in(self.path_for(params))

    def latest(self, params: Dict[str, Any],
               max_epoch: Optional[int] = None
               ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest loadable checkpoint ``(epoch, state)``, or ``None``.

        ``max_epoch`` bounds the search (inclusive) — a resume must not
        restore state from beyond the range it intends to simulate.  Corrupt
        files encountered on the way are dropped and the next older epoch is
        tried, so one bad file degrades resume granularity instead of
        failing the run.
        """
        for epoch in reversed(self.epochs(params)):
            if max_epoch is not None and epoch > max_epoch:
                continue
            state = self.load(params, epoch)
            if state is not None:
                return epoch, state
        return None

    def drop_run(self, params: Dict[str, Any]) -> int:
        """Remove every checkpoint of one run; returns the number removed."""
        run_dir = self.path_for(params)
        removed = len(self.epochs(params))
        shutil.rmtree(run_dir, ignore_errors=True)
        return removed

    # ------------------------------------------------------------------ #
    def runs(self) -> List[Path]:
        """All run directories holding checkpoints, across every version."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("v*/*")
                      if p.is_dir() and p.name != CHUNKS_SUBDIR)

    def entries(self) -> List[Path]:
        """All checkpoint files (full and chain) across every version."""
        return sorted(p for run in self.runs() for p in run.iterdir()
                      if p.is_file()
                      and max(parse_checkpoint_name(p.name),
                              parse_chain_name(p.name)) >= 0)

    def size_bytes(self) -> int:
        """Total bytes on disk: checkpoint entries plus shared chunks."""
        return (sum(p.stat().st_size for p in self.entries())
                + sum(p.stat().st_size for p in self.chunk_files()))

    def entry_size(self, params: Dict[str, Any], epoch: int) -> int:
        """Bytes this boundary occupies: its file/manifest plus the chunks
        its manifest references (shared chunks counted in full here)."""
        total = 0
        legacy = self.file_for(params, epoch)
        if legacy.is_file():
            total += legacy.stat().st_size
        chain = self.chain_file_for(params, epoch)
        if chain.is_file():
            total += chain.stat().st_size
            manifest = self.load_chain_manifest(params, epoch)
            if manifest is not None:
                for spec in manifest["sections"].values():
                    chunk = self.chunk_path(spec["chunk"])
                    if chunk.is_file():
                        total += chunk.stat().st_size
        return total

    def entry_kind(self, params: Dict[str, Any], epoch: int) -> str:
        """``"full"``, ``"delta"``, or ``"?"`` for one stored boundary."""
        if self.file_for(params, epoch).is_file():
            return "full"
        manifest = self.load_chain_manifest(params, epoch)
        if manifest is not None:
            return str(manifest.get("kind", "?"))
        return "?"

    def clear(self) -> int:
        """Remove every version directory; returns the number of files."""
        removed = len(self.entries())
        if self.root.is_dir():
            for child in self.root.glob("v*"):
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    def describe(self) -> str:
        n = len(self.entries())
        runs = len(self.runs())
        chunks = len(self.chunk_files())
        return (f"checkpoint store {self.root} (current version "
                f"v{self.version}): {n} checkpoint{'' if n == 1 else 's'} "
                f"across {runs} run{'' if runs == 1 else 's'}, "
                f"{chunks} chunk{'' if chunks == 1 else 's'}, "
                f"{self.size_bytes() / 1024:.1f} KiB")


def get_checkpoint_store(cache_dir: Optional[str] = None
                         ) -> Optional[CheckpointStore]:
    """The checkpoint store to use, or ``None`` when disk caching is off.

    Thin delegate to the default :class:`~repro.api.session.Session`'s
    checkpoint store; ``cache_dir`` overrides the root for this store only.
    """
    from ..api.session import get_default_session
    session = get_default_session()
    if cache_dir:
        session = session.with_options(cache_dir=cache_dir)
    return session.checkpoint_store
