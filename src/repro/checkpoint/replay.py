"""Checkpointed replay: resumable simulation over a captured trace.

:func:`simulate_replay` is the bridge between the trace layer (epoch-
segmented columnar replay) and the memory models' ``snapshot()/restore()``:
it drives one system over a trace's epoch chunks, saving a snapshot into a
:class:`~repro.checkpoint.store.CheckpointStore` at epoch boundaries, and —
when a run with the same key already left checkpoints behind — restores the
latest one and simulates only the remaining epochs.  Because a snapshot
captures *all* state an epoch's processing depends on (cache contents and
LRU order, classification history, accumulated miss traces, instruction and
recording bookkeeping), the resumed run is bit-identical to an uninterrupted
one.

The same mechanism yields epoch-sharded *parallel* simulation
(:meth:`repro.experiments.parallel.ParallelSuiteRunner.simulate_trace`):
once a serial pass has left checkpoints at epoch boundaries, each shard
restores the checkpoint at its starting epoch via :func:`simulate_epoch_range`
and simulates only its own range; deltas merge deterministically in epoch
order.

This module deliberately depends only on the trace and mem layers (plus the
shared cache-dir helpers) — nothing here imports the experiments layer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..mem.records import MissRecord
from ..trace.replay import TraceReader
from .delta import DeltaChainWriter
from .store import CheckpointStore, STATS

#: Adaptive checkpoint stride aims for about this many snapshots per run.
#: A snapshot's cost grows with accumulated state (miss traces, touched
#: blocks), so checkpointing *every* boundary of a long trace would cost
#: more than the simulation itself; a dozen evenly-spaced boundaries keeps
#: the overhead small while resume/sharding granularity stays useful.
DEFAULT_CHECKPOINT_TARGET = 12

#: Target snapshot count when boundaries are committed as delta chains.
#: A delta link costs only the state that changed since the last boundary
#: (the miss-trace tail plus touched caches), so the affordable density is
#: several times the full-snapshot target.
DELTA_CHECKPOINT_TARGET = 48


def accesses_before(reader: TraceReader, epoch: int) -> int:
    """Number of trace accesses in epochs ``[0, epoch)``."""
    return sum(segment["n"] for segment in reader.meta.segments[:epoch])


def simulate_replay(system: Any, reader: TraceReader, warmup: int = 0,
                    store: Optional[CheckpointStore] = None,
                    params: Optional[Dict[str, Any]] = None,
                    resume: bool = True,
                    checkpoint_every: Optional[int] = None,
                    stop_epoch: Optional[int] = None,
                    delta: bool = True,
                    prefix_params: Optional[Dict[str, Any]] = None,
                    prefix_limit: Optional[int] = None) -> Any:
    """Replay ``reader``'s epochs through ``system`` with checkpointing.

    Parameters
    ----------
    system:
        A fresh system model exposing the streaming interface plus
        ``snapshot()``/``restore()``.
    warmup:
        Warm-up boundary in *accesses from the start of the trace* (the
        runner's usual fraction-of-length arithmetic), honoured even when
        the run resumes mid-trace.
    store / params:
        Where checkpoints live and the key of this run.  When either is
        ``None`` the replay runs unchanged (no snapshots, no resume).
    resume:
        Restore the latest stored checkpoint at or before the target range
        end and simulate only the remaining epochs.
    checkpoint_every:
        Epoch-boundary stride between snapshots (``0`` disables saving but
        still allows resume; ``None`` — the default — picks a stride
        targeting :data:`DELTA_CHECKPOINT_TARGET` snapshots for the whole
        trace, or :data:`DEFAULT_CHECKPOINT_TARGET` with ``delta=False``).
        The final boundary of the run is always saved so a completed prefix
        is never lost to stride rounding.
    stop_epoch:
        Simulate only epochs ``[start, stop_epoch)`` — used by tests to
        model an interrupted run; the default runs to the end of the trace.
    delta:
        Commit boundaries as content-addressed delta chains
        (:class:`~repro.checkpoint.delta.DeltaChainWriter`) instead of
        whole-snapshot files.  Restore folds chains and legacy files
        interchangeably, bit-identically.
    prefix_params / prefix_limit:
        The shared-prefix checkpoint key of this run's trace/organisation/
        scale group and the last epoch boundary still inside this run's
        warm-up (see :mod:`repro.checkpoint.prefix`).  With ``resume``, a
        prefix checkpoint *further along* than this run's own latest is
        restored instead — a warm start, counted in
        ``STATS.warm_starts`` — never beyond ``prefix_limit``, where state
        would start depending on the warm-up fraction.

    Returns whatever the system's ``finish()`` returns (one miss trace for
    the multi-chip model, an (off-chip, intra-chip) pair for single-chip).
    """
    stop = reader.n_epochs if stop_epoch is None else min(stop_epoch,
                                                          reader.n_epochs)
    if checkpoint_every is None:
        target = DELTA_CHECKPOINT_TARGET if delta else DEFAULT_CHECKPOINT_TARGET
        checkpoint_every = max(1, reader.n_epochs // target)
    start = 0
    checkpointing = store is not None and params is not None
    if checkpointing and resume:
        found = store.latest(params, max_epoch=stop)
        start = found[0] if found is not None else 0
        if prefix_params is not None and prefix_limit is not None:
            cap = min(stop, prefix_limit)
            if cap > start:
                warm = store.latest(prefix_params, max_epoch=cap)
                if warm is not None and warm[0] > start:
                    found = warm
                    STATS.warm_starts += 1
        if found is not None:
            start, state = found
            system.restore(state)
            STATS.resumes += 1
    seen = accesses_before(reader, start)

    on_chunk = None
    if checkpointing and checkpoint_every:
        writer = DeltaChainWriter(store, params) if delta else None

        def on_chunk(chunk: Any, seen_after: int) -> None:
            boundary = chunk.epoch + 1
            if chunk.epoch >= 0 and (boundary % checkpoint_every == 0
                                     or boundary == stop):
                if writer is not None:
                    writer.save(boundary, system.snapshot())
                else:
                    store.save(params, boundary, system.snapshot())

    return system.run_chunks(reader.iter_epochs(start, stop), warmup=warmup,
                             seen=seen, on_chunk=on_chunk)


def simulate_epoch_range(system: Any, reader: TraceReader, start_epoch: int,
                         stop_epoch: int, warmup: int,
                         store: Optional[CheckpointStore],
                         params: Optional[Dict[str, Any]]
                         ) -> Tuple[Dict[str, List[MissRecord]], int]:
    """Simulate epochs ``[start_epoch, stop_epoch)`` as one parallel shard.

    Restores the checkpoint at ``start_epoch`` (a shard starting at epoch 0
    needs none), replays only its own range, and returns
    ``(delta_records_by_context, total_instructions)`` where the deltas are
    the miss records this range produced.  Because the restored snapshot
    embeds the cumulative miss traces of epochs ``[0, start_epoch)``, the
    delta records carry globally correct sequence numbers — concatenating
    shard deltas in epoch order reproduces the serial trace exactly.

    Raises ``LookupError`` when the required starting checkpoint is missing
    or unreadable; the caller decides whether to fall back to a serial run.
    """
    if start_epoch > 0:
        state = (store.load(params, start_epoch)
                 if store is not None and params is not None else None)
        if state is None:
            raise LookupError(
                f"no checkpoint at epoch {start_epoch} for {params}")
        system.restore(state)
        STATS.resumes += 1
    base = {context: len(trace)
            for context, trace in system.miss_traces().items()}
    system.run_chunks(reader.iter_epochs(start_epoch, stop_epoch),
                      warmup=warmup,
                      seen=accesses_before(reader, start_epoch))
    traces = system.miss_traces()
    deltas = {context: trace.records[base[context]:]
              for context, trace in traces.items()}
    instructions = next(iter(traces.values())).instructions
    return deltas, instructions
