"""repro: reproduction of "Temporal Streams in Commercial Server Applications".

(Wenisch, Ferdman, Ailamaki, Falsafi, Moshovos — IISWC 2008.)

The library has four layers:

* :mod:`repro.mem` — the memory-system substrate: set-associative caches,
  the multi-chip (MSI) and single-chip (MOSI) system models, DMA/copyout
  handling, and the extended 4C miss classifier.
* :mod:`repro.workloads` — synthetic behavioural models of the paper's
  commercial workloads (web serving, OLTP, DSS) and of the Solaris kernel
  subsystems their misses are attributed to.
* :mod:`repro.core` — the paper's contribution: SEQUITUR-based temporal
  stream identification, stream length / reuse-distance / stride analyses,
  and code-module attribution.
* :mod:`repro.experiments` — drivers that regenerate every figure and table
  of the paper's evaluation, plus :mod:`repro.prefetch` with temporal and
  stride prefetcher models used for the ablation studies.

On top sits :mod:`repro.api` — the composition layer: a :class:`Session`
facade owning the cache root, stores, and parallelism policy; plugin
registries for workloads/systems/prefetchers/analyses; and declarative
:class:`ExperimentSpec` grids resolved into executable stage DAGs.

Quick start::

    from repro.api import Session
    result = Session().run("Apache", "multi-chip", size="small")
    print(result.stream_analysis.fraction_in_streams)
"""

__version__ = "1.0.0"

from . import core, mem, workloads

__all__ = ["core", "mem", "workloads", "__version__"]
