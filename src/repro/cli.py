"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
run
    One (workload, context) pair through the streaming pipeline; prints the
    bundle's headline numbers (misses, MPKI, stream fractions, top classes).
    With ``--spec FILE`` runs every cell of a declarative experiment spec.
suite
    The full evaluation sweep (all workloads x all contexts) over the
    process-pool runner; a second invocation is served from the disk cache.
    With ``--spec FILE`` the sweep grid comes from the spec.
report
    Render the paper's figures and tables from (cached) suite results.
    With ``--spec FILE`` renders the spec's requested analyses; with
    ``--where COL<OP>VAL`` filters answer straight from the run index
    without unpickling any artifact.
query
    Ask the sqlite run index about past runs: pick a table (``cells``,
    ``runs``, ``stages``, ``spans``, ``artifacts``, ``workers``,
    ``executions``), filter with repeatable ``--where``, group and
    aggregate with ``--group-by``/``--agg``, and render as a table,
    JSON, or CSV.  The index is refreshed incrementally on every
    invocation (``--rebuild`` re-ingests from scratch).
spec
    Work with declarative experiment specs: ``validate`` a TOML file,
    ``plan`` to print the capture -> simulate -> analyze -> render stage
    DAG it resolves to (without executing anything); ``plan --format
    json|dot`` exports the DAG for inspection or external schedulers.
    When the telemetry store holds prior runs, ``plan`` annotates each
    stage kind with its observed mean wall/cpu cost.
stats
    Inspect recorded run telemetry: with no argument list the runs under
    ``<cache>/telemetry/``, with a run id (or ``--last``) print per-stage
    and per-kind timing tables (wall, cpu, peak RSS) from the run's span
    records, plus any ``--profile`` .prof files.
trace
    Manage stored access traces: ``capture`` one ahead of time, ``import``
    an external dump (valgrind-lackey, ChampSim-style records, CSV/JSONL)
    as workload ``import:<name>``, ``list`` the store with each trace's
    origin (captured vs imported), ``info`` for an (optionally
    epoch-parallel) per-trace breakdown plus the provenance sidecar.
fuzz
    The seeded workload fuzzer: ``describe`` parses a
    ``fuzz:<base>[+<base>...][,knob=value...]`` recipe and prints its
    canonical form; ``gen`` generates the recipe's deterministic stream
    and captures it into the trace store.  Recipes are usable directly as
    spec/CLI workloads (``workload = "fuzz:Apache+OLTP,drift=0.3"``).
checkpoint
    Manage epoch-boundary system checkpoints: ``list`` the store, ``info``
    for one run's stored epochs and resume point.
worker
    Run a long-lived dispatch worker: poll the ``<cache>/dispatch/`` work
    queue, claim items under an expiring lease, heartbeat while executing,
    acknowledge with receipts.  Start as many as you like, on any host
    mounting the cache root.
serve
    The HTTP front end: accept experiment-spec submissions (``POST
    /submit``), enqueue their plans onto the dispatch queue, and stream
    scheduler lifecycle events back as NDJSON.  Pair with one or more
    ``worker`` processes sharing the cache root.
submit
    The matching client: POST a spec file to a ``serve`` endpoint, render
    progress from the event stream (``--progress``), print the rendered
    artifacts exactly like ``report --spec``.
queue
    Inspect the dispatch work queue: ``status`` for counts plus the
    worker fleet's published heartbeat records and live leases (the
    offline twin of ``GET /workers``), ``list`` for per-item state
    (pending / leased / done).
clear-cache
    Empty the versioned on-disk result store, the trace store, the
    checkpoint store, the dispatch work queue, the run index, *and*
    recorded run telemetry.

Every execution subcommand builds a :class:`repro.api.Session` from its
flags and drives the pipeline through it.  All subcommands share
``--size/--seed/--scale`` run parameters and the ``--cache-dir`` /
``--no-disk-cache`` cache controls; ``run`` and ``suite`` additionally
accept ``--replay/--no-replay`` to control access-stream capture/replay
through the trace store (default: replay) and
``--checkpoint/--no-checkpoint`` / ``--resume/--no-resume`` to control
epoch-boundary snapshots and resuming from them (default: both on).

Spec-driven executions additionally accept ``--executor
serial|thread|process|dispatch|auto`` to pick the stage execution backend
(default: ``process``, or ``serial`` with ``--jobs 1``; ``auto`` chooses
from the telemetry store's observed stage costs), ``--progress``
to render the scheduler's stage lifecycle events live on stderr, and
``--profile`` to cProfile every stage into the run's telemetry directory.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import sys
import time
from typing import List, Optional, Sequence

from .api.executor import EXECUTOR_NAMES
from .mem.config import DEFAULT_SCALE
from .mem.trace import ALL_CONTEXTS
from .workloads import WORKLOAD_NAMES

#: Artifact names accepted by ``report``.
REPORT_ARTIFACTS = ("figure1", "figure2", "figure3", "figure4",
                    "table1", "table2", "table3", "table4", "table5")


def _add_run_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", default="small",
                        choices=("tiny", "small", "default", "large"),
                        help="work-volume preset (default: small)")
    parser.add_argument("--seed", type=int, default=42,
                        help="workload RNG seed (default: 42)")
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE,
                        help=f"cache scale-down factor (default: "
                             f"{DEFAULT_SCALE})")
    parser.add_argument("--eager", action="store_true",
                        help="materialise access traces instead of streaming")
    parser.add_argument("--replay", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="capture access streams on first run and replay "
                             "them from the trace store afterwards "
                             "(default: --replay)")
    parser.add_argument("--checkpoint", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="write epoch-boundary system snapshots during "
                             "replayed simulations (default: --checkpoint)")
    parser.add_argument("--resume", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="resume a replayed simulation from its latest "
                             "stored checkpoint instead of simulating from "
                             "access zero (default: --resume)")
    parser.add_argument("--warm-start", action=argparse.BooleanOptionalAction,
                        default=True, dest="warm_start",
                        help="share simulation prefixes across grid cells "
                             "that differ only in warm-up: plan a prefix "
                             "stage per group and warm-start member cells "
                             "from its checkpoint (default: --warm-start)")


def _add_spec_exec_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default=None,
                        choices=EXECUTOR_NAMES + ("auto",),
                        help="stage execution backend for --spec runs; "
                             "'auto' picks serial/thread/process per plan "
                             "from observed stage costs (default: process, "
                             "or serial with --jobs 1)")
    parser.add_argument("--progress", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="render stage lifecycle events live on stderr "
                             "during --spec execution")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each stage of a --spec execution, "
                             "writing per-stage .prof files into the run's "
                             "telemetry directory (see `repro stats`)")


def _add_cache_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="disk-cache root (default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the on-disk result store for this run")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Temporal streams in commercial server applications "
                    "(IISWC'08) — reproduction driver.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="simulate and analyse one workload in one context "
                    "(or every cell of a --spec)")
    p_run.add_argument("workload", nargs="?", default=None,
                       help=f"one of {', '.join(WORKLOAD_NAMES)}")
    p_run.add_argument("context", nargs="?", default=None,
                       choices=ALL_CONTEXTS)
    p_run.add_argument("--spec", default=None, metavar="FILE",
                       help="declarative experiment spec (TOML); replaces "
                            "the positional workload/context")
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for --spec execution "
                            "(default: cpu count; 1 runs inline)")
    _add_run_params(p_run)
    _add_spec_exec_params(p_run)
    _add_cache_params(p_run)

    p_suite = sub.add_parser(
        "suite", help="run the full evaluation sweep over a process pool")
    p_suite.add_argument("--workloads", nargs="+", default=list(WORKLOAD_NAMES),
                         metavar="NAME", help="subset of workloads to sweep")
    p_suite.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: cpu count; 1 runs "
                              "inline without a pool)")
    p_suite.add_argument("--spec", default=None, metavar="FILE",
                         help="declarative experiment spec (TOML); the sweep "
                              "grid comes from the spec instead of the flags")
    _add_run_params(p_suite)
    _add_spec_exec_params(p_suite)
    _add_cache_params(p_suite)

    p_report = sub.add_parser(
        "report", help="render figures/tables from (cached) suite results")
    p_report.add_argument("--artifact", default="all",
                          choices=REPORT_ARTIFACTS + ("all",),
                          help="which artifact to render (default: all)")
    p_report.add_argument("--workloads", nargs="+",
                          default=list(WORKLOAD_NAMES), metavar="NAME")
    p_report.add_argument("--spec", default=None, metavar="FILE",
                          help="declarative experiment spec (TOML); renders "
                               "the spec's requested analyses")
    p_report.add_argument("--where", action="append", default=None,
                          metavar="COL<OP>VAL",
                          help="answer from the sqlite run index instead of "
                               "unpickling results: filter recorded simulate "
                               "cells (repeatable; e.g. --where "
                               "workload=Apache --where 'wall_s>=0.5')")
    p_report.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for --spec execution")
    # The figure/table drivers expose size and seed only; no --scale/--eager
    # here, so the report always matches a suite run at the same size/seed.
    p_report.add_argument("--size", default="small",
                          choices=("tiny", "small", "default", "large"),
                          help="work-volume preset (default: small)")
    p_report.add_argument("--seed", type=int, default=42,
                          help="workload RNG seed (default: 42)")
    _add_spec_exec_params(p_report)
    _add_cache_params(p_report)

    p_spec = sub.add_parser(
        "spec", help="validate or plan a declarative experiment spec")
    ssub = p_spec.add_subparsers(dest="spec_command", required=True)
    s_validate = ssub.add_parser(
        "validate", help="parse a spec file and report every problem")
    s_validate.add_argument("file", help="spec file (TOML)")
    s_plan = ssub.add_parser(
        "plan", help="print the stage DAG a spec resolves to (no execution)")
    s_plan.add_argument("file", help="spec file (TOML)")
    s_plan.add_argument("--format", default="text",
                        choices=("text", "json", "dot"),
                        help="output form: human-readable text, JSON "
                             "(nodes/deps/kinds for external schedulers), "
                             "or Graphviz dot (default: text)")
    _add_cache_params(s_plan)

    p_stats = sub.add_parser(
        "stats",
        help="per-stage timing tables from recorded run telemetry")
    p_stats.add_argument("run", nargs="?", default=None, metavar="RUN",
                         help="telemetry run id (directory name under "
                              "<cache>/telemetry/); omit to list runs")
    p_stats.add_argument("--last", action="store_true",
                         help="show the most recent run")
    _add_cache_params(p_stats)

    p_query = sub.add_parser(
        "query",
        help="filter/aggregate the sqlite run index (no unpickling)")
    from .obs.index import TABLE_NAMES
    p_query.add_argument("table", nargs="?", default="cells",
                         choices=TABLE_NAMES,
                         help="which index table to query (default: cells — "
                              "one row per recorded simulate cell)")
    p_query.add_argument("--where", action="append", default=None,
                         metavar="COL<OP>VAL",
                         help="row filter, repeatable; ops = != > < >= <= ~ "
                              "(substring), e.g. --where workload=Apache "
                              "--where 'wall_s>=0.5'")
    p_query.add_argument("--select", default=None, metavar="COL,COL",
                         help="comma-separated columns to print "
                              "(default: all)")
    p_query.add_argument("--group-by", default=None, metavar="COL,COL",
                         help="group rows and print one row per group "
                              "(with --agg, or a plain count)")
    p_query.add_argument("--agg", default=None, metavar="AGG,AGG",
                         help="aggregates: count or fn:col with fn in "
                              "count/sum/mean/min/max, e.g. "
                              "--agg count,mean:wall_s")
    p_query.add_argument("--order-by", default=None, metavar="COL",
                         help="sort the output rows by this column")
    p_query.add_argument("--desc", action="store_true",
                         help="sort descending (with --order-by)")
    p_query.add_argument("--limit", type=int, default=None, metavar="N",
                         help="print at most N rows")
    p_query.add_argument("--format", default="table",
                         choices=("table", "json", "csv"),
                         help="output form (default: table)")
    p_query.add_argument("--rebuild", action="store_true",
                         help="drop the index database and re-ingest "
                              "everything from disk first")
    p_query.add_argument("--no-ingest", action="store_true",
                         help="query the index as-is without refreshing it")
    _add_cache_params(p_query)

    p_trace = sub.add_parser(
        "trace", help="manage stored access traces "
                      "(capture/import/list/info)")
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_capture = tsub.add_parser(
        "capture", help="generate one workload's access stream and store it")
    t_capture.add_argument("workload",
                           help=f"one of {', '.join(WORKLOAD_NAMES)}")
    t_capture.add_argument("--cpus", type=int, default=16, metavar="N",
                           help="CPUs the stream is interleaved over "
                                "(16 = multi-chip, 4 = single-chip; "
                                "default: 16)")
    t_capture.add_argument("--size", default="small",
                           choices=("tiny", "small", "default", "large"),
                           help="work-volume preset (default: small)")
    t_capture.add_argument("--seed", type=int, default=42,
                           help="workload RNG seed (default: 42)")
    t_capture.add_argument("--force", action="store_true",
                           help="re-capture even if the trace already exists")
    _add_cache_params(t_capture)

    t_import = tsub.add_parser(
        "import",
        help="import an external trace dump into the trace store")
    t_import.add_argument("file", help="source trace file")
    from .ingest import IMPORTERS
    t_import.add_argument("--format", required=True, dest="fmt",
                          metavar="FMT",
                          help=f"dump format, one of "
                               f"{', '.join(IMPORTERS.names())} "
                               f"(aliases accepted)")
    t_import.add_argument("--name", default=None, metavar="NAME",
                          help="import name; the trace becomes workload "
                               "'import:<name>' (default: the file stem)")
    t_import.add_argument("--cpus", type=int, nargs="+", default=[16, 4],
                          metavar="N",
                          help="CPU count(s) to import for — one trace per "
                               "value; cover every organisation the target "
                               "spec uses (default: 16 4)")
    t_import.add_argument("--size", default="small",
                          choices=("tiny", "small", "default", "large"),
                          help="size preset of the synthetic trace key "
                               "(default: small)")
    t_import.add_argument("--seed", type=int, default=42,
                          help="seed of the synthetic trace key "
                               "(default: 42)")
    t_import.add_argument("--epoch-size", type=int, default=None,
                          metavar="N",
                          help="accesses per columnar epoch segment "
                               "(default: the store default)")
    t_import.add_argument("--force", action="store_true",
                          help="re-import over an existing trace at the "
                               "same key")
    _add_cache_params(t_import)

    t_list = tsub.add_parser("list", help="list stored access traces")
    _add_cache_params(t_list)

    t_info = tsub.add_parser(
        "info", help="per-epoch breakdown of one stored trace")
    t_info.add_argument("workload", help=f"one of {', '.join(WORKLOAD_NAMES)}")
    t_info.add_argument("--cpus", type=int, default=16, metavar="N",
                        help="CPU count of the stored stream (default: 16)")
    t_info.add_argument("--size", default="small",
                        choices=("tiny", "small", "default", "large"),
                        help="work-volume preset (default: small)")
    t_info.add_argument("--seed", type=int, default=42,
                        help="workload RNG seed (default: 42)")
    t_info.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="processes for the epoch-sharded counting pass "
                             "(default: cpu count; 1 runs inline)")
    _add_cache_params(t_info)

    p_fuzz = sub.add_parser(
        "fuzz", help="seeded workload fuzzer (gen/describe)")
    fsub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    f_gen = fsub.add_parser(
        "gen", help="generate a fuzz recipe's stream and capture it into "
                    "the trace store")
    f_gen.add_argument("recipe",
                       help="recipe, e.g. 'fuzz:Apache+OLTP,drift=0.3' "
                            "(the 'fuzz:' prefix is optional here)")
    f_gen.add_argument("--cpus", type=int, default=16, metavar="N",
                       help="CPUs the stream is interleaved over "
                            "(default: 16)")
    f_gen.add_argument("--size", default="small",
                       choices=("tiny", "small", "default", "large"),
                       help="work-volume preset (default: small)")
    f_gen.add_argument("--seed", type=int, default=42,
                       help="fuzz seed (default: 42)")
    f_gen.add_argument("--force", action="store_true",
                       help="re-generate even if the trace already exists")
    _add_cache_params(f_gen)

    f_describe = fsub.add_parser(
        "describe", help="parse a fuzz recipe and print its resolved form")
    f_describe.add_argument("recipe",
                            help="recipe string (with or without the "
                                 "'fuzz:' prefix)")

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="manage epoch-boundary system checkpoints (list/info/gc)")
    ksub = p_ckpt.add_subparsers(dest="checkpoint_command", required=True)

    k_list = ksub.add_parser("list", help="list stored checkpoint runs")
    _add_cache_params(k_list)

    k_gc = ksub.add_parser(
        "gc", help="remove delta-chain chunks no manifest references")
    _add_cache_params(k_gc)

    k_info = ksub.add_parser(
        "info", help="per-epoch checkpoint breakdown of one run")
    k_info.add_argument("workload", help=f"one of {', '.join(WORKLOAD_NAMES)}")
    k_info.add_argument("--organisation", default="multi-chip",
                        choices=("multi-chip", "single-chip"),
                        help="system organisation (default: multi-chip)")
    k_info.add_argument("--size", default="small",
                        choices=("tiny", "small", "default", "large"),
                        help="work-volume preset (default: small)")
    k_info.add_argument("--seed", type=int, default=42,
                        help="workload RNG seed (default: 42)")
    k_info.add_argument("--scale", type=int, default=DEFAULT_SCALE,
                        help=f"cache scale-down factor (default: "
                             f"{DEFAULT_SCALE})")
    k_info.add_argument("--warmup", type=float, default=None, metavar="FRAC",
                        help="warm-up fraction of the run (default: the "
                             "runner's default)")
    _add_cache_params(k_info)

    p_worker = sub.add_parser(
        "worker",
        help="run a dispatch worker polling the <cache>/dispatch queue")
    p_worker.add_argument("--poll", type=float, default=None, metavar="SEC",
                          help="idle sleep between queue scans (default: "
                               "$REPRO_WORKER_POLL_SECONDS or 0.5)")
    p_worker.add_argument("--lease", type=float, default=None, metavar="SEC",
                          help="claim lease duration (default: "
                               "$REPRO_LEASE_SECONDS or 60)")
    p_worker.add_argument("--heartbeat", type=float, default=None,
                          metavar="SEC",
                          help="lease renewal cadence while executing "
                               "(default: $REPRO_HEARTBEAT_SECONDS or a "
                               "third of the lease)")
    p_worker.add_argument("--max-items", type=int, default=None, metavar="N",
                          help="exit after executing N items "
                               "(default: run forever)")
    p_worker.add_argument("--idle-exit", type=float, default=None,
                          metavar="SEC",
                          help="exit after SEC seconds with nothing "
                               "claimable (default: keep polling)")
    p_worker.add_argument("--worker-id", default=None,
                          help="identity recorded in claims and receipts "
                               "(default: <hostname>-<pid>)")
    _add_cache_params(p_worker)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP front end: accept spec submissions, stream plan events")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8023,
                         help="bind port (default: 8023)")
    p_serve.add_argument("--local-workers", type=int, default=0, metavar="N",
                         help="embedded dispatch workers per submission "
                              "(default: 0 — rely on external `repro "
                              "worker` processes sharing the cache root)")
    p_serve.add_argument("--lease", type=float, default=None, metavar="SEC",
                         help="claim lease duration for enqueued items")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log requests to stderr")
    _add_cache_params(p_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a spec file to a `repro serve` endpoint")
    p_submit.add_argument("file", help="spec file (TOML)")
    p_submit.add_argument("--url", default="http://127.0.0.1:8023",
                          help="serve endpoint "
                               "(default: http://127.0.0.1:8023)")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SEC",
                          help="overall client timeout (default: 600)")
    p_submit.add_argument("--progress", action=argparse.BooleanOptionalAction,
                          default=False,
                          help="render the server's stage lifecycle events "
                               "live on stderr as they stream in")

    p_queue = sub.add_parser(
        "queue", help="inspect the dispatch work queue (status/list)")
    qsub = p_queue.add_subparsers(dest="queue_command", required=True)
    q_status = qsub.add_parser("status", help="item counts by state")
    _add_cache_params(q_status)
    q_list = qsub.add_parser("list", help="per-item state across all runs")
    _add_cache_params(q_list)

    p_clear = sub.add_parser(
        "clear-cache",
        help="empty the on-disk result, trace, and checkpoint stores and "
             "the dispatch work queue")
    p_clear.add_argument("--cache-dir", default=None,
                         help="disk-cache root to clear")
    return parser


# ---------------------------------------------------------------------- #
def _apply_cache_flags(args: argparse.Namespace) -> None:
    from .experiments.store import CACHE_DIR_ENV, CACHE_DISABLE_ENV
    if getattr(args, "no_disk_cache", False):
        os.environ[CACHE_DISABLE_ENV] = "1"
    if getattr(args, "cache_dir", None):
        os.environ[CACHE_DIR_ENV] = args.cache_dir


def _bad_jobs(args: argparse.Namespace) -> bool:
    """Report and reject a non-positive ``--jobs`` before building a session."""
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return True
    return False


def _session_from_args(args: argparse.Namespace):
    """Build the :class:`repro.api.Session` an execution subcommand uses.

    The executor policy defaults to the overlapping ``process`` backend —
    matching the pooled behaviour spec execution always had — and drops to
    ``serial`` under ``--jobs 1`` so inline runs stay inline.
    """
    from .api import Session
    executor = getattr(args, "executor", None)
    if executor is None:
        executor = "serial" if getattr(args, "jobs", None) == 1 else "process"
    return Session(cache_dir=getattr(args, "cache_dir", None),
                   max_workers=getattr(args, "jobs", None),
                   streaming=not getattr(args, "eager", False),
                   replay=getattr(args, "replay", True),
                   checkpoint=getattr(args, "checkpoint", True),
                   resume=getattr(args, "resume", True),
                   warm_start=getattr(args, "warm_start", True),
                   executor=executor,
                   profile=getattr(args, "profile", False))


def _spec_events(args: argparse.Namespace):
    """The :class:`~repro.api.PlanEvents` for a spec execution (or None)."""
    if not getattr(args, "progress", False):
        return None
    from .api import PlanEvents

    class _Progress(PlanEvents):
        """Render scheduler lifecycle events live on stderr.

        Reported durations are submission-to-settle wall clock — they
        include any time a stage queued behind a busy backend, so they sum
        to plan latency rather than per-stage compute.
        """

        def __init__(self) -> None:
            self._starts = {}

        def on_stage_start(self, stage) -> None:
            self._starts[stage.key] = time.perf_counter()
            print(f"[{stage.kind:>9}] {stage.key} ...", file=sys.stderr,
                  flush=True)

        def on_stage_finish(self, stage, status) -> None:
            elapsed = time.perf_counter() - self._starts.get(
                stage.key, time.perf_counter())
            print(f"[{stage.kind:>9}] {stage.key} {status} "
                  f"({elapsed:.2f}s)", file=sys.stderr, flush=True)

        def on_stage_error(self, stage, error) -> None:
            print(f"[{stage.kind:>9}] {stage.key} FAILED: {error}",
                  file=sys.stderr, flush=True)

    return _Progress()


def _execute_spec(session, spec, args: argparse.Namespace):
    """Run a spec through the session; returns (outcome, error_message)."""
    from .api import PlanExecutionError
    from .api.executor import ExecutorSetupError
    try:
        return session.execute(spec, events=_spec_events(args)), None
    except PlanExecutionError as exc:
        return exc.result, str(exc)
    except ExecutorSetupError as exc:  # e.g. dispatch without a disk cache
        return None, str(exc)


def _spec_flag_conflicts(args: argparse.Namespace, parser_defaults: dict,
                         flags: Sequence[str]) -> int:
    """Reject run-parameter flags combined with ``--spec``.

    The spec is the single source of truth for the grid; silently ignoring
    an explicit ``--size``/``--seed``/... would run a different
    configuration than the user asked for.  Flags still at their parser
    default are indistinguishable from "not passed" and are accepted.
    """
    conflicting = [flag for flag in flags
                   if getattr(args, flag, None) != parser_defaults[flag]]
    if conflicting:
        names = ", ".join(f"--{flag.replace('_', '-')}"
                          for flag in conflicting)
        print(f"error: {names} cannot be combined with --spec (the spec "
              f"file defines the grid; edit it instead)", file=sys.stderr)
        return 2
    return 0


#: Parser defaults for the flags --spec supersedes, per subcommand (must
#: match the add_argument defaults in build_parser).
_RUN_SPEC_DEFAULTS = {"size": "small", "seed": 42, "scale": DEFAULT_SCALE,
                      "workload": None, "context": None}
_SUITE_SPEC_DEFAULTS = {"size": "small", "seed": 42, "scale": DEFAULT_SCALE,
                        "workloads": list(WORKLOAD_NAMES)}
_REPORT_SPEC_DEFAULTS = {"size": "small", "seed": 42, "artifact": "all",
                         "workloads": list(WORKLOAD_NAMES)}


def _load_spec(path: str):
    """Parse and validate a spec file; prints errors and returns None on failure."""
    from .api import ExperimentSpec, SpecError
    try:
        spec = ExperimentSpec.from_toml(path)
        spec.ensure_valid()
    except (OSError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    return spec


def _print_bundle(workload: str, context: str, result, size: str, seed: int,
                  scale: int, elapsed: Optional[float] = None,
                  warmup: Optional[float] = None) -> None:
    trace = result.miss_trace
    timing = f" [{elapsed:.2f}s]" if elapsed is not None else ""
    warm = f", warmup={warmup:g}" if warmup is not None else ""
    print(f"{workload} / {context}  "
          f"(size={size}, seed={seed}, scale={scale}{warm})"
          f"{timing}")
    print(f"  misses:              {result.n_misses:,}")
    print(f"  instructions:        {trace.instructions:,}")
    print(f"  misses/kilo-instr:   "
          f"{trace.misses_per_kilo_instruction():.3f}")
    analysis = result.stream_analysis
    print(f"  in temporal streams: {analysis.fraction_in_streams:.1%} "
          f"(new {analysis.fraction_new:.1%}, "
          f"recurring {analysis.fraction_recurring:.1%})")
    print(f"  distinct streams:    {analysis.n_distinct_streams():,}")
    print("  miss classes:")
    total = max(1, result.n_misses)
    for cls, count in sorted(trace.class_counts().items(),
                             key=lambda kv: -kv[1]):
        print(f"    class {cls}: {count:,} ({count / total:.1%})")


def _spec_only_flags(args: argparse.Namespace) -> bool:
    """Reject --executor/--progress/--profile outside a --spec execution."""
    offending = [flag for flag in ("executor", "progress", "profile")
                 if getattr(args, flag, None)]
    if getattr(args, "spec", None) is None and offending:
        names = ", ".join(f"--{flag}" for flag in offending)
        print(f"error: {names} requires --spec (plan-level scheduling only "
              f"applies to spec-driven execution)", file=sys.stderr)
        return True
    return False


def _cmd_run(args: argparse.Namespace) -> int:
    if _bad_jobs(args) or _spec_only_flags(args):
        return 2
    session = _session_from_args(args)
    if args.spec is not None:
        if _spec_flag_conflicts(args, _RUN_SPEC_DEFAULTS,
                                tuple(_RUN_SPEC_DEFAULTS)):
            return 2
        spec = _load_spec(args.spec)
        if spec is None:
            return 2
        spec = spec.resolved()
        start = time.time()
        outcome, error = _execute_spec(session, spec, args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 1
        elapsed = time.time() - start
        for (workload, context, scale, warmup), result in sorted(
                outcome.bundles.items()):
            _print_bundle(workload, context, result, spec.size, spec.seed,
                          scale, warmup=warmup)
            print()
        print(f"{len(outcome.bundles)} cell bundle"
              f"{'' if len(outcome.bundles) == 1 else 's'} in {elapsed:.2f}s")
        return 0
    if args.workload is None or args.context is None:
        print("error: run needs WORKLOAD and CONTEXT (or --spec FILE)",
              file=sys.stderr)
        return 2
    start = time.time()
    try:
        result = session.run(args.workload, args.context, size=args.size,
                             seed=args.seed, scale=args.scale)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    _print_bundle(args.workload, args.context, result, args.size, args.seed,
                  args.scale, time.time() - start)
    return 0


def _print_suite_table(workloads, contexts, results, size, jobs_label,
                       elapsed) -> None:
    print(f"suite: {len(workloads)} workloads x {len(contexts)} "
          f"contexts (size={size}, {jobs_label}) in {elapsed:.1f}s")
    header = f"{'workload':<10}" + "".join(f"{c:>14}" for c in contexts)
    print(header)
    print("-" * len(header))
    for workload in workloads:
        row = f"{workload:<10}"
        for context in contexts:
            result = results[workload][context]
            row += f"{result.n_misses:>14,}"
        print(row)
    print("(cells are recorded read misses; results persisted to the disk "
          "cache)")


def _cmd_suite(args: argparse.Namespace) -> int:
    if _bad_jobs(args) or _spec_only_flags(args):
        return 2
    session = _session_from_args(args)
    jobs = "inline" if args.jobs == 1 else f"jobs={args.jobs or 'auto'}"
    if args.spec is not None:
        if _spec_flag_conflicts(args, _SUITE_SPEC_DEFAULTS,
                                tuple(_SUITE_SPEC_DEFAULTS)):
            return 2
        from .experiments.parallel import spec_contexts
        spec = _load_spec(args.spec)
        if spec is None:
            return 2
        spec = spec.resolved()
        start = time.time()
        outcome, error = _execute_spec(session, spec, args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 1
        elapsed = time.time() - start
        contexts = spec_contexts(spec)
        # One table per (scale, warmup) combination of the grid.
        for scale in spec.scales:
            for warmup in spec.warmups:
                if len(spec.scales) * len(spec.warmups) > 1:
                    print(f"--- scale={scale}, warmup={warmup:g} ---")
                results = {workload: {context: outcome.bundles[
                               (workload, context, scale, warmup)]
                           for context in contexts}
                           for workload in spec.workloads}
                _print_suite_table(spec.workloads, contexts, results,
                                   spec.size, jobs, elapsed)
        return 0
    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)} "
              f"(known: {', '.join(WORKLOAD_NAMES)})", file=sys.stderr)
        return 2
    start = time.time()
    results = session.suite(size=args.size, seed=args.seed, scale=args.scale,
                            workloads=tuple(args.workloads))
    _print_suite_table(args.workloads, ALL_CONTEXTS, results, args.size,
                       jobs, time.time() - start)
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    spec = _load_spec(args.file)
    if spec is None:
        return 2
    if args.spec_command == "validate":
        print(f"OK: {spec.describe()}")
        return 0
    # plan: print the resolved stage DAG without executing anything.
    from .api import build_plan
    plan = build_plan(spec)
    fmt = getattr(args, "format", "text")
    if fmt == "json":
        print(plan.to_json())
    elif fmt == "dot":
        print(plan.to_dot())
    else:
        from .obs import get_telemetry_store
        telem = get_telemetry_store(getattr(args, "cache_dir", None))
        costs = telem.observed_costs() if telem is not None else None
        print(plan.describe(costs=costs or None))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import (figure1, figure2, figure3, figure4,
                              render_table1, render_table2, table3, table4,
                              table5)
    if _bad_jobs(args) or _spec_only_flags(args):
        return 2
    if args.where:
        if args.spec is not None:
            print("--where reports from the run index and cannot be "
                  "combined with --spec", file=sys.stderr)
            return 2
        return _report_from_index(args)
    if args.spec is not None:
        if _spec_flag_conflicts(args, _REPORT_SPEC_DEFAULTS,
                                tuple(_REPORT_SPEC_DEFAULTS)):
            return 2
        spec = _load_spec(args.spec)
        if spec is None:
            return 2
        session = _session_from_args(args)
        outcome, error = _execute_spec(session, spec, args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not outcome.artifacts:
            print("spec requests no analyses; add e.g. "
                  "`analyses = [\"figure2\"]`", file=sys.stderr)
            return 2
        for name, text in outcome.render_all().items():
            print(f"==== {name} " + "=" * max(0, 66 - len(name)))
            print(text)
            print()
        return 0
    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)} "
              f"(known: {', '.join(WORKLOAD_NAMES)})", file=sys.stderr)
        return 2
    workloads = tuple(args.workloads)
    wanted = (REPORT_ARTIFACTS if args.artifact == "all"
              else (args.artifact,))
    renderers = {
        "figure1": lambda: figure1(size=args.size, seed=args.seed,
                                   workloads=workloads).render(),
        "figure2": lambda: figure2(size=args.size, seed=args.seed,
                                   workloads=workloads).render(),
        "figure3": lambda: figure3(size=args.size, seed=args.seed,
                                   workloads=workloads).render(),
        "figure4": lambda: figure4(size=args.size, seed=args.seed,
                                   workloads=workloads).render(),
        "table1": render_table1,
        "table2": render_table2,
        "table3": lambda: table3(size=args.size, seed=args.seed).render(),
        "table4": lambda: table4(size=args.size, seed=args.seed).render(),
        "table5": lambda: table5(size=args.size, seed=args.seed).render(),
    }
    for name in wanted:
        print(f"==== {name} " + "=" * max(0, 66 - len(name)))
        print(renderers[name]())
        print()
    return 0


def _cmd_trace_capture(args: argparse.Namespace) -> int:
    from .trace import get_trace_store, trace_params
    from .workloads import create_workload
    store = get_trace_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    params = trace_params(args.workload, args.cpus, args.seed, args.size)
    if store.contains(params):
        if not args.force:
            reader = store.open(params)
            if reader is not None:
                print(f"already captured: {reader.describe()}")
                return 0
        else:
            # Drop the existing trace so the fresh capture's commit can
            # rename into place (commit stands down when the target exists).
            shutil.rmtree(store.path_for(params), ignore_errors=True)
    try:
        workload = create_workload(args.workload, n_cpus=args.cpus,
                                   seed=args.seed, size=args.size)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    start = time.time()
    n = sum(1 for _ in store.capture(workload.iter_accesses(), params))
    elapsed = time.time() - start
    reader = store.open(params)
    if reader is None:
        print("capture failed to commit", file=sys.stderr)
        return 1
    print(f"captured {n:,} accesses in {elapsed:.2f}s")
    print(reader.describe())
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    from .ingest import TraceIngestError, import_trace
    from .trace import DEFAULT_EPOCH_SIZE, get_trace_store
    store = get_trace_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    epoch_size = (args.epoch_size if args.epoch_size is not None
                  else DEFAULT_EPOCH_SIZE)
    workload = None
    for n_cpus in dict.fromkeys(args.cpus):  # de-duplicated, order kept
        try:
            result = import_trace(
                store, args.file, args.fmt, name=args.name, n_cpus=n_cpus,
                seed=args.seed, size=args.size, epoch_size=epoch_size,
                force=args.force)
        except TraceIngestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        workload = result.workload
        print(result.describe())
    print(f"use it in specs or `run` as workload = {workload!r}")
    return 0


def _cmd_trace_list(args: argparse.Namespace) -> int:
    from .ingest import load_provenance, trace_origin
    from .trace import TraceCorruptError, TraceReader, get_trace_store
    store = get_trace_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    print(store.describe())
    for path in store.entries():
        # entries() spans every version directory; traces from other
        # format/package versions are listed, not readable.
        origin = trace_origin(path)
        try:
            line = f"  {origin:>8}  {TraceReader(path).describe()}"
        except TraceCorruptError:
            line = (f"  {origin:>8}  {path.parent.name}/{path.name}: "
                    f"unreadable (other version or corrupt)")
        if origin == "imported":
            record = load_provenance(path) or {}
            source = record.get("source", "?")
            line += f" [from {record.get('format', '?')}:{source}]"
        print(line)
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from .experiments import ParallelSuiteRunner
    from .ingest import load_provenance
    from .trace import get_trace_store, summarize_chunk, trace_params
    store = get_trace_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    params = trace_params(args.workload, args.cpus, args.seed, args.size)
    reader = store.open(params)
    if reader is None:
        print(f"no stored trace for {params}; run "
              f"`python -m repro trace capture {args.workload} "
              f"--cpus {args.cpus} --size {args.size} --seed {args.seed}` "
              f"(or `trace import` for external dumps) "
              f"or any simulation with replay enabled", file=sys.stderr)
        return 1
    print(reader.describe())
    provenance = load_provenance(store.path_for(params))
    if provenance is not None:
        options = provenance.get("options", {})
        print(f"origin: imported via {provenance.get('format', '?')}")
        print(f"  source: {provenance.get('source', '?')}")
        print(f"  sha256: {provenance.get('sha256', '?')}")
        print(f"  options: " + ", ".join(
            f"{k}={v}" for k, v in sorted(options.items())))
        skipped = provenance.get("skipped_records", 0)
        print(f"  records: {provenance.get('n_accesses', '?')} imported, "
              f"{skipped} corrupt skipped")
    else:
        print("origin: captured (live generator stream)")
    header = (f"{'epoch':>6}{'accesses':>12}{'instructions':>14}"
              f"{'blocks':>10}{'reads':>10}{'writes':>10}")
    print(header)
    print("-" * len(header))
    for chunk in reader.iter_epochs():
        summary = summarize_chunk(chunk)
        print(f"{chunk.epoch:>6}{summary.n_accesses:>12,}"
              f"{summary.instructions:>14,}{summary.distinct_blocks:>10,}"
              f"{summary.kind_counts.get(0, 0):>10,}"
              f"{summary.kind_counts.get(1, 0):>10,}")
    start = time.time()
    merged = ParallelSuiteRunner(max_workers=args.jobs).summarize_trace(reader)
    elapsed = time.time() - start
    jobs = "inline" if args.jobs == 1 else f"jobs={args.jobs or 'auto'}"
    print(f"merged ({jobs}, {elapsed:.2f}s): {merged.describe()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "capture": _cmd_trace_capture,
        "import": _cmd_trace_import,
        "list": _cmd_trace_list,
        "info": _cmd_trace_info,
    }
    return handlers[args.trace_command](args)


def _fuzz_workload_name(recipe: str) -> str:
    """The full ``fuzz:<recipe>`` workload name for a CLI recipe argument."""
    text = recipe.strip()
    return text if text.lower().startswith("fuzz:") else f"fuzz:{text}"


def _cmd_fuzz_gen(args: argparse.Namespace) -> int:
    from .api.registry import WORKLOADS
    from .trace import get_trace_store, trace_params
    from .workloads import create_workload
    store = get_trace_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    requested = _fuzz_workload_name(args.recipe)
    workload_name = WORKLOADS.canonical(requested)
    if workload_name is None:
        from .ingest import RecipeError, parse_recipe
        try:
            parse_recipe(requested[len("fuzz:"):])
        except RecipeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"error: unknown fuzz recipe {args.recipe!r}", file=sys.stderr)
        return 2
    params = trace_params(workload_name, args.cpus, args.seed, args.size)
    if store.contains(params):
        if not args.force:
            reader = store.open(params)
            if reader is not None:
                print(f"already generated: {reader.describe()}")
                return 0
        else:
            shutil.rmtree(store.path_for(params), ignore_errors=True)
    workload = create_workload(workload_name, n_cpus=args.cpus,
                               seed=args.seed, size=args.size)
    start = time.time()
    n = sum(1 for _ in store.capture(workload.iter_accesses(), params))
    elapsed = time.time() - start
    reader = store.open(params)
    if reader is None:
        print("fuzz capture failed to commit", file=sys.stderr)
        return 1
    print(f"generated {n:,} fuzzed accesses in {elapsed:.2f}s")
    print(reader.describe())
    print(f"use it in specs or `run` as workload = {workload_name!r}")
    return 0


def _cmd_fuzz_describe(args: argparse.Namespace) -> int:
    from .ingest import FuzzWorkload, RecipeError, parse_recipe
    requested = _fuzz_workload_name(args.recipe)
    try:
        recipe = parse_recipe(requested[len("fuzz:"):])
    except RecipeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workload_name = f"fuzz:{recipe.canonical_suffix()}"
    print(f"canonical workload: {workload_name}")
    print(recipe.describe())
    sample = FuzzWorkload(recipe, n_cpus=16, seed=42)
    print(f"base generator CPUs at 16-CPU interleave: "
          f"{sample.generation_cpus} (skew={recipe.skew})")
    for index, base in enumerate(recipe.bases):
        print(f"  base[{index}] {base}: derived seed {sample.base_seed(index)}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    handlers = {
        "gen": _cmd_fuzz_gen,
        "describe": _cmd_fuzz_describe,
    }
    return handlers[args.fuzz_command](args)


def _cmd_checkpoint_list(args: argparse.Namespace) -> int:
    from .checkpoint import get_checkpoint_store
    store = get_checkpoint_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    import json

    from .checkpoint.format import chain_name, checkpoint_name
    print(store.describe())
    for run_dir in sorted(store.runs(), key=lambda p: (p.name, str(p))):
        epochs = store.epochs_in(run_dir)
        kinds = []
        chunk_refs = set()
        for epoch in epochs:
            if (run_dir / checkpoint_name(epoch)).is_file():
                kinds.append("full")
                continue
            try:
                manifest = json.loads(
                    (run_dir / chain_name(epoch)).read_text(encoding="utf-8"))
                kinds.append(str(manifest.get("kind", "?")))
                for spec in manifest.get("sections", {}).values():
                    if isinstance(spec.get("chunk"), str):
                        chunk_refs.add(spec["chunk"])
            except (OSError, ValueError, AttributeError):
                kinds.append("?")
        size = sum(p.stat().st_size for p in run_dir.iterdir()
                   if p.is_file())
        size += sum(store.chunk_path(d).stat().st_size for d in chunk_refs
                    if store.chunk_path(d).is_file())
        span = (f"epochs {epochs[0]}..{epochs[-1]}" if epochs else "empty")
        breakdown = ", ".join(
            f"{kinds.count(kind)} {kind}"
            for kind in ("full", "delta", "?") if kind in kinds)
        detail = f"{span}; {breakdown}" if breakdown else span
        print(f"  {run_dir.name}: {len(epochs)} checkpoint"
              f"{'' if len(epochs) == 1 else 's'} ({detail}), "
              f"{size / 1024:.1f} KiB")
    return 0


def _cmd_checkpoint_gc(args: argparse.Namespace) -> int:
    from .checkpoint import chain_stats, collect_garbage, get_checkpoint_store
    store = get_checkpoint_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    removed, freed = collect_garbage(store)
    stats = chain_stats(store)
    print(f"removed {removed} unreferenced chunk"
          f"{'' if removed == 1 else 's'} ({freed / 1024:.1f} KiB freed); "
          f"{stats['chunk_files']} chunk"
          f"{'' if stats['chunk_files'] == 1 else 's'} "
          f"({stats['chunk_bytes'] / 1024:.1f} KiB) still referenced by "
          f"{stats['full_manifests'] + stats['delta_manifests']} manifests")
    return 0


def _cmd_checkpoint_info(args: argparse.Namespace) -> int:
    from .checkpoint import checkpoint_params, get_checkpoint_store
    from .experiments import DEFAULT_WARMUP_FRACTION
    from .experiments.runner import clamp_warmup_fraction
    from .mem.config import multichip_config, singlechip_config
    from .trace import get_trace_store, trace_params
    store = get_checkpoint_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)",
              file=sys.stderr)
        return 2
    config = (multichip_config() if args.organisation == "multi-chip"
              else singlechip_config())
    n_cpus = config.n_cpus
    warmup = clamp_warmup_fraction(DEFAULT_WARMUP_FRACTION
                                   if args.warmup is None else args.warmup)
    # The checkpoint key includes the captured trace's epoch segmentation.
    kwargs = {}
    traces = get_trace_store(args.cache_dir)
    reader = (traces.open(trace_params(args.workload, n_cpus, args.seed,
                                       args.size))
              if traces is not None else None)
    if reader is not None:
        kwargs["epoch_size"] = reader.meta.epoch_size
    params = checkpoint_params(args.workload, n_cpus, args.seed, args.size,
                               args.organisation, args.scale, warmup,
                               **kwargs)
    epochs = store.epochs(params)
    if not epochs:
        print(f"no checkpoints for {params}; run "
              f"`python -m repro run {args.workload} {args.organisation} "
              f"--size {args.size}` (with replay enabled) to create them",
              file=sys.stderr)
        return 1
    run_dir = store.path_for(params)
    print(f"{args.workload} / {args.organisation} (size={args.size}, "
          f"seed={args.seed}, scale={args.scale}, warmup={warmup}) — "
          f"{len(epochs)} checkpoint{'' if len(epochs) == 1 else 's'}")
    header = f"{'epoch':>8}{'kind':>8}{'size (KiB)':>14}"
    print(header)
    print("-" * len(header))
    for epoch in epochs:
        kind = store.entry_kind(params, epoch)
        size_kib = store.entry_size(params, epoch) / 1024
        print(f"{epoch:>8}{kind:>8}{size_kib:>14.1f}")
    print(f"resume point: epoch {epochs[-1]} "
          f"(a `run` of this configuration restores it and simulates only "
          f"the remaining epochs)")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_checkpoint_list,
        "info": _cmd_checkpoint_info,
        "gc": _cmd_checkpoint_gc,
    }
    return handlers[args.checkpoint_command](args)


def _dispatch_queue(args: argparse.Namespace):
    """The dispatch :class:`WorkQueue` for a subcommand's cache flags."""
    from .api.queue import WorkQueue, queue_root
    from .cachedir import disk_cache_disabled
    if disk_cache_disabled():
        return None
    return WorkQueue(queue_root(getattr(args, "cache_dir", None)))


def _cmd_worker(args: argparse.Namespace) -> int:
    from .api.worker import Worker
    queue = _dispatch_queue(args)
    if queue is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set); "
              "a worker needs the shared dispatch queue", file=sys.stderr)
        return 2
    for flag in ("poll", "lease", "heartbeat"):
        value = getattr(args, flag)
        if value is not None and value <= 0:
            print(f"error: --{flag} must be > 0", file=sys.stderr)
            return 2
    worker = Worker(queue=queue, worker_id=args.worker_id,
                    lease_seconds=args.lease, heartbeat_seconds=args.heartbeat,
                    poll_seconds=args.poll, max_items=args.max_items,
                    idle_exit=args.idle_exit)
    print(f"worker {worker.worker_id} polling {queue.root} "
          f"(lease={queue.lease_seconds:g}s, "
          f"heartbeat={worker.heartbeat_seconds:g}s, "
          f"poll={worker.poll_seconds:g}s)", flush=True)
    try:
        stats = worker.run()
    except KeyboardInterrupt:
        stats = worker.stats
    print(f"worker {worker.worker_id} done: {stats.describe()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api.serve import create_server
    if args.local_workers < 0:
        print("error: --local-workers must be >= 0", file=sys.stderr)
        return 2
    try:
        server = create_server(host=args.host, port=args.port,
                               cache_dir=args.cache_dir,
                               local_workers=args.local_workers,
                               lease_seconds=args.lease,
                               verbose=args.verbose)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(server.describe(), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .api.serve import submit_spec
    try:
        spec_text = open(args.file, "r", encoding="utf-8").read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        done = submit_spec(args.url, spec_text,
                           progress=sys.stderr if args.progress else None,
                           timeout=args.timeout)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name, text in done.get("artifacts", {}).items():
        print(f"==== {name} " + "=" * max(0, 66 - len(name)))
        print(text)
        print()
    if not done.get("ok"):
        print(f"error: {done.get('error', 'plan failed')}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------- #
# the run index (``repro query`` / ``report --where``)
# ---------------------------------------------------------------------- #
_WHERE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(!=|>=|<=|~|=|>|<)\s*(.*?)\s*$")


def _coerce_value(raw: str):
    """int, else float, else the raw string (sqlite compares typed)."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_where(exprs) -> list:
    """``["col>=3", ...]`` -> ``[("col", ">=", 3), ...]`` triples."""
    out = []
    for expr in exprs or ():
        match = _WHERE_RE.match(expr)
        if match is None:
            raise ValueError(
                f"bad --where {expr!r}; expected COL<OP>VALUE with an "
                f"operator in = != > < >= <= ~")
        column, op, raw = match.groups()
        out.append((column, op, _coerce_value(raw)))
    return out


def _render_query_rows(columns: list, rows: list, fmt: str) -> None:
    if fmt == "json":
        import json
        print(json.dumps([dict(zip(columns, row)) for row in rows],
                         indent=2))
        return
    if fmt == "csv":
        import csv
        writer = csv.writer(sys.stdout)
        writer.writerow(columns)
        writer.writerows(rows)
        return
    rendered = [["" if value is None
                 else (f"{value:.3f}" if isinstance(value, float)
                       else str(value))
                 for value in row] for row in rows]
    widths = [max(len(name), *(len(row[i]) for row in rendered))
              if rendered else len(name)
              for i, name in enumerate(columns)]
    print("  ".join(name.ljust(width)
                    for name, width in zip(columns, widths)).rstrip())
    for row in rendered:
        print("  ".join(value.ljust(width)
                        for value, width in zip(row, widths)).rstrip())
    print(f"({len(rows)} row{'' if len(rows) == 1 else 's'})")


def _run_index(args: argparse.Namespace):
    """The ingest-refreshed run index, or ``None`` (already reported)."""
    from .obs.index import get_run_index
    index = get_run_index(getattr(args, "cache_dir", None))
    if index is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set); "
              "the run index lives in the disk cache", file=sys.stderr)
    return index


def _cmd_query(args: argparse.Namespace) -> int:
    index = _run_index(args)
    if index is None:
        return 2
    if args.rebuild:
        index.clear()
    if not args.no_ingest:
        index.ingest(full=args.rebuild)
    try:
        columns, rows = index.query(
            args.table,
            where=_parse_where(args.where),
            select=args.select.split(",") if args.select else None,
            group_by=args.group_by.split(",") if args.group_by else None,
            aggregates=args.agg.split(",") if args.agg else None,
            order_by=args.order_by, descending=args.desc, limit=args.limit)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _render_query_rows(columns, rows, args.format)
    return 0


def _report_from_index(args: argparse.Namespace) -> int:
    """``report --where``: answer from the index, unpickling nothing."""
    index = _run_index(args)
    if index is None:
        return 2
    index.ingest()
    try:
        where = _parse_where(args.where)
        columns, rows = index.query(
            "cells", where=where,
            select=["run_id", "workload", "organisation", "scale",
                    "warmup", "status", "wall_s", "executor"],
            order_by="started_at")
        group_cols, groups = index.query(
            "cells", where=where,
            group_by=["workload", "organisation"],
            aggregates=["count", "mean:wall_s", "max:wall_s"],
            order_by="workload")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    title = "indexed cells"
    print(f"==== {title} " + "=" * max(0, 66 - len(title)))
    _render_query_rows(columns, rows, "table")
    print()
    title = "by workload / organisation"
    print(f"==== {title} " + "=" * max(0, 66 - len(title)))
    _render_query_rows(group_cols, groups, "table")
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from .api.queue import claim_path_for, done_path_for, load_json
    queue = _dispatch_queue(args)
    if queue is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)")
        return 0
    print(queue.describe())
    if args.queue_command == "status":
        fleet = queue.fleet_status()
        oldest = fleet["queue"].get("oldest_pending_s")
        if oldest is not None:
            print(f"  oldest pending item: {oldest:.1f}s old")
        workers = fleet["workers"]
        print(f"  {len(workers)} worker record"
              f"{'' if len(workers) == 1 else 's'}")
        for rec in workers:
            liveness = ("alive" if rec["alive"]
                        else ("stopped" if rec["status"] == "stopped"
                              else "stale"))
            item = f" on {rec['item']}" if rec.get("item") else ""
            age = (f"{rec['age_s']:.1f}s ago"
                   if rec["age_s"] is not None else "never")
            print(f"    {rec['worker']} [{liveness}] {rec['status']}"
                  f"{item} (beat {age}; "
                  f"{rec['executed']} executed, {rec['cached']} cached, "
                  f"{rec['failed']} failed, {rec['steals']} stolen, "
                  f"{rec['quarantined']} quarantined)")
        for lease in fleet["leases"]:
            state = ("expired" if lease["expired"]
                     else f"{lease['remaining_s']:.1f}s left")
            print(f"    lease {lease['run']}/{lease['item']} -> "
                  f"{lease['worker']} (attempt {lease['attempt']}, "
                  f"{state})")
    if args.queue_command == "list":
        now = time.time()
        for item in queue.item_files():
            if done_path_for(item).exists():
                receipt = load_json(done_path_for(item),
                                    kind="dispatch receipt") or {}
                state = (f"done ({receipt.get('status', '?')} on "
                         f"{receipt.get('worker', '?')})")
            else:
                claim = (load_json(claim_path_for(item),
                                   kind="dispatch claim")
                         if claim_path_for(item).exists() else None)
                if claim is not None and \
                        float(claim.get("deadline", 0)) > now:
                    state = (f"leased by {claim.get('worker', '?')} "
                             f"({float(claim['deadline']) - now:.1f}s left, "
                             f"attempt {claim.get('attempt', 1)})")
                elif claim is not None:
                    state = "lease expired (requeue pending)"
                else:
                    state = "pending"
            print(f"  {item.parent.name}/{item.name}: {state}")
    return 0


#: Stage kinds whose compute runs on the executor backend; their
#: worker-origin spans measure the stage function itself, so ``stats``
#: prefers those rows over the scheduler's submission-to-settle spans.
_BACKEND_SPAN_KINDS = ("capture", "summarize", "simulate")


def _stats_rows(spans: list) -> list:
    """One span per stage: worker-origin when available, else scheduler."""
    chosen = {}
    for span in spans:
        key = span.get("stage")
        if key is None:
            continue
        prev = chosen.get(key)
        if prev is None or (span.get("origin") == "worker"
                            and prev.get("origin") != "worker"):
            chosen[key] = span
    return [chosen[key] for key in sorted(chosen)]


def _print_span_tables(spans: list) -> None:
    rows = _stats_rows(spans)
    if not rows:
        print("  (no span records)")
        return
    stage_w = max(5, max(len(str(r.get("stage", ""))) for r in rows))
    print(f"  {'stage':<{stage_w}}  {'kind':>9}  {'origin':>9}  "
          f"{'status':>7}  {'wall s':>8}  {'cpu s':>8}  {'rss MiB':>8}")
    for r in rows:
        rss = r.get("rss_peak_kib", 0) / 1024.0
        print(f"  {str(r.get('stage', '')):<{stage_w}}  "
              f"{str(r.get('kind', '')):>9}  {str(r.get('origin', '')):>9}  "
              f"{str(r.get('status', '')):>7}  {r.get('wall_s', 0.0):>8.3f}  "
              f"{r.get('cpu_s', 0.0):>8.3f}  {rss:>8.1f}")
    # Per-kind aggregates over the same preferred rows.
    by_kind: dict = {}
    for r in rows:
        by_kind.setdefault(r.get("kind", "?"), []).append(r)
    print()
    print(f"  {'kind':>9}  {'stages':>6}  {'total wall s':>12}  "
          f"{'mean wall s':>11}  {'total cpu s':>11}")
    for kind in sorted(by_kind):
        group = by_kind[kind]
        wall = sum(r.get("wall_s", 0.0) for r in group)
        cpu = sum(r.get("cpu_s", 0.0) for r in group)
        print(f"  {kind:>9}  {len(group):>6}  {wall:>12.3f}  "
              f"{wall / len(group):>11.3f}  {cpu:>11.3f}")


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import get_telemetry_store
    store = get_telemetry_store(args.cache_dir)
    if store is None:
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set); "
              "run telemetry lives in the disk cache", file=sys.stderr)
        return 2
    if args.run is not None and args.last:
        print("error: pass a run id or --last, not both", file=sys.stderr)
        return 2
    run_id = args.run
    if args.last:
        run_id = store.last_run_id()
        if run_id is None:
            print("no telemetry runs recorded yet; execute a spec first",
                  file=sys.stderr)
            return 1
    if run_id is None:  # list mode
        print(store.describe())
        for rid in store.runs():
            manifest = store.load_manifest(rid) or {}
            ok = manifest.get("ok")
            state = "ok" if ok else ("FAILED" if ok is False else "running")
            wall = manifest.get("wall_s")
            tail = f", {wall:.2f}s wall" if isinstance(wall, (int, float)) \
                else ""
            print(f"  {rid}: {manifest.get('spec', '?')} via "
                  f"{manifest.get('executor', '?')}, "
                  f"{manifest.get('n_stages', '?')} stages, {state}{tail}")
        from .checkpoint import chain_stats, get_checkpoint_store
        ckpt = get_checkpoint_store(args.cache_dir)
        if ckpt is not None:
            cs = chain_stats(ckpt)
            if cs["full_manifests"] or cs["delta_manifests"]:
                print(f"  delta checkpoints: {cs['full_manifests']} full + "
                      f"{cs['delta_manifests']} delta manifests across "
                      f"{cs['chains']} chain"
                      f"{'' if cs['chains'] == 1 else 's'} "
                      f"(longest {cs['longest_chain']}); "
                      f"{cs['chunk_files']} chunks, "
                      f"{cs['chunk_bytes'] / 1024:.1f} KiB, "
                      f"dedupe x{cs['dedupe_ratio']:.2f}, "
                      f"{cs['unreferenced_chunks']} unreferenced "
                      f"(`repro checkpoint gc` reclaims them)")
        return 0
    manifest = store.load_manifest(run_id)
    if manifest is None:
        print(f"error: no telemetry run {run_id!r} under {store.root}",
              file=sys.stderr)
        return 1
    ok = manifest.get("ok")
    state = "ok" if ok else ("FAILED" if ok is False else "running")
    wall = manifest.get("wall_s")
    tail = f", {wall:.2f}s wall" if isinstance(wall, (int, float)) else ""
    print(f"run {run_id}: {manifest.get('spec', '?')} via "
          f"{manifest.get('executor', '?')}, "
          f"{manifest.get('n_stages', '?')} stages, {state}{tail}")
    _print_span_tables(store.load_spans(run_id))
    profiles = sorted(store.run_dir(run_id).glob("*.prof"))
    if profiles:
        print()
        print(f"  {len(profiles)} profile{'s' if len(profiles) != 1 else ''} "
              f"(python -m pstats <file>):")
        for path in profiles:
            print(f"    {path}")
    return 0


def _cmd_clear_cache(args: argparse.Namespace) -> int:
    from .checkpoint import get_checkpoint_store
    from .experiments import clear_cache, get_store
    from .obs import get_telemetry_store
    from .obs.index import get_run_index
    from .trace import get_trace_store
    store = get_store(args.cache_dir)
    traces = get_trace_store(args.cache_dir)
    checkpoints = get_checkpoint_store(args.cache_dir)
    queue = _dispatch_queue(args)
    index = get_run_index(args.cache_dir)
    telemetry = get_telemetry_store(args.cache_dir)
    stores = (store, traces, checkpoints, queue, index, telemetry)
    if all(s is None for s in stores):
        print("disk cache is disabled (REPRO_DISABLE_DISK_CACHE set)")
        return 0
    for s in stores:
        if s is not None:
            print(s.describe())
    if args.cache_dir is None:
        # The default session's disk clear covers the dispatch queue,
        # run-index, and telemetry directories too.
        removed = clear_cache(disk=True)
    else:
        removed = sum(s.clear() for s in stores if s is not None)
    print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'} "
          f"(results + traces + checkpoints + dispatch items + run index "
          f"+ telemetry)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_cache_flags(args)
    handlers = {
        "run": _cmd_run,
        "suite": _cmd_suite,
        "report": _cmd_report,
        "spec": _cmd_spec,
        "trace": _cmd_trace,
        "fuzz": _cmd_fuzz,
        "checkpoint": _cmd_checkpoint,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "queue": _cmd_queue,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "clear-cache": _cmd_clear_cache,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
