"""Explicit stage DAGs resolved from declarative specs.

:func:`build_plan` turns an :class:`~repro.api.spec.ExperimentSpec` into a
:class:`Plan` — an ordered DAG of :class:`Stage` objects covering the whole
pipeline for every grid cell::

    capture:<workload>@<n_cpus>cpu            one per distinct access stream
      -> summarize:<workload>@<n_cpus>cpu     epoch-sharded counting pass
        -> simulate:<workload>/<organisation>@scale,warmup   one per cell
          -> analyze:<workload>/<context>@scale,warmup       one per context
            -> prefetch:<name>:<cell context>                per prefetcher
            -> render:<analysis>                             per analysis

The DAG is *explicit* — ``repro spec plan`` prints it (``--format json|dot``
exports it for external schedulers), tests assert on it — and execution is
**event-driven**: :func:`execute_plan` tracks stage dependencies, hands each
stage to the session's :class:`~repro.api.executor.Executor` backend the
moment its dependencies land, and fires :class:`PlanEvents` lifecycle
callbacks (``on_stage_start``/``finish``/``error``) as futures settle.  With
an overlapping backend (``thread``/``process``/``dispatch``) independent
(scale, warmup) combos run concurrently and render stages start as soon as
their analyze dependencies land, instead of waiting for the whole grid.
Replay, checkpoint resume, and the result store are engaged per cell
automatically via the session policy; a failed stage cancels (never runs)
its transitive dependents while independent branches finish.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.span import SpanRecorder, maybe_profile
from ..obs.store import iso_utc
from .registry import ANALYSES, PREFETCHERS, SYSTEMS
from .spec import ExperimentSpec

#: Stage kinds in pipeline order.
STAGE_KINDS = ("capture", "summarize", "prefix", "simulate", "analyze",
               "prefetch", "render")


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline DAG."""

    key: str
    kind: str
    params: Dict[str, Any]
    deps: Tuple[str, ...] = ()

    def describe(self) -> str:
        deps = f"  <- {', '.join(self.deps)}" if self.deps else ""
        return f"{self.key}{deps}"


class Plan:
    """An ordered, dependency-checked DAG of pipeline stages."""

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.stages: Dict[str, Stage] = {}

    # ------------------------------------------------------------------ #
    def add(self, stage: Stage) -> Stage:
        if stage.key in self.stages:
            raise ValueError(f"duplicate stage key {stage.key!r}")
        for dep in stage.deps:
            if dep not in self.stages:
                raise ValueError(
                    f"stage {stage.key!r} depends on unknown/later stage "
                    f"{dep!r} (stages must be added in topological order)")
        self.stages[stage.key] = stage
        return stage

    def stage(self, key: str) -> Stage:
        return self.stages[key]

    def order(self) -> List[Stage]:
        """Stages in execution (topological) order."""
        return list(self.stages.values())

    def by_kind(self, kind: str) -> List[Stage]:
        return [s for s in self.stages.values() if s.kind == kind]

    def __len__(self) -> int:
        return len(self.stages)

    def describe(self, costs: Optional[Dict[str, Dict[str, float]]] = None) -> str:
        """The plan as text; ``costs`` (kind -> observed mean cost, from
        :meth:`repro.obs.TelemetryStore.observed_costs`) annotates each
        stage-kind header with mean wall/cpu seconds from past runs."""
        lines = [self.spec.describe(),
                 f"plan: {len(self.stages)} stages ("
                 + ", ".join(f"{len(self.by_kind(kind))} {kind}"
                             for kind in STAGE_KINDS
                             if self.by_kind(kind)) + ")"]
        for kind in STAGE_KINDS:
            stages = self.by_kind(kind)
            if not stages:
                continue
            header = f"[{kind}]"
            cost = (costs or {}).get(kind)
            if cost:
                header += (f"  ~{cost['mean_wall_s']:.3f}s wall / "
                           f"{cost['mean_cpu_s']:.3f}s cpu per stage "
                           f"(observed over {cost['count']})")
            lines.append(header)
            lines.extend(f"  {stage.describe()}" for stage in stages)
        if self.by_kind("render"):
            lines.append(
                "note: some analyses have fixed requirements beyond the "
                "grid (figure1 spans both organisations; tables 3-5 and "
                "the ablations use the paper's workload sets) and will "
                "simulate those extra cells serially when rendered.")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # exports for external schedulers
    # ------------------------------------------------------------------ #
    def to_json(self, indent: int = 2) -> str:
        """The DAG as JSON: spec, then stages with kind/params/deps."""
        import json
        return json.dumps(
            {"spec": self.spec.resolved().to_dict(),
             "stages": [{"key": stage.key, "kind": stage.kind,
                         "params": dict(stage.params),
                         "deps": list(stage.deps)}
                        for stage in self.order()]},
            indent=indent)

    def to_dot(self) -> str:
        """The DAG in Graphviz ``dot`` form (one node per stage)."""
        colors = {"capture": "lightblue", "summarize": "lightcyan",
                  "prefix": "lightgoldenrod", "simulate": "khaki",
                  "analyze": "palegreen", "prefetch": "plum",
                  "render": "lightsalmon"}
        lines = [f'digraph "{self.spec.name}" {{', "  rankdir=LR;",
                 '  node [shape=box, style=filled, fontname="monospace"];']
        for stage in self.order():
            fill = colors.get(stage.kind, "white")
            lines.append(f'  "{stage.key}" [fillcolor={fill}];')
        for stage in self.order():
            lines.extend(f'  "{dep}" -> "{stage.key}";'
                         for dep in stage.deps)
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def run(self, session, executor=None, events: "PlanEvents" = None,
            raise_errors: bool = True) -> "PlanResult":
        """Execute every stage through ``session``; see :func:`execute_plan`."""
        return execute_plan(self, session, executor=executor, events=events,
                            raise_errors=raise_errors)


class PlanEvents:
    """Lifecycle callbacks the scheduler fires as stages move.

    Subclass and override what you care about (all default to no-ops), or
    use :class:`EventLog` to record the sequence for assertions.  Callbacks
    run in the scheduler thread, between future waits — keep them cheap.
    """

    def on_plan_start(self, plan: "Plan", run_id: Optional[str]) -> None:
        """Execution is about to begin; ``run_id`` names the telemetry run
        (``None`` when telemetry is disabled)."""

    def on_stage_start(self, stage: Stage) -> None:
        """``stage`` was handed to the backend (or began running inline)."""

    def on_stage_finish(self, stage: Stage, status: str) -> None:
        """``stage`` settled with ``status`` (ran/cached/skipped)."""

    def on_stage_error(self, stage: Stage, error: BaseException) -> None:
        """``stage`` raised; its transitive dependents will be skipped."""


class _ComposedEvents(PlanEvents):
    """Fan callbacks out to several receivers, telemetry recorder first.

    The recorder leads so span clocks start before (and stop after) any
    user-callback work, keeping user hooks out of the measured window.
    Receivers are duck-typed: ``None`` entries are dropped and a receiver
    missing ``on_plan_start`` (pre-telemetry ``PlanEvents`` lookalikes) is
    simply skipped for that hook.
    """

    def __init__(self, *receivers: Optional[PlanEvents]) -> None:
        self._receivers = [r for r in receivers if r is not None]

    def on_plan_start(self, plan: "Plan", run_id: Optional[str]) -> None:
        for receiver in self._receivers:
            hook = getattr(receiver, "on_plan_start", None)
            if hook is not None:
                hook(plan, run_id)

    def on_stage_start(self, stage: Stage) -> None:
        for receiver in self._receivers:
            receiver.on_stage_start(stage)

    def on_stage_finish(self, stage: Stage, status: str) -> None:
        for receiver in self._receivers:
            receiver.on_stage_finish(stage, status)

    def on_stage_error(self, stage: Stage, error: BaseException) -> None:
        for receiver in self._receivers:
            receiver.on_stage_error(stage, error)


class EventLog(PlanEvents):
    """Record ``("start"|"finish"|"error", stage_key, detail)`` tuples."""

    def __init__(self) -> None:
        self.events: List[Tuple[str, str, Any]] = []

    def on_stage_start(self, stage: Stage) -> None:
        self.events.append(("start", stage.key, None))

    def on_stage_finish(self, stage: Stage, status: str) -> None:
        self.events.append(("finish", stage.key, status))

    def on_stage_error(self, stage: Stage, error: BaseException) -> None:
        self.events.append(("error", stage.key, error))

    def index(self, event: str, key: str) -> int:
        """Position of the first ``(event, key, *)`` entry (KeyError if absent)."""
        for position, entry in enumerate(self.events):
            if entry[0] == event and entry[1] == key:
                return position
        raise KeyError(f"no {event!r} event for stage {key!r}")


class PlanExecutionError(RuntimeError):
    """One or more stages failed; ``result`` holds the partial outcome.

    Independent branches of the DAG still completed — their bundles and
    artifacts are in ``result`` — while everything downstream of a failed
    stage is marked ``skipped`` and was never run.
    """

    def __init__(self, result: "PlanResult") -> None:
        self.result = result
        failed = sorted(result.errors)
        first = result.errors[failed[0]]
        super().__init__(
            f"{len(failed)} stage(s) failed "
            f"({', '.join(failed)}); first error: {first!r}")


@dataclass
class PlanResult:
    """Everything a plan execution produced, keyed like the DAG."""

    spec: ExperimentSpec
    plan: Plan
    #: (workload, context, scale, warmup) -> ContextResult bundle.
    bundles: Dict[Tuple[str, str, int, float], Any] = field(default_factory=dict)
    #: (prefetcher, workload, context, scale, warmup) -> CoverageResult.
    coverage: Dict[Tuple[str, str, str, int, float], Any] = field(
        default_factory=dict)
    #: render-stage key -> artifact object (``.render()`` or ``str``).
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: per-stream EpochSummary from the summarize stages.
    summaries: Dict[Tuple[str, int], Any] = field(default_factory=dict)
    #: stage key -> "ran" | "cached" | "skipped" | "failed".
    statuses: Dict[str, str] = field(default_factory=dict)
    #: stage key -> the exception a failed stage raised.
    errors: Dict[str, BaseException] = field(default_factory=dict)
    #: Telemetry run id (directory under ``<cache>/telemetry/``), or ``None``
    #: when telemetry was disabled for this execution.
    run_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no stage failed (skipped-by-policy stages are fine)."""
        return not self.errors

    def artifact(self, name: str) -> Any:
        """The artifact for one analysis name (any scale/warmup suffix).

        Raises ``KeyError`` listing the available artifact names on a miss,
        and listing the matching candidates when a bare analysis name is
        ambiguous across several (scale, warmup) combos.
        """
        if name in self.artifacts:
            return self.artifacts[name]
        matches = sorted(key for key in self.artifacts
                         if key.startswith(f"{name}@"))
        if not matches:
            raise KeyError(f"no artifact {name!r}; available: "
                           f"{', '.join(sorted(self.artifacts)) or '(none)'}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous artifact {name!r}; matches: "
                           f"{', '.join(matches)} (pass a full name)")
        return self.artifacts[matches[0]]

    def render(self, name: str) -> str:
        artifact = self.artifact(name)
        return artifact.render() if hasattr(artifact, "render") else str(artifact)

    def render_all(self) -> Dict[str, str]:
        """Every artifact rendered, in plan order.

        The artifacts dict fills in stage *completion* order, which an
        overlapping backend makes nondeterministic; rendering follows the
        plan's render-stage order so output is stable run to run.
        """
        ordered = [stage.key[len("render:"):]
                   for stage in self.plan.by_kind("render")]
        keys = [key for key in ordered if key in self.artifacts]
        keys += [key for key in self.artifacts if key not in ordered]
        rendered = {}
        for key in keys:
            value = self.artifacts[key]
            rendered[key] = (value.render() if hasattr(value, "render")
                             else str(value))
        return rendered


# --------------------------------------------------------------------------- #
# plan construction
# --------------------------------------------------------------------------- #
def _combo_suffix(spec: ExperimentSpec, scale: int, warmup: float) -> str:
    """Disambiguating suffix for per-(scale, warmup) stage keys."""
    if len(spec.scales) * len(spec.warmups) == 1:
        return ""
    return f"@scale{scale}-warmup{warmup:g}"


def build_plan(spec: ExperimentSpec, warm_starts: bool = True) -> Plan:
    """Resolve ``spec`` into the explicit stage DAG described above.

    With ``warm_starts`` (the default), every (workload, organisation,
    scale) group whose cells span at least two distinct positive warm-up
    fractions gains one ``prefix`` stage: it simulates the group's shared
    prefix — the epochs every member passes through with recording off —
    exactly once and publishes the boundary checkpoint chain under a
    warmup-free key (:mod:`repro.checkpoint.prefix`).  Member simulate
    stages depend on it and warm-start from the published chain instead of
    recomputing the prefix, on every executor backend.
    """
    from ..experiments.runner import clamp_warmup_fraction
    spec = spec.resolved()
    spec.ensure_valid()
    plan = Plan(spec)

    # One capture + summarize per distinct access stream.  A stream is keyed
    # by (workload, n_cpus): both organisations of one workload share a
    # stream only when their CPU counts coincide.
    stream_keys: Dict[Tuple[str, int], Tuple[str, str]] = {}
    for workload in spec.workloads:
        for organisation in spec.organisations:
            n_cpus = SYSTEMS.get(organisation).n_cpus
            if (workload, n_cpus) in stream_keys:
                continue
            capture_key = f"capture:{workload}@{n_cpus}cpu"
            summarize_key = f"summarize:{workload}@{n_cpus}cpu"
            params = {"workload": workload, "n_cpus": n_cpus,
                      "seed": spec.seed, "size": spec.size}
            plan.add(Stage(capture_key, "capture", dict(params)))
            plan.add(Stage(summarize_key, "summarize", dict(params),
                           deps=(capture_key,)))
            stream_keys[(workload, n_cpus)] = (capture_key, summarize_key)

    # One prefix stage per (workload, organisation, scale) group whose
    # cells span several positive warm-ups: simulate the shared prefix
    # once, publish its boundary chain under the warmup-free prefix key,
    # and let every member cell warm-start from it.
    prefix_keys: Dict[Tuple[str, str, int], str] = {}
    if warm_starts:
        from ..checkpoint.prefix import shared_prefix_groups
        grid = [(cell.workload, cell.organisation, cell.scale,
                 clamp_warmup_fraction(cell.warmup))
                for cell in spec.cells()]
        for (workload, organisation, scale), warmup in \
                shared_prefix_groups(grid):
            capture_key = stream_keys[
                (workload, SYSTEMS.get(organisation).n_cpus)][0]
            key = f"prefix:{workload}/{organisation}@scale{scale}"
            plan.add(Stage(key, "prefix",
                           {"workload": workload,
                            "organisation": organisation, "scale": scale,
                            "warmup": warmup, "size": spec.size,
                            "seed": spec.seed},
                           deps=(capture_key,)))
            prefix_keys[(workload, organisation, scale)] = key

    # One simulate per grid cell; one analyze per cell context.
    analyze_keys: Dict[Tuple[int, float], List[str]] = {}
    for cell in spec.cells():
        system = SYSTEMS.get(cell.organisation)
        stream = stream_keys[(cell.workload, system.n_cpus)]
        prefix_key = prefix_keys.get((cell.workload, cell.organisation,
                                      cell.scale))
        sim_key = (f"simulate:{cell.workload}/{cell.organisation}"
                   f"@scale{cell.scale}-warmup{cell.warmup:g}")
        plan.add(Stage(sim_key, "simulate",
                       {"workload": cell.workload,
                        "organisation": cell.organisation,
                        "scale": cell.scale, "warmup": cell.warmup,
                        "size": spec.size, "seed": spec.seed},
                       deps=stream + ((prefix_key,) if prefix_key else ())))
        for context in system.contexts:
            ana_key = (f"analyze:{cell.workload}/{context}"
                       f"@scale{cell.scale}-warmup{cell.warmup:g}")
            plan.add(Stage(ana_key, "analyze",
                           {"workload": cell.workload, "context": context,
                            "scale": cell.scale, "warmup": cell.warmup,
                            "size": spec.size, "seed": spec.seed},
                           deps=(sim_key,)))
            analyze_keys.setdefault((cell.scale, cell.warmup),
                                    []).append(ana_key)
            for prefetcher in spec.prefetchers:
                plan.add(Stage(
                    f"prefetch:{prefetcher}:{cell.workload}/{context}"
                    f"@scale{cell.scale}-warmup{cell.warmup:g}",
                    "prefetch",
                    {"prefetcher": prefetcher, "workload": cell.workload,
                     "context": context, "scale": cell.scale,
                     "warmup": cell.warmup, "size": spec.size,
                     "seed": spec.seed},
                    deps=(ana_key,)))

    # One render per analysis per (scale, warmup) combination: an analysis
    # consumes the whole grid slice at one cache scale and warm-up.
    for scale in spec.scales:
        for warmup in spec.warmups:
            deps = tuple(analyze_keys.get((scale, warmup), ()))
            for analysis in spec.analyses:
                key = f"render:{analysis}{_combo_suffix(spec, scale, warmup)}"
                plan.add(Stage(key, "render",
                               {"analysis": analysis, "scale": scale,
                                "warmup": warmup},
                               deps=deps))
    return plan


# --------------------------------------------------------------------------- #
# plan execution: the event-driven scheduler
# --------------------------------------------------------------------------- #
def _run_inline_stage(stage: Stage, session, payloads: Dict[str, Any],
                      result: PlanResult) -> Tuple[str, Any]:
    """Execute one parent-side stage (analyze/prefetch/render).

    These stages are bookkeeping over payloads the scheduler already holds
    (simulated bundles, analysis adapters over the warm memo), so shipping
    them to a backend would move the data both ways for no work; they run
    inline between future waits instead.
    """
    params = stage.params
    if stage.kind == "analyze":
        sim = payloads[stage.deps[0]]
        context = params["context"]
        return sim["statuses"][context], sim["bundles"][context]
    if stage.kind == "prefetch":
        from ..experiments.runner import clamp_warmup_fraction
        from ..prefetch.base import coverage_params, evaluate_coverage
        factory = PREFETCHERS.get(params["prefetcher"])
        bundle = payloads[stage.deps[0]]
        store = (getattr(session, "checkpoint_store", None)
                 if getattr(session, "checkpoint", True) else None)
        key = coverage_params(
            params["prefetcher"], params["workload"], params["context"],
            params.get("size", "small"), params.get("seed", 42),
            params["scale"],
            clamp_warmup_fraction(params["warmup"])) if store else None
        return "ran", evaluate_coverage(
            factory(), bundle.miss_trace, store=store, params=key,
            resume=bool(getattr(session, "resume", True)))
    if stage.kind == "render":
        adapter = ANALYSES.get(params["analysis"])
        return "ran", adapter(session=session, spec=result.spec,
                              scale=params["scale"],
                              warmup_fraction=params["warmup"])
    raise ValueError(f"no inline handler for stage kind {stage.kind!r}")


def _record_payload(stage: Stage, status: str, payload: Any,
                    result: PlanResult) -> None:
    """File a finished stage's payload under the right PlanResult index."""
    params = stage.params
    if stage.kind == "summarize" and payload is not None:
        result.summaries[(params["workload"], params["n_cpus"])] = payload
    elif stage.kind == "simulate" and payload is not None:
        # Warm the parent memo so render adapters (and later sessions in
        # this process) reuse the bundles without touching the disk store.
        from ..experiments.runner import _CACHE, clamp_warmup_fraction, \
            memo_key
        warmup = clamp_warmup_fraction(params["warmup"])
        for context, bundle in payload["bundles"].items():
            _CACHE[memo_key(params["workload"], context, params["size"],
                            params["seed"], params["scale"],
                            warmup)] = bundle
    elif stage.kind == "analyze":
        result.bundles[(params["workload"], params["context"],
                        params["scale"], params["warmup"])] = payload
    elif stage.kind == "prefetch":
        result.coverage[(params["prefetcher"], params["workload"],
                         params["context"], params["scale"],
                         params["warmup"])] = payload
    elif stage.kind == "render":
        result.artifacts[stage.key[len("render:"):]] = payload


def _stage_cost_estimates(session) -> Dict[str, Dict[str, float]]:
    """Observed per-kind costs for the scheduler, or ``{}`` when unknown.

    Anything going wrong here — telemetry off, empty store, a locked index
    database — degrades to FIFO scheduling, never to a failed plan.
    """
    telem = getattr(session, "telemetry_store", None)
    if telem is None:
        return {}
    try:
        return telem.observed_costs() or {}
    except Exception:
        return {}


def execute_plan(plan: Plan, session, executor=None,
                 events: Optional[PlanEvents] = None,
                 raise_errors: bool = True) -> PlanResult:
    """Run every stage of ``plan`` through ``session``, event-driven.

    The scheduler tracks dependency counts and submits each stage to the
    ``executor`` backend (an :class:`~repro.api.executor.Executor` instance,
    a registered name, or ``None`` for the session's ``executor`` policy)
    the moment its dependencies land; ``events`` callbacks fire on every
    start/finish/error.  Generation and simulation stages run on the
    backend; analyze/prefetch/render stages run inline in the parent over
    the payloads the backend returned.

    A stage that raises is marked ``failed`` (its exception lands in
    ``result.errors``), its transitive dependents are cancelled without
    running (``skipped``), and every independent branch still completes.
    With ``raise_errors`` (the default) a :class:`PlanExecutionError`
    carrying the partial :class:`PlanResult` is raised at the end.

    Scheduling is **cost-aware**: when the telemetry store has observed
    costs for any stage kind (``TelemetryStore.observed_costs()``, served
    from the run index), the scheduler pops the most expensive ready stage
    first instead of FIFO, so long simulations start before cheap captures
    and the plan's critical path shortens.  Which stages run — and what
    they produce — is unchanged; only the submission order moves, so
    artifacts stay bit-identical to FIFO and to the serial backend.
    """
    from .executor import BACKEND_KINDS, resolve_executor

    events = events if events is not None else PlanEvents()
    result = PlanResult(spec=plan.spec, plan=plan)
    payloads: Dict[str, Any] = {}

    remaining = {key: set(stage.deps) for key, stage in plan.stages.items()}
    dependents: Dict[str, List[str]] = {}
    for stage in plan.stages.values():
        for dep in stage.deps:
            dependents.setdefault(dep, []).append(stage.key)
    ready = deque(key for key, deps in remaining.items() if not deps)
    pending: Dict[Future, Stage] = {}

    costs = _stage_cost_estimates(session)

    def estimated_wall(key: str) -> float:
        estimate = costs.get(plan.stages[key].kind)
        return float(estimate.get("mean_wall_s", 0.0)) if estimate else 0.0

    def pop_ready() -> Stage:
        """The most expensive ready stage by observed mean wall time.

        Ties (including the no-observations case, where every estimate is
        0.0) break FIFO, which keeps the pre-cost-model submission order —
        and deterministic event sequences — when there is nothing to rank.
        """
        if len(ready) > 1 and costs:
            best = max(range(len(ready)),
                       key=lambda i: (estimated_wall(ready[i]), -i))
            if best:
                key = ready[best]
                del ready[best]
                return plan.stages[key]
        return plan.stages[ready.popleft()]

    def settle(stage: Stage, status: str, payload: Any) -> None:
        result.statuses[stage.key] = status
        payloads[stage.key] = payload
        _record_payload(stage, status, payload, result)
        events.on_stage_finish(stage, status)
        for dep_key in dependents.get(stage.key, ()):
            remaining[dep_key].discard(stage.key)
            if not remaining[dep_key]:
                ready.append(dep_key)

    def fail(stage: Stage, error: BaseException) -> None:
        result.statuses[stage.key] = "failed"
        result.errors[stage.key] = error
        events.on_stage_error(stage, error)
        # Cancel the whole downstream cone: those stages never run.
        cone = deque(dependents.get(stage.key, ()))
        while cone:
            key = cone.popleft()
            if result.statuses.get(key) == "skipped":
                continue
            result.statuses[key] = "skipped"
            events.on_stage_finish(plan.stages[key], "skipped")
            cone.extend(dependents.get(key, ()))

    wall0 = time.perf_counter()
    with resolve_executor(executor, session, plan) as backend:
        backend.bind(session, plan)
        # Telemetry run: created after bind (the backend knows its name by
        # then) and before any submit, so every work item carries the run id
        # and every span — scheduler- or worker-origin, any host — lands in
        # the same <cache>/telemetry/<run_id>/ directory.
        telem = getattr(session, "telemetry_store", None)
        profile = bool(getattr(session, "profile", False))
        run_id = None
        if telem is not None:
            run_id = telem.create_run({
                "spec": plan.spec.name,
                "executor": backend.name,
                "n_stages": len(plan),
                "stage_kinds": {kind: len(plan.by_kind(kind))
                                for kind in STAGE_KINDS if plan.by_kind(kind)},
                "profile": profile})
            result.run_id = run_id
            backend.configure(telemetry_run_id=run_id)
            events = _ComposedEvents(SpanRecorder(sink=telem.span_sink(run_id)),
                                     events)
        events.on_plan_start(plan, run_id)
        while ready or pending:
            while ready:
                stage = pop_ready()
                events.on_stage_start(stage)
                if stage.kind in BACKEND_KINDS:
                    pending[backend.submit(stage)] = stage
                    continue
                prof_path = (telem.profile_path(run_id, stage.key)
                             if profile and run_id is not None else None)
                try:
                    with maybe_profile(prof_path):
                        status, payload = _run_inline_stage(stage, session,
                                                            payloads, result)
                except Exception as error:  # noqa: BLE001 - recorded
                    fail(stage, error)
                else:
                    settle(stage, status, payload)
            if not pending:
                continue  # inline completions may have readied more stages
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            # Settle in submission order for deterministic event sequences
            # when several futures completed in one wait.
            for future in [f for f in list(pending) if f in done]:
                stage = pending.pop(future)
                try:
                    status, payload = backend.finalize(stage, future.result())
                except Exception as error:  # noqa: BLE001 - recorded
                    fail(stage, error)
                else:
                    settle(stage, status, payload)
    if telem is not None and run_id is not None:
        telem.update_manifest(run_id, finished_at=iso_utc(),
                              wall_s=round(time.perf_counter() - wall0, 6),
                              ok=result.ok, statuses=dict(result.statuses))
    if result.errors and raise_errors:
        raise PlanExecutionError(result)
    return result
