"""Explicit stage DAGs resolved from declarative specs.

:func:`build_plan` turns an :class:`~repro.api.spec.ExperimentSpec` into a
:class:`Plan` — an ordered DAG of :class:`Stage` objects covering the whole
pipeline for every grid cell::

    capture:<workload>@<n_cpus>cpu            one per distinct access stream
      -> summarize:<workload>@<n_cpus>cpu     epoch-sharded counting pass
        -> simulate:<workload>/<organisation>@scale,warmup   one per cell
          -> analyze:<workload>/<context>@scale,warmup       one per context
            -> prefetch:<name>:<cell context>                per prefetcher
            -> render:<analysis>                             per analysis

The DAG is *explicit* — ``repro spec plan`` prints it, tests assert on it —
while execution batches stages of the same kind for efficiency: simulate
stages go through :meth:`ParallelSuiteRunner.run_suite`, which fans out over
the process pool per (workload, organisation) and drops *below* that
granularity by epoch-sharding any simulation whose captured trace already
has boundary checkpoints.  Replay, checkpoint resume, and the result store
are all engaged per cell automatically via the session policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .registry import ANALYSES, PREFETCHERS, SYSTEMS
from .spec import ExperimentSpec

#: Stage kinds in pipeline order.
STAGE_KINDS = ("capture", "summarize", "simulate", "analyze", "prefetch",
               "render")


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline DAG."""

    key: str
    kind: str
    params: Dict[str, Any]
    deps: Tuple[str, ...] = ()

    def describe(self) -> str:
        deps = f"  <- {', '.join(self.deps)}" if self.deps else ""
        return f"{self.key}{deps}"


class Plan:
    """An ordered, dependency-checked DAG of pipeline stages."""

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.stages: Dict[str, Stage] = {}

    # ------------------------------------------------------------------ #
    def add(self, stage: Stage) -> Stage:
        if stage.key in self.stages:
            raise ValueError(f"duplicate stage key {stage.key!r}")
        for dep in stage.deps:
            if dep not in self.stages:
                raise ValueError(
                    f"stage {stage.key!r} depends on unknown/later stage "
                    f"{dep!r} (stages must be added in topological order)")
        self.stages[stage.key] = stage
        return stage

    def stage(self, key: str) -> Stage:
        return self.stages[key]

    def order(self) -> List[Stage]:
        """Stages in execution (topological) order."""
        return list(self.stages.values())

    def by_kind(self, kind: str) -> List[Stage]:
        return [s for s in self.stages.values() if s.kind == kind]

    def __len__(self) -> int:
        return len(self.stages)

    def describe(self) -> str:
        lines = [self.spec.describe(),
                 f"plan: {len(self.stages)} stages ("
                 + ", ".join(f"{len(self.by_kind(kind))} {kind}"
                             for kind in STAGE_KINDS
                             if self.by_kind(kind)) + ")"]
        for kind in STAGE_KINDS:
            stages = self.by_kind(kind)
            if not stages:
                continue
            lines.append(f"[{kind}]")
            lines.extend(f"  {stage.describe()}" for stage in stages)
        if self.by_kind("render"):
            lines.append(
                "note: some analyses have fixed requirements beyond the "
                "grid (figure1 spans both organisations; tables 3-5 and "
                "the ablations use the paper's workload sets) and will "
                "simulate those extra cells serially when rendered.")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def run(self, session) -> "PlanResult":
        """Execute every stage through ``session``; see :func:`execute_plan`."""
        return execute_plan(self, session)


@dataclass
class PlanResult:
    """Everything a plan execution produced, keyed like the DAG."""

    spec: ExperimentSpec
    plan: Plan
    #: (workload, context, scale, warmup) -> ContextResult bundle.
    bundles: Dict[Tuple[str, str, int, float], Any] = field(default_factory=dict)
    #: (prefetcher, workload, context, scale, warmup) -> CoverageResult.
    coverage: Dict[Tuple[str, str, str, int, float], Any] = field(
        default_factory=dict)
    #: render-stage key -> artifact object (``.render()`` or ``str``).
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: per-stream EpochSummary from the summarize stages.
    summaries: Dict[Tuple[str, int], Any] = field(default_factory=dict)
    #: stage key -> "ran" | "cached" | "skipped".
    statuses: Dict[str, str] = field(default_factory=dict)

    def artifact(self, name: str) -> Any:
        """The artifact for one analysis name (any scale/warmup suffix)."""
        if name in self.artifacts:
            return self.artifacts[name]
        matches = [key for key in self.artifacts
                   if key == name or key.startswith(f"{name}@")]
        if not matches:
            raise KeyError(f"no artifact {name!r}; have: "
                           f"{', '.join(self.artifacts) or '(none)'}")
        return self.artifacts[matches[0]]

    def render(self, name: str) -> str:
        artifact = self.artifact(name)
        return artifact.render() if hasattr(artifact, "render") else str(artifact)

    def render_all(self) -> Dict[str, str]:
        return {key: (value.render() if hasattr(value, "render")
                      else str(value))
                for key, value in self.artifacts.items()}


# --------------------------------------------------------------------------- #
# plan construction
# --------------------------------------------------------------------------- #
def _combo_suffix(spec: ExperimentSpec, scale: int, warmup: float) -> str:
    """Disambiguating suffix for per-(scale, warmup) stage keys."""
    if len(spec.scales) * len(spec.warmups) == 1:
        return ""
    return f"@scale{scale}-warmup{warmup:g}"


def build_plan(spec: ExperimentSpec) -> Plan:
    """Resolve ``spec`` into the explicit stage DAG described above."""
    spec = spec.resolved()
    spec.ensure_valid()
    plan = Plan(spec)

    # One capture + summarize per distinct access stream.  A stream is keyed
    # by (workload, n_cpus): both organisations of one workload share a
    # stream only when their CPU counts coincide.
    stream_keys: Dict[Tuple[str, int], Tuple[str, str]] = {}
    for workload in spec.workloads:
        for organisation in spec.organisations:
            n_cpus = SYSTEMS.get(organisation).n_cpus
            if (workload, n_cpus) in stream_keys:
                continue
            capture_key = f"capture:{workload}@{n_cpus}cpu"
            summarize_key = f"summarize:{workload}@{n_cpus}cpu"
            params = {"workload": workload, "n_cpus": n_cpus,
                      "seed": spec.seed, "size": spec.size}
            plan.add(Stage(capture_key, "capture", dict(params)))
            plan.add(Stage(summarize_key, "summarize", dict(params),
                           deps=(capture_key,)))
            stream_keys[(workload, n_cpus)] = (capture_key, summarize_key)

    # One simulate per grid cell; one analyze per cell context.
    analyze_keys: Dict[Tuple[int, float], List[str]] = {}
    for cell in spec.cells():
        system = SYSTEMS.get(cell.organisation)
        stream = stream_keys[(cell.workload, system.n_cpus)]
        sim_key = (f"simulate:{cell.workload}/{cell.organisation}"
                   f"@scale{cell.scale}-warmup{cell.warmup:g}")
        plan.add(Stage(sim_key, "simulate",
                       {"workload": cell.workload,
                        "organisation": cell.organisation,
                        "scale": cell.scale, "warmup": cell.warmup,
                        "size": spec.size, "seed": spec.seed},
                       deps=stream))
        for context in system.contexts:
            ana_key = (f"analyze:{cell.workload}/{context}"
                       f"@scale{cell.scale}-warmup{cell.warmup:g}")
            plan.add(Stage(ana_key, "analyze",
                           {"workload": cell.workload, "context": context,
                            "scale": cell.scale, "warmup": cell.warmup,
                            "size": spec.size, "seed": spec.seed},
                           deps=(sim_key,)))
            analyze_keys.setdefault((cell.scale, cell.warmup),
                                    []).append(ana_key)
            for prefetcher in spec.prefetchers:
                plan.add(Stage(
                    f"prefetch:{prefetcher}:{cell.workload}/{context}"
                    f"@scale{cell.scale}-warmup{cell.warmup:g}",
                    "prefetch",
                    {"prefetcher": prefetcher, "workload": cell.workload,
                     "context": context, "scale": cell.scale,
                     "warmup": cell.warmup},
                    deps=(ana_key,)))

    # One render per analysis per (scale, warmup) combination: an analysis
    # consumes the whole grid slice at one cache scale and warm-up.
    for scale in spec.scales:
        for warmup in spec.warmups:
            deps = tuple(analyze_keys.get((scale, warmup), ()))
            for analysis in spec.analyses:
                key = f"render:{analysis}{_combo_suffix(spec, scale, warmup)}"
                plan.add(Stage(key, "render",
                               {"analysis": analysis, "scale": scale,
                                "warmup": warmup},
                               deps=deps))
    return plan


# --------------------------------------------------------------------------- #
# plan execution
# --------------------------------------------------------------------------- #
def execute_plan(plan: Plan, session) -> PlanResult:
    """Run every stage of ``plan`` through ``session``.

    Stage batching: captures run serially (each is one generator pass,
    performed at most once per distinct stream), summaries fan epochs over
    the session's pool, simulations go through the suite runner (pool plus
    epoch sharding below it), and analyses/prefetch/render stages consume
    the simulated bundles from the memo/disk store.
    """
    from ..prefetch.base import evaluate_coverage
    from ..trace.store import trace_params

    spec = plan.spec
    result = PlanResult(spec=spec, plan=plan)
    runner = session.parallel_runner()

    # -- capture (fanned over the pool: generation passes overlap) ------ #
    capture_stages = plan.by_kind("capture")
    if session.trace_store is None or not session.replay:
        for stage in capture_stages:
            result.statuses[stage.key] = "skipped"
    elif capture_stages:
        statuses = runner.capture_streams(
            [(stage.params["workload"], stage.params["n_cpus"])
             for stage in capture_stages],
            seed=spec.seed, size=spec.size)
        for stage in capture_stages:
            result.statuses[stage.key] = statuses[
                (stage.params["workload"], stage.params["n_cpus"])]

    # -- summarize ------------------------------------------------------ #
    for stage in plan.by_kind("summarize"):
        store = session.trace_store
        reader = (store.open(trace_params(
            stage.params["workload"], stage.params["n_cpus"],
            stage.params["seed"], stage.params["size"]))
            if store is not None and session.replay else None)
        if reader is None:
            result.statuses[stage.key] = "skipped"
            continue
        result.summaries[(stage.params["workload"],
                          stage.params["n_cpus"])] = \
            runner.summarize_trace(reader)
        result.statuses[stage.key] = "ran"

    # -- simulate + analyze --------------------------------------------- #
    from ..experiments.runner import _result_params, clamp_warmup_fraction
    store = session.result_store
    for stage in plan.by_kind("analyze"):
        params = _result_params(
            stage.params["workload"], stage.params["context"],
            stage.params["size"], stage.params["seed"],
            stage.params["scale"],
            clamp_warmup_fraction(stage.params["warmup"]))
        result.statuses[stage.key] = (
            "cached" if store is not None and store.contains("context", params)
            else "ran")
    # A simulate stage only "ran" if at least one of its contexts' bundles
    # was absent from the memo/disk store when the suite started.
    for stage in plan.by_kind("simulate"):
        sim_key = stage.key
        dependents = [s for s in plan.by_kind("analyze")
                      if sim_key in s.deps]
        result.statuses[sim_key] = (
            "cached" if dependents and all(
                result.statuses[s.key] == "cached" for s in dependents)
            else "ran")
    combos = sorted({(cell.scale, cell.warmup) for cell in spec.cells()})
    for scale, warmup in combos:
        merged = runner.run_suite(
            size=spec.size, seed=spec.seed, scale=scale,
            workloads=spec.workloads, warmup_fraction=warmup,
            organisations=spec.organisations)
        for workload, contexts in merged.items():
            for context, bundle in contexts.items():
                result.bundles[(workload, context, scale, warmup)] = bundle

    # -- prefetch -------------------------------------------------------- #
    for stage in plan.by_kind("prefetch"):
        factory = PREFETCHERS.get(stage.params["prefetcher"])
        bundle = result.bundles[(stage.params["workload"],
                                 stage.params["context"],
                                 stage.params["scale"],
                                 stage.params["warmup"])]
        result.coverage[(stage.params["prefetcher"],
                         stage.params["workload"], stage.params["context"],
                         stage.params["scale"], stage.params["warmup"])] = \
            evaluate_coverage(factory(), bundle.miss_trace)
        result.statuses[stage.key] = "ran"

    # -- render ---------------------------------------------------------- #
    for stage in plan.by_kind("render"):
        adapter = ANALYSES.get(stage.params["analysis"])
        name = stage.key[len("render:"):]
        result.artifacts[name] = adapter(
            session=session, spec=spec, scale=stage.params["scale"],
            warmup_fraction=stage.params["warmup"])
        result.statuses[stage.key] = "ran"
    return result
