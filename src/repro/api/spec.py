"""Declarative experiment plans: :class:`ExperimentSpec`.

A spec describes a grid of evaluation cells —
``workloads x organisations x scales x warmups`` at one (size, seed) — plus
the prefetcher models to evaluate on each cell's miss traces and the
analyses (figures, tables, ablations) to render from the grid.  It is plain
data: loadable from a dict or a TOML file, hashable into cache keys by the
stores, and resolvable into an explicit stage DAG by
:meth:`repro.api.session.Session.plan`.

TOML example::

    name = "paper-grid"
    size = "small"
    seed = 42
    workloads = ["Apache", "OLTP", "Qry1"]
    organisations = ["multi-chip", "single-chip"]
    scales = [64]
    warmups = [0.25]
    prefetchers = ["temporal", "stride"]
    analyses = ["figure2", "table1"]

Validation is collected, not fail-fast: :meth:`ExperimentSpec.validate`
returns *every* problem (unknown workload, unregistered analysis, bad
warm-up fraction, ...) so a spec file can be fixed in one pass;
:meth:`ensure_valid` raises :class:`SpecError` with the full list.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Tuple

from .registry import ANALYSES, PREFETCHERS, SYSTEMS, WORKLOADS

#: Work-volume presets accepted by every workload generator.
SIZE_NAMES = ("tiny", "small", "default", "large")


class SpecError(ValueError):
    """A spec failed validation; ``errors`` holds every problem found."""

    def __init__(self, errors: List[str]) -> None:
        self.errors = list(errors)
        super().__init__("invalid experiment spec:\n  - "
                         + "\n  - ".join(self.errors))


class Cell(NamedTuple):
    """One grid cell: a single simulation configuration."""

    workload: str
    organisation: str
    scale: int
    warmup: float


def _str_tuple(value: Any) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(str(v) for v in value)


def _num_tuple(value: Any, cast) -> Tuple:
    if isinstance(value, (int, float)):
        return (cast(value),)
    return tuple(cast(v) for v in value)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative description of one experiment grid."""

    name: str = "experiment"
    workloads: Tuple[str, ...] = ()
    organisations: Tuple[str, ...] = ()
    size: str = "small"
    seed: int = 42
    scales: Tuple[int, ...] = ()
    warmups: Tuple[float, ...] = ()
    prefetchers: Tuple[str, ...] = ()
    analyses: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from plain data (e.g. parsed TOML/JSON).

        Scalar values are accepted where a list is expected (``workloads =
        "Apache"``); unknown keys are an error so typos cannot silently
        drop an axis of the grid.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                [f"unknown key {key!r} (known keys: "
                 f"{', '.join(sorted(known))})" for key in unknown])
        kwargs: Dict[str, Any] = {}
        errors: List[str] = []
        converters = {
            "name": str, "size": str, "seed": int,
            "workloads": _str_tuple, "organisations": _str_tuple,
            "prefetchers": _str_tuple, "analyses": _str_tuple,
            "scales": lambda v: _num_tuple(v, int),
            "warmups": lambda v: _num_tuple(v, float),
        }
        for key, value in data.items():
            try:
                kwargs[key] = converters[key](value)
            except (TypeError, ValueError) as exc:
                errors.append(f"bad value for {key!r}: {exc}")
        if errors:
            raise SpecError(errors)
        return cls(**kwargs)

    @classmethod
    def from_toml(cls, path) -> "ExperimentSpec":
        """Load a spec from a TOML file (requires Python 3.11+ ``tomllib``)."""
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11; no third-party fallback
            raise SpecError(
                [f"TOML specs need the stdlib tomllib (Python 3.11+): {exc}; "
                 f"build the spec with ExperimentSpec.from_dict instead"])
        try:
            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError([f"TOML parse error in {path}: {exc}"])
        spec = cls.from_dict(data)
        if "name" not in data:
            spec = replace(spec, name=Path(path).stem)
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        return {f.name: (list(value) if isinstance(
                    value := getattr(self, f.name), tuple) else value)
                for f in fields(self)}

    # ------------------------------------------------------------------ #
    # defaults and the grid
    # ------------------------------------------------------------------ #
    def resolved(self) -> "ExperimentSpec":
        """A copy with empty axes filled with registry defaults and every
        registry name canonicalised.

        Aliases (``db2`` -> ``OLTP``, ``multichip`` -> ``multi-chip``, ...)
        are resolved here so plans, suite sweeps, and result keys all use
        one spelling per entry; unknown names are left as-is for
        :meth:`validate` to report.
        """
        from ..experiments.runner import DEFAULT_WARMUP_FRACTION
        from ..mem.config import DEFAULT_SCALE
        from ..workloads import WORKLOAD_NAMES  # populates WORKLOADS
        import repro.experiments  # noqa: F401  (populates ANALYSES)
        import repro.prefetch  # noqa: F401  (populates PREFETCHERS)

        def canonical(names, registry):
            return tuple(registry.canonical(name) or name for name in names)

        return replace(
            self,
            workloads=canonical(self.workloads, WORKLOADS) or WORKLOAD_NAMES,
            organisations=(canonical(self.organisations, SYSTEMS)
                           or SYSTEMS.names()),
            prefetchers=canonical(self.prefetchers, PREFETCHERS),
            analyses=canonical(self.analyses, ANALYSES),
            scales=self.scales or (DEFAULT_SCALE,),
            warmups=self.warmups or (DEFAULT_WARMUP_FRACTION,))

    def cells(self) -> List[Cell]:
        """Every (workload, organisation, scale, warmup) cell of the grid."""
        spec = self.resolved()
        return [Cell(workload, organisation, scale, warmup)
                for scale in spec.scales
                for warmup in spec.warmups
                for workload in spec.workloads
                for organisation in spec.organisations]

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> List[str]:
        """Every problem with this spec (empty list when valid)."""
        # Importing the feature packages populates their registries.
        import repro.experiments  # noqa: F401
        import repro.prefetch  # noqa: F401
        import repro.workloads  # noqa: F401

        errors: List[str] = []

        def check(names: Iterable[str], registry, axis: str) -> None:
            for name in names:
                if name not in registry:
                    errors.append(
                        f"{axis}: unknown {registry.kind} {name!r} "
                        f"(available: {', '.join(registry.names())})")

        check(self.workloads, WORKLOADS, "workloads")
        check(self.organisations, SYSTEMS, "organisations")
        check(self.prefetchers, PREFETCHERS, "prefetchers")
        check(self.analyses, ANALYSES, "analyses")
        if self.size not in SIZE_NAMES:
            errors.append(f"size: unknown preset {self.size!r} "
                          f"(one of {', '.join(SIZE_NAMES)})")
        if not isinstance(self.seed, int):
            errors.append(f"seed: expected an integer, got {self.seed!r}")
        for scale in self.scales:
            if scale < 1:
                errors.append(f"scales: scale must be >= 1, got {scale}")
        # The runner clamps warm-up fractions to [0, 0.9]; a spec value
        # outside that range would silently collapse onto the clamp bound
        # (and onto any other clamped cell), so reject it here instead.
        from ..experiments.runner import clamp_warmup_fraction
        for warmup in self.warmups:
            if clamp_warmup_fraction(warmup) != warmup:
                errors.append(
                    f"warmups: fraction must be in [0, 0.9], got {warmup}")
        registries = {"workloads": WORKLOADS, "organisations": SYSTEMS,
                      "prefetchers": PREFETCHERS, "analyses": ANALYSES}
        for axis, registry in registries.items():
            values = getattr(self, axis)
            # Compare canonicalised names so an alias duplicating its
            # canonical entry ("multi-chip", "multichip") is caught too.
            canonical = [registry.canonical(name) or name for name in values]
            if len(set(canonical)) != len(canonical):
                errors.append(f"{axis}: duplicate entries in {values}")
        return errors

    def ensure_valid(self) -> "ExperimentSpec":
        """Raise :class:`SpecError` listing every problem; returns ``self``."""
        errors = self.validate()
        if errors:
            raise SpecError(errors)
        return self

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        spec = self.resolved()
        n_cells = len(spec.cells())
        return (f"spec {spec.name!r}: {len(spec.workloads)} workload(s) x "
                f"{len(spec.organisations)} organisation(s) x "
                f"{len(spec.scales)} scale(s) x {len(spec.warmups)} "
                f"warmup(s) = {n_cells} cell(s) at size={spec.size} "
                f"seed={spec.seed}; prefetchers="
                f"[{', '.join(spec.prefetchers) or '-'}], analyses="
                f"[{', '.join(spec.analyses) or '-'}]")
