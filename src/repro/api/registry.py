"""Plugin registries for workloads, systems, prefetchers, and analyses.

The paper's evaluation is a grid of (workload x memory-system context x
analysis) cells.  Historically each axis was hard-coded at its call sites —
``create_workload`` was an if/elif chain, ``_build_system`` knew both
organisations by name, and the figure modules were reachable only through
their own functions.  The registries here make every axis *pluggable*: a new
workload, system organisation, prefetcher, or analysis registers itself with
a decorator and is immediately usable from :class:`~repro.api.spec.ExperimentSpec`,
:meth:`~repro.api.session.Session.plan`, and the CLI, without edits to core.

This module is deliberately dependency-free (no imports from the rest of the
package) so any layer may register entries without risking import cycles.

Usage::

    from repro.api.registry import register_workload

    @register_workload("MyBench", aliases=("mybench",))
    def _my_bench(n_cpus, seed=42, size="default"):
        return MyBenchWorkload(n_cpus=n_cpus, seed=seed, size=size)

Lookups are case-insensitive over canonical names and aliases; registering a
name (or alias) twice raises ``ValueError``, and looking up an unknown name
raises ``KeyError`` listing the available entries.

Beyond fixed names, a registry can host whole *families* of entries through
:meth:`Registry.register_prefix`: a handler owns every name starting with a
prefix (``fuzz:``, ``import:``) and derives an entry from the suffix at
lookup time.  The trace-ingest subsystem uses this so ``workload =
"fuzz:Apache+OLTP,drift=0.3"`` or ``"import:memcached"`` resolve through the
same :data:`WORKLOADS` registry as the six paper workloads — specs, plans,
and the CLI need no special cases.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


def _normalize(name: str) -> str:
    return name.strip().lower()


class Registry:
    """A named mapping of plugin entries with alias and decorator support."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        #: canonical name -> registered object, in registration order.
        self._entries: Dict[str, Any] = {}
        #: normalized name/alias -> canonical name.
        self._lookup: Dict[str, str] = {}
        #: normalized prefix -> (canonical prefix, handler, placeholder).
        self._prefixes: Dict[str, Tuple[str, Callable, str]] = {}

    # ------------------------------------------------------------------ #
    def register(self, name: str, obj: Any,
                 aliases: Tuple[str, ...] = ()) -> Any:
        """Register ``obj`` under ``name`` (plus ``aliases``); returns ``obj``.

        Raises ``ValueError`` when the name or any alias — compared
        case-insensitively — is already taken, so two plugins can never
        silently shadow each other.
        """
        for candidate in (name, *aliases):
            taken = self._lookup.get(_normalize(candidate))
            if taken is not None:
                raise ValueError(
                    f"duplicate {self.kind} name {candidate!r}: already "
                    f"registered as {taken!r}")
        self._entries[name] = obj
        for candidate in (name, *aliases):
            self._lookup[_normalize(candidate)] = name
        return obj

    def decorator(self, name: str,
                  aliases: Tuple[str, ...] = ()) -> Callable[[Any], Any]:
        """``@registry.decorator("name")`` — register and return unchanged."""
        def _register(obj: Any) -> Any:
            return self.register(name, obj, aliases=tuple(aliases))
        return _register

    def register_prefix(self, prefix: str, handler: Callable,
                        placeholder: Optional[str] = None) -> Callable:
        """Register a ``handler`` owning every name starting with ``prefix``.

        ``handler(suffix)`` is called with the part after the prefix and
        must return ``(canonical_suffix, entry)`` when the suffix is valid,
        or ``None`` to reject it (the name then resolves like any unknown
        name).  The canonical name of a prefixed entry is
        ``prefix + canonical_suffix``, so aliases inside the suffix (e.g.
        fuzz-recipe base-workload aliases) normalise to one spelling.

        ``placeholder`` is the human-readable form shown in "available:"
        listings (default ``<prefix>...``).  Prefixes are matched
        case-insensitively; registering the same prefix twice raises
        ``ValueError``.  Returns ``handler`` so it can be used as a
        decorator.
        """
        key = _normalize(prefix)
        if key in self._prefixes:
            raise ValueError(
                f"duplicate {self.kind} prefix {prefix!r}")
        self._prefixes[key] = (prefix, handler,
                               placeholder or f"{prefix}...")
        return handler

    def _resolve_prefixed(self, name: str) -> Optional[Tuple[str, Any]]:
        """(canonical name, entry) via a prefix handler, or ``None``."""
        normalized = _normalize(name)
        for key, (prefix, handler, _) in self._prefixes.items():
            if not normalized.startswith(key):
                continue
            resolved = handler(name.strip()[len(prefix):])
            if resolved is not None:
                canonical_suffix, entry = resolved
                return prefix + canonical_suffix, entry
        return None

    # ------------------------------------------------------------------ #
    def canonical(self, name: str) -> Optional[str]:
        """The canonical name ``name`` resolves to, or ``None``."""
        exact = self._lookup.get(_normalize(name))
        if exact is not None:
            return exact
        prefixed = self._resolve_prefixed(name)
        return prefixed[0] if prefixed is not None else None

    def get(self, name: str) -> Any:
        """The registered entry for ``name`` (canonical or alias).

        Raises ``KeyError`` whose message lists the available entries, so a
        typo in a spec or on the command line is self-diagnosing.
        """
        canonical = self._lookup.get(_normalize(name))
        if canonical is not None:
            return self._entries[canonical]
        prefixed = self._resolve_prefixed(name)
        if prefixed is not None:
            return prefixed[1]
        available = self.names() + tuple(
            placeholder for _, _, placeholder in self._prefixes.values())
        raise KeyError(
            f"unknown {self.kind} {name!r}; available: "
            f"{', '.join(available) or '(none registered)'}")

    def names(self) -> Tuple[str, ...]:
        """Canonical names in registration order (prefix families excluded)."""
        return tuple(self._entries)

    def prefixes(self) -> Tuple[str, ...]:
        """Registered name prefixes in registration order."""
        return tuple(prefix for prefix, _, _ in self._prefixes.values())

    def items(self) -> List[Tuple[str, Any]]:
        return list(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self._entries)})"


#: Workload factories: ``factory(n_cpus, seed, size) -> Workload``.
WORKLOADS = Registry("workload")

#: System-organisation factories: ``factory(scale) -> system model``, with
#: ``.n_cpus`` and ``.contexts`` attributes describing the organisation.
SYSTEMS = Registry("system")

#: Prefetcher classes/factories: ``factory(**kwargs) -> Prefetcher``.
PREFETCHERS = Registry("prefetcher")

#: Analysis adapters: ``fn(session, spec, scale, warmup_fraction) -> artifact``
#: where the artifact renders via ``.render()`` (or ``str``).
ANALYSES = Registry("analysis")

#: Execution backends: ``factory(max_workers=None) -> Executor`` (see
#: :mod:`repro.api.executor` for the protocol and the built-in four).
EXECUTORS = Registry("executor")


def register_workload(name: str, aliases: Tuple[str, ...] = ()):
    """Class/function decorator adding a workload factory to :data:`WORKLOADS`."""
    return WORKLOADS.decorator(name, aliases=aliases)


def register_system(name: str, aliases: Tuple[str, ...] = ()):
    """Decorator adding a system-organisation factory to :data:`SYSTEMS`."""
    return SYSTEMS.decorator(name, aliases=aliases)


def register_prefetcher(name: str, aliases: Tuple[str, ...] = ()):
    """Decorator adding a prefetcher model to :data:`PREFETCHERS`."""
    return PREFETCHERS.decorator(name, aliases=aliases)


def register_analysis(name: str, aliases: Tuple[str, ...] = ()):
    """Decorator adding an analysis adapter to :data:`ANALYSES`."""
    return ANALYSES.decorator(name, aliases=aliases)


def register_executor(name: str, aliases: Tuple[str, ...] = ()):
    """Decorator adding an execution backend to :data:`EXECUTORS`."""
    return EXECUTORS.decorator(name, aliases=aliases)
