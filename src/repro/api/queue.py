"""The dispatch work queue: leased JSON work items under ``<cache>/dispatch/``.

PR 5's dispatch backend wrote work items nothing ever *claimed*: two
processes pointed at one cache root could both execute the same item, and a
worker that died mid-item left it stranded forever.  This module turns the
dispatch directory into a real queue with bilateral hand-offs:

* **Atomic claim** — a worker takes an item by creating
  ``claim-NNNN-<kind>.json`` next to it with ``O_CREAT | O_EXCL``; exactly
  one creator wins, so double execution is impossible.
* **Lease + heartbeat** — the claim records a deadline; the executing
  worker renews it (atomic ``os.replace`` of the claim file) while the
  stage runs, so a slow item is distinguishable from a dead worker.
* **Requeue on expiry** — an item whose claim deadline has passed is
  stealable: the stealer atomically renames the dead claim away (single
  winner) and re-claims with an incremented attempt counter.  Re-execution
  is safe because every stage writes through the content-addressed stores
  and the ``done`` receipt is finalised at most once.
* **Corruption policy** — a truncated/corrupt item, claim, or receipt JSON
  warns and is treated as absent (matching the warn-and-drop policy of the
  result/trace/checkpoint stores) instead of raising ``JSONDecodeError``
  into a worker or the scheduler.

Layout, per plan run (``<root>`` is ``<cache>/dispatch``)::

    <root>/<run>/item-0001-capture.json        the work item
    <root>/<run>/claim-0001-capture.json       lease: worker/deadline/attempt
    <root>/<run>/item-0001-capture.done.json   receipt (kept as audit trail)
    <root>/<run>/executed.log                  append-only execution audit
    <root>/workers/worker-<id>.json            worker heartbeat/status records

A :class:`WorkQueue` rooted at ``<cache>/dispatch`` spans every run
directory (the fleet view a ``repro worker`` daemon polls); rooted at one
run directory it covers just that plan (the embedded stand-in fleet the
dispatch executor spawns).
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..cachedir import default_cache_root

#: Directory under the cache root holding work items (one subdir per run).
QUEUE_DIR_NAME = "dispatch"

#: Subdirectory of the dispatch root where workers publish heartbeat records.
WORKERS_DIR_NAME = "workers"

#: Seconds a claim stays valid without a heartbeat (override per queue).
LEASE_ENV = "REPRO_LEASE_SECONDS"
DEFAULT_LEASE_SECONDS = 60.0

#: Seconds between heartbeat renewals while a worker executes an item.
HEARTBEAT_ENV = "REPRO_HEARTBEAT_SECONDS"

#: Seconds a polling worker sleeps when the queue is empty.
POLL_ENV = "REPRO_WORKER_POLL_SECONDS"
DEFAULT_POLL_SECONDS = 0.5


def lease_seconds_default() -> float:
    """The configured lease duration (``REPRO_LEASE_SECONDS`` or 60s)."""
    try:
        value = float(os.environ.get(LEASE_ENV, DEFAULT_LEASE_SECONDS))
    except ValueError:
        return DEFAULT_LEASE_SECONDS
    return value if value > 0 else DEFAULT_LEASE_SECONDS


def heartbeat_seconds_default(lease_seconds: float) -> float:
    """Heartbeat cadence: ``REPRO_HEARTBEAT_SECONDS`` or a third of the lease."""
    try:
        value = float(os.environ.get(HEARTBEAT_ENV, 0) or 0)
    except ValueError:
        value = 0
    return value if value > 0 else max(lease_seconds / 3.0, 0.05)


def queue_root(cache_dir: Optional[os.PathLike] = None) -> Path:
    """The dispatch queue directory under ``cache_dir`` (or the default root)."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_root()
    return root / QUEUE_DIR_NAME


def iso_utc(unix: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp for audit-trail entries (``executed.log``).

    Second precision with a ``Z`` suffix — lexically sortable and directly
    comparable with the telemetry manifests, which use the same rendering
    (:func:`repro.obs.store.iso_utc`, re-exported here so queue/worker code
    has a local name for it).
    """
    from ..obs.store import iso_utc as _iso_utc
    return _iso_utc(unix)


def claim_path_for(item_path: os.PathLike) -> Path:
    """The lease file guarding ``item-NNNN-<kind>.json``."""
    item_path = Path(item_path)
    return item_path.with_name(
        item_path.name.replace("item-", "claim-", 1))


def done_path_for(item_path: os.PathLike) -> Path:
    """The receipt file acknowledging ``item-NNNN-<kind>.json``."""
    item_path = Path(item_path)
    return item_path.with_name(item_path.name[:-len(".json")] + ".done.json")


def write_json_atomic(path: os.PathLike, data: Dict[str, Any]) -> Path:
    """Write ``data`` as JSON via a temp file + ``os.replace``."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_json(path: os.PathLike,
              kind: str = "dispatch file") -> Optional[Dict[str, Any]]:
    """Parse a queue JSON file; warn and return ``None`` when unreadable.

    The queue's analogue of the stores' warn-and-drop policy: a truncated
    or corrupt file is treated as absent (so the item gets requeued or the
    claim stolen) rather than raising ``JSONDecodeError`` out of a worker
    or the scheduler.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        warnings.warn(
            f"unreadable {kind} {path} ({type(exc).__name__}: {exc}); "
            f"treating it as absent so the work is requeued",
            RuntimeWarning, stacklevel=2)
        return None


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class Lease:
    """A held claim on one work item; renew it while the stage executes."""

    def __init__(self, queue: "WorkQueue", item_path: Path, worker_id: str,
                 lease_seconds: float, attempt: int) -> None:
        self.queue = queue
        self.item_path = Path(item_path)
        self.claim_path = claim_path_for(item_path)
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.attempt = attempt
        self.deadline = 0.0

    def payload(self) -> Dict[str, Any]:
        return {"worker": self.worker_id, "deadline": self.deadline,
                "lease_seconds": self.lease_seconds, "attempt": self.attempt}

    def heartbeat(self) -> None:
        """Extend the deadline by one lease period (atomic claim rewrite)."""
        self.deadline = time.time() + self.lease_seconds
        write_json_atomic(self.claim_path, self.payload())

    def release(self) -> None:
        """Drop the claim (idempotent; the receipt, if any, stays)."""
        try:
            os.unlink(self.claim_path)
        except OSError:
            pass

    @property
    def expired(self) -> bool:
        return time.time() > self.deadline


class WorkQueue:
    """Claim/lease/receipt protocol over a dispatch directory.

    ``root`` may be the whole ``<cache>/dispatch`` directory (fleet view:
    items in every run subdirectory) or a single run directory (one plan's
    items).  All mutations are single-file atomic operations, so any number
    of workers on any number of hosts sharing the filesystem may poll one
    queue.
    """

    def __init__(self, root: os.PathLike,
                 lease_seconds: Optional[float] = None) -> None:
        self.root = Path(root)
        self.lease_seconds = (lease_seconds if lease_seconds is not None
                              else lease_seconds_default())

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def item_files(self) -> List[Path]:
        """Every work-item file under the root, in stable order."""
        if not self.root.is_dir():
            return []
        found = list(self.root.glob("item-*.json"))
        found += self.root.glob("*/item-*.json")
        return sorted(p for p in found
                      if not p.name.endswith(".done.json") and p.is_file())

    def pending(self) -> List[Path]:
        """Items with no receipt yet (claimed or not)."""
        return [p for p in self.item_files()
                if not done_path_for(p).exists()]

    def claimable(self) -> List[Path]:
        """Pending items with no live (unexpired) claim."""
        now = time.time()
        out = []
        for item in self.pending():
            claim = load_json(claim_path_for(item), kind="dispatch claim") \
                if claim_path_for(item).exists() else None
            if claim is None or float(claim.get("deadline", 0)) <= now:
                out.append(item)
        return out

    # ------------------------------------------------------------------ #
    # the claim protocol
    # ------------------------------------------------------------------ #
    def try_claim(self, item_path: os.PathLike, worker_id: str,
                  lease_seconds: Optional[float] = None) -> Optional[Lease]:
        """Atomically claim one item; ``None`` if someone else holds it.

        A live claim blocks the attempt.  An *expired* (or corrupt) claim
        is stolen: the dead claim is renamed away — ``os.rename`` of an
        existing file has exactly one winner — and a fresh claim is created
        with ``O_CREAT | O_EXCL``, which again has exactly one winner, so an
        item can never be executing under two live leases at once.
        """
        item_path = Path(item_path)
        if done_path_for(item_path).exists():
            return None
        cpath = claim_path_for(item_path)
        attempt = 1
        if cpath.exists():
            stale = load_json(cpath, kind="dispatch claim")
            if stale is not None and \
                    float(stale.get("deadline", 0)) > time.time():
                return None  # live lease held elsewhere
            # Steal: rename the dead claim aside (single winner), then
            # compete for a fresh claim below.
            tomb = cpath.with_name(
                f"{cpath.name}.expired-{uuid.uuid4().hex[:8]}")
            try:
                os.rename(cpath, tomb)
            except OSError:
                return None  # another stealer won the rename
            try:
                os.unlink(tomb)
            except OSError:
                pass
            if stale is not None:
                attempt = int(stale.get("attempt", 0)) + 1
        lease = Lease(self, item_path,  worker_id,
                      (lease_seconds if lease_seconds is not None
                       else self.lease_seconds), attempt)
        lease.deadline = time.time() + lease.lease_seconds
        # Publish the claim atomically: write the payload to a private temp
        # file, then hard-link it into place.  ``os.link`` fails with EEXIST
        # when a claim already exists (exactly one winner, like O_EXCL) but,
        # unlike create-then-write, never exposes a half-written claim that
        # a concurrent scanner would misread as corrupt and steal while this
        # lease is live.
        tmp = cpath.with_name(
            f"{cpath.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(lease.payload(), fh, indent=2)
            os.link(tmp, cpath)
        except FileExistsError:
            return None  # lost the race to another claimer
        except FileNotFoundError:
            return None  # run directory cleared underneath us
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return lease

    def finalize(self, lease: Lease, receipt: Dict[str, Any]) -> Path:
        """Write the item's receipt (first finaliser wins) and release.

        An already-present ``done`` marker is a no-op — the receipt of the
        first finaliser stands, so a stolen-then-completed item and its
        original (slow but alive) worker cannot flap the receipt.
        """
        done = done_path_for(lease.item_path)
        if not done.exists():
            write_json_atomic(done, receipt)
        lease.release()
        return done

    def requeue(self, item_path: os.PathLike, reason: str) -> None:
        """Drop an item's receipt and claim so workers pick it up again."""
        item_path = Path(item_path)
        warnings.warn(
            f"requeueing dispatch item {item_path.name}: {reason}",
            RuntimeWarning, stacklevel=2)
        for path in (done_path_for(item_path), claim_path_for(item_path)):
            try:
                os.unlink(path)
            except OSError:
                pass

    def quarantine(self, item_path: os.PathLike) -> Optional[Path]:
        """Move an unreadable item aside so workers stop re-claiming it.

        The submitter (which still holds the stage) notices the item file
        vanished without a receipt and re-enqueues a fresh copy.
        """
        item_path = Path(item_path)
        target = item_path.with_name(
            f"{item_path.name}.corrupt-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(item_path, target)
        except OSError:
            return None
        return target

    # ------------------------------------------------------------------ #
    # worker heartbeat records (fleet health)
    # ------------------------------------------------------------------ #
    def workers_dir(self) -> Path:
        """Where this queue's workers publish their heartbeat records.

        One shared directory per dispatch tree: a queue rooted at a single
        run directory (an embedded stand-in fleet) publishes into its
        parent's ``workers/`` so ``GET /workers`` and ``repro queue
        status`` see embedded and external workers alike.
        """
        if self.root.name != QUEUE_DIR_NAME \
                and self.root.parent.name == QUEUE_DIR_NAME:
            return self.root.parent / WORKERS_DIR_NAME
        return self.root / WORKERS_DIR_NAME

    def worker_record_path(self, worker_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in ".-_" else "_"
                       for c in worker_id)
        return self.workers_dir() / f"worker-{safe}.json"

    def publish_worker(self, record: Dict[str, Any]) -> Optional[Path]:
        """Atomically publish one worker's heartbeat/status record.

        Best-effort: health reporting must never take a worker down, so
        filesystem trouble returns ``None`` instead of raising.
        """
        worker_id = str(record.get("worker") or "")
        if not worker_id:
            return None
        try:
            path = self.worker_record_path(worker_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            return write_json_atomic(path, record)
        except OSError:
            return None

    def worker_records(self) -> List[Dict[str, Any]]:
        """Every parseable worker record (corrupt ones warn-and-skip)."""
        workers_dir = self.workers_dir()
        if not workers_dir.is_dir():
            return []
        records = []
        for path in sorted(workers_dir.glob("worker-*.json")):
            record = load_json(path, kind="worker record")
            if isinstance(record, dict) and record.get("worker"):
                records.append(record)
        return records

    def fleet_status(self) -> Dict[str, Any]:
        """The live health view: workers, held leases, and queue depth.

        Everything ``GET /workers`` serves and ``repro queue status``
        renders offline comes from here: per-worker liveness (a worker is
        ``alive`` while its record is fresher than a few heartbeat
        periods and it has not announced ``stopped``), per-item lease
        ages and attempt counts, and pending-depth/oldest-item age.
        """
        now = time.time()
        workers = []
        for record in self.worker_records():
            updated = float(record.get("updated_at") or 0.0)
            heartbeat = float(record.get("heartbeat_seconds") or 0.0)
            age = max(now - updated, 0.0) if updated else None
            tolerance = max(3.0 * heartbeat, 5.0)
            alive = (record.get("status") != "stopped"
                     and age is not None and age <= tolerance)
            workers.append({
                "worker": record.get("worker"),
                "host": record.get("host"),
                "pid": record.get("pid"),
                "status": record.get("status"),
                "item": record.get("item"),
                "age_s": round(age, 3) if age is not None else None,
                "alive": alive,
                "executed": int(record.get("executed") or 0),
                "cached": int(record.get("cached") or 0),
                "failed": int(record.get("failed") or 0),
                "steals": int(record.get("steals") or 0),
                "quarantined": int(record.get("quarantined") or 0),
            })
        leases = []
        oldest_pending: Optional[float] = None
        for item in self.pending():
            try:
                age = max(now - item.stat().st_mtime, 0.0)
            except OSError:
                age = None
            if age is not None:
                oldest_pending = max(oldest_pending or 0.0, age)
            cpath = claim_path_for(item)
            claim = load_json(cpath, kind="dispatch claim") \
                if cpath.exists() else None
            if claim is None:
                continue
            deadline = float(claim.get("deadline", 0.0))
            leases.append({
                "item": item.name,
                "run": item.parent.name if item.parent != self.root else "",
                "worker": claim.get("worker"),
                "attempt": int(claim.get("attempt", 1)),
                "lease_seconds": float(claim.get("lease_seconds", 0.0)),
                "remaining_s": round(deadline - now, 3),
                "expired": deadline <= now,
            })
        stats = self.stats()
        return {"workers": workers, "leases": leases,
                "queue": {**stats,
                          "oldest_pending_s":
                              round(oldest_pending, 3)
                              if oldest_pending is not None else None}}

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Item counts by state plus the number of run directories."""
        items = self.item_files()
        now = time.time()
        done = leased = 0
        for item in items:
            if done_path_for(item).exists():
                done += 1
                continue
            claim = load_json(claim_path_for(item), kind="dispatch claim") \
                if claim_path_for(item).exists() else None
            if claim is not None and float(claim.get("deadline", 0)) > now:
                leased += 1
        runs = len([d for d in self.root.iterdir()
                    if d.is_dir() and d.name != WORKERS_DIR_NAME]) \
            if self.root.is_dir() else 0
        return {"runs": runs, "items": len(items), "done": done,
                "leased": leased, "pending": len(items) - done - leased}

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*")
                   if p.is_file())

    def describe(self) -> str:
        s = self.stats()
        return (f"dispatch queue {self.root}: {s['items']} work item"
                f"{'' if s['items'] == 1 else 's'} across {s['runs']} run"
                f"{'' if s['runs'] == 1 else 's'} ({s['pending']} pending, "
                f"{s['leased']} leased, {s['done']} done), "
                f"{self.size_bytes() / 1024:.1f} KiB")

    def clear(self) -> int:
        """Remove every run directory under the root; returns #work items."""
        removed = len(self.item_files())
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                else:
                    try:
                        child.unlink()
                    except OSError:
                        pass
        return removed
