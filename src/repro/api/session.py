"""The :class:`Session` facade: one object owning stores and policy.

Before this module existed, every entry point reached the persistence layer
through module-level singletons (``get_trace_store()``,
``get_checkpoint_store()``, ``runner.get_store()``) and threaded five policy
flags (``streaming``/``replay``/``checkpoint``/``resume``/``cache_dir``)
through each call.  A :class:`Session` bundles all of that:

* the **cache root** (explicit, or resolved from ``REPRO_CACHE_DIR`` at
  access time so environment changes — e.g. test isolation — keep working),
* the three **stores** (analysis bundles, captured traces, checkpoints),
* the **parallelism policy** (``max_workers``) and the pipeline policy
  flags.

The legacy singletons remain as thin delegates to the process-wide *default
session* (:func:`get_default_session`), so existing call sites keep their
behaviour while new code composes sessions explicitly::

    from repro.api import Session

    session = Session(cache_dir="/tmp/cache", max_workers=4)
    result = session.run("Apache", "multi-chip", size="small")
    plan = session.plan(spec)        # declarative grid -> stage DAG
    outcome = plan.run(session)

Store accessors return ``None`` when ``REPRO_DISABLE_DISK_CACHE`` is set,
mirroring the singletons they replace.  Store objects are constructed per
access — they are cheap path holders — so a session never caches a stale
root.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from ..cachedir import default_cache_root, disk_cache_disabled

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from ..checkpoint.store import CheckpointStore
    from ..experiments.parallel import ParallelSuiteRunner
    from ..experiments.runner import ContextResult
    from ..experiments.store import ResultStore
    from ..trace.store import TraceStore
    from .plan import Plan, PlanResult
    from .spec import ExperimentSpec

#: Sentinel distinguishing "not passed" from an explicit ``None`` override.
_UNSET = object()


class Session:
    """Facade over the capture -> simulate -> analyze -> render pipeline.

    Parameters
    ----------
    cache_dir:
        Root for all three stores; ``None`` resolves ``REPRO_CACHE_DIR`` /
        ``~/.cache/repro`` at each access.
    max_workers:
        Process-pool width for suite sweeps and epoch-sharded simulation;
        ``None`` lets the executor pick (cpu count), ``1`` runs inline.
    streaming / replay / checkpoint / resume:
        Pipeline policy, with the same meaning as the historical per-call
        flags (see :mod:`repro.experiments.runner`).
    warm_start:
        Exploit shared-prefix checkpoints (:mod:`repro.checkpoint.prefix`):
        plans gain ``prefix`` stages that publish each cell group's shared
        simulation prefix once, and simulate runs restore the furthest
        prefix checkpoint inside their warm-up instead of recomputing it.
        Results are bit-identical either way; ``False`` disables both the
        planning and the restore side.
    executor:
        How plan stages execute: a name registered in
        :data:`repro.api.registry.EXECUTORS` (``serial``/``thread``/
        ``process``/``dispatch``), the string ``auto`` (pick serial /
        thread / process per plan from the observed replay/compute mix —
        see :func:`~repro.api.executor.choose_executor_name`), or an
        :class:`~repro.api.executor.Executor` instance.  ``serial`` (the
        default) keeps the historical one-stage-at-a-time semantics.
    dispatch_workers:
        The submit/attach policy of the ``dispatch`` backend: how many
        local worker processes a
        :class:`~repro.api.executor.DispatchExecutor` embeds.  ``None``
        (default) sizes a self-contained local fleet from ``max_workers``;
        ``0`` *submits only* — work items wait for external ``repro
        worker`` daemons attached to the same cache root (how ``repro
        serve`` shares one fleet across submitters).
    telemetry:
        Record per-stage spans and a run manifest under
        ``<cache>/telemetry/<run_id>/`` for every executed plan (default
        on; a no-op when disk caching is disabled).
    profile:
        Additionally wrap each stage in :mod:`cProfile`, dropping a
        per-stage ``.prof`` file into the run's telemetry directory
        (implies nothing about ``telemetry=False``: without telemetry
        there is no run directory, so nothing is profiled).
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 max_workers: Optional[int] = None, streaming: bool = True,
                 replay: bool = True, checkpoint: bool = True,
                 resume: bool = True, warm_start: bool = True,
                 executor: Any = "serial",
                 dispatch_workers: Optional[int] = None,
                 telemetry: bool = True, profile: bool = False) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if dispatch_workers is not None and dispatch_workers < 0:
            raise ValueError("dispatch_workers must be >= 0 "
                             "(0 = external fleet)")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.streaming = streaming
        self.replay = replay
        self.checkpoint = checkpoint
        self.resume = resume
        self.warm_start = warm_start
        self.executor = executor
        self.dispatch_workers = dispatch_workers
        self.telemetry = telemetry
        self.profile = profile

    # ------------------------------------------------------------------ #
    # roots and stores
    # ------------------------------------------------------------------ #
    @property
    def cache_root(self) -> Path:
        """The directory all three stores live under."""
        if self.cache_dir is not None:
            return Path(self.cache_dir).expanduser()
        return default_cache_root()

    @property
    def disk_cache_enabled(self) -> bool:
        return not disk_cache_disabled()

    @property
    def result_store(self) -> Optional["ResultStore"]:
        """The analysis-bundle store, or ``None`` when disk caching is off."""
        if not self.disk_cache_enabled:
            return None
        from ..experiments.store import ResultStore
        return ResultStore(self.cache_dir) if self.cache_dir else ResultStore()

    @property
    def trace_store(self) -> Optional["TraceStore"]:
        """The captured-access-trace store, or ``None`` when disk caching is off."""
        if not self.disk_cache_enabled:
            return None
        from ..trace.store import TraceStore
        return TraceStore(self.cache_dir) if self.cache_dir else TraceStore()

    @property
    def checkpoint_store(self) -> Optional["CheckpointStore"]:
        """The epoch-boundary snapshot store, or ``None`` when disk caching is off."""
        if not self.disk_cache_enabled:
            return None
        from ..checkpoint.store import CheckpointStore
        return (CheckpointStore(self.cache_dir) if self.cache_dir
                else CheckpointStore())

    @property
    def dispatch_queue(self):
        """The dispatch work queue, or ``None`` when disk caching is off."""
        if not self.disk_cache_enabled:
            return None
        from .queue import WorkQueue
        return WorkQueue(self.cache_root / "dispatch")

    @property
    def telemetry_store(self):
        """The per-run telemetry store, or ``None`` when disk caching is
        off or this session was built with ``telemetry=False``."""
        if not self.disk_cache_enabled or not self.telemetry:
            return None
        from ..obs.store import TelemetryStore
        return TelemetryStore(self.cache_dir)

    @property
    def run_index(self):
        """The sqlite run index, or ``None`` when disk caching is off."""
        if not self.disk_cache_enabled:
            return None
        from ..obs.index import RunIndex
        return RunIndex(self.cache_dir)

    # ------------------------------------------------------------------ #
    def with_options(self, cache_dir: Any = _UNSET,
                     max_workers: Any = _UNSET, streaming: Any = _UNSET,
                     replay: Any = _UNSET, checkpoint: Any = _UNSET,
                     resume: Any = _UNSET, warm_start: Any = _UNSET,
                     executor: Any = _UNSET,
                     dispatch_workers: Any = _UNSET,
                     telemetry: Any = _UNSET,
                     profile: Any = _UNSET) -> "Session":
        """A copy of this session with the given fields overridden."""
        return Session(
            cache_dir=self.cache_dir if cache_dir is _UNSET else cache_dir,
            max_workers=(self.max_workers if max_workers is _UNSET
                         else max_workers),
            streaming=self.streaming if streaming is _UNSET else streaming,
            replay=self.replay if replay is _UNSET else replay,
            checkpoint=self.checkpoint if checkpoint is _UNSET else checkpoint,
            resume=self.resume if resume is _UNSET else resume,
            warm_start=(self.warm_start if warm_start is _UNSET
                        else warm_start),
            executor=self.executor if executor is _UNSET else executor,
            dispatch_workers=(self.dispatch_workers
                              if dispatch_workers is _UNSET
                              else dispatch_workers),
            telemetry=self.telemetry if telemetry is _UNSET else telemetry,
            profile=self.profile if profile is _UNSET else profile)

    # ------------------------------------------------------------------ #
    # pipeline entry points
    # ------------------------------------------------------------------ #
    def run(self, workload: str, context: str, *, size: str = "small",
            seed: int = 42, scale: Optional[int] = None,
            warmup_fraction: Optional[float] = None) -> "ContextResult":
        """The full analysis bundle for one (workload, context) cell."""
        from ..experiments import runner
        return runner.run_context(
            workload, context, size=size, seed=seed,
            scale=runner.DEFAULT_SCALE if scale is None else scale,
            warmup_fraction=(runner.DEFAULT_WARMUP_FRACTION
                             if warmup_fraction is None else warmup_fraction),
            session=self)

    def run_all(self, workload: str, *, size: str = "small", seed: int = 42,
                scale: Optional[int] = None,
                warmup_fraction: Optional[float] = None
                ) -> Dict[str, "ContextResult"]:
        """All three contexts for one workload."""
        from ..mem.trace import ALL_CONTEXTS
        return {context: self.run(workload, context, size=size, seed=seed,
                                  scale=scale,
                                  warmup_fraction=warmup_fraction)
                for context in ALL_CONTEXTS}

    def suite(self, *, size: str = "small", seed: int = 42,
              scale: Optional[int] = None,
              warmup_fraction: Optional[float] = None,
              workloads: Optional[Tuple[str, ...]] = None,
              organisations: Optional[Tuple[str, ...]] = None,
              ) -> Dict[str, Dict[str, "ContextResult"]]:
        """The evaluation sweep over this session's process pool.

        Fans out per (workload, organisation) and — when a captured trace
        has boundary checkpoints — shards single simulations across epoch
        ranges (see :meth:`ParallelSuiteRunner.run_suite`).
        """
        from ..experiments import runner
        from ..workloads import WORKLOAD_NAMES
        return self.parallel_runner().run_suite(
            size=size, seed=seed,
            scale=runner.DEFAULT_SCALE if scale is None else scale,
            workloads=tuple(workloads) if workloads else WORKLOAD_NAMES,
            warmup_fraction=(runner.DEFAULT_WARMUP_FRACTION
                             if warmup_fraction is None else warmup_fraction),
            organisations=organisations)

    def parallel_runner(self) -> "ParallelSuiteRunner":
        """A :class:`ParallelSuiteRunner` configured from this session."""
        from ..experiments.parallel import ParallelSuiteRunner
        return ParallelSuiteRunner(
            max_workers=self.max_workers, streaming=self.streaming,
            cache_dir=self.cache_dir, replay=self.replay,
            checkpoint=self.checkpoint, resume=self.resume)

    # ------------------------------------------------------------------ #
    # declarative plans
    # ------------------------------------------------------------------ #
    def plan(self, spec: "ExperimentSpec") -> "Plan":
        """Resolve a declarative spec into an explicit stage DAG."""
        from .plan import build_plan
        return build_plan(spec, warm_starts=self.warm_start)

    def execute(self, spec_or_plan: Any, executor: Any = None,
                events: Any = None) -> "PlanResult":
        """Plan (if needed) and execute a spec; returns the plan outcome.

        ``executor`` overrides this session's execution backend for one
        call; ``events`` receives :class:`~repro.api.plan.PlanEvents`
        lifecycle callbacks as stages start/finish/fail.
        """
        from .plan import Plan
        plan = (spec_or_plan if isinstance(spec_or_plan, Plan)
                else self.plan(spec_or_plan))
        return plan.run(self, executor=executor, events=events)

    # ------------------------------------------------------------------ #
    def clear_caches(self, disk: bool = False) -> int:
        """Drop in-process memos; with ``disk`` also empty this root's stores.

        The disk clear covers all three stores, the dispatch work queue
        (work items, receipts, and run directories), the per-run telemetry
        directories, and the sqlite run index, so a full clear leaves no
        stale queue state for workers to pick up and no orphaned run
        history.
        """
        from ..experiments import runner
        runner._CACHE.clear()
        runner._TRACE_CACHE.clear()
        removed = 0
        if disk:
            from ..obs.store import TelemetryStore
            telemetry = (TelemetryStore(self.cache_dir)
                         if self.disk_cache_enabled else None)
            for store in (self.result_store, self.trace_store,
                          self.checkpoint_store, self.dispatch_queue,
                          telemetry, self.run_index):
                if store is not None:
                    removed += store.clear()
        return removed

    def describe(self) -> str:
        policy = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in ("streaming", "replay", "checkpoint", "resume",
                         "warm_start", "telemetry"))
        if self.profile:
            policy += ", profile=True"
        workers = ("auto" if self.max_workers is None else self.max_workers)
        backend = (self.executor if isinstance(self.executor, str)
                   else getattr(self.executor, "name", self.executor))
        fleet = ("" if self.dispatch_workers is None
                 else f", dispatch_workers={self.dispatch_workers}")
        return (f"session at {self.cache_root} (workers={workers}, "
                f"executor={backend}{fleet}, {policy}, "
                f"disk cache {'on' if self.disk_cache_enabled else 'off'})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Session {self.describe()}>"


#: The process-wide default session the legacy singletons delegate to.
_DEFAULT_SESSION: Optional[Session] = None


def get_default_session() -> Session:
    """The process-wide default :class:`Session` (created on first use)."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def set_default_session(session: Optional[Session]) -> Optional[Session]:
    """Replace the default session; returns the previous one.

    Passing ``None`` resets to a freshly-constructed default on next use.
    """
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous
