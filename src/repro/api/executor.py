"""Pluggable execution backends for stage-DAG plans.

A plan (:mod:`repro.api.plan`) is *what* runs — an explicit DAG of pipeline
stages.  An :class:`Executor` is *how* it runs: the event-driven scheduler in
:func:`~repro.api.plan.execute_plan` hands each *ready* stage (all
dependencies landed) to the backend and gets a
:class:`concurrent.futures.Future` back; everything about pools, processes,
and work-item serialisation lives behind that boundary.

Four backends ship, all registered in :data:`repro.api.registry.EXECUTORS`
(so ``Session(executor="process")``, ``--executor process``, and
``@register_executor`` all resolve through one namespace):

``serial``
    Runs every stage inline, in submission (topological) order — the
    reference semantics and the default.  Because it executes in the parent
    process, a simulate stage may still drop *below* stage granularity and
    epoch-shard itself over a process pool when boundary checkpoints exist
    (the historical ``ParallelSuiteRunner`` behaviour, now a stage-internal
    detail).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Stages share the
    parent's memo and stores directly; useful when stages are dominated by
    replay I/O or the vectorised numpy paths that release the GIL.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` — independent grid
    cells (and capture passes) genuinely overlap.  Workers write through the
    shared on-disk stores and return their payloads to the parent, exactly
    like the historical suite pool this backend absorbed.
``dispatch``
    The multi-host execution backend: each ready stage is serialised to a
    **leased JSON work item** under ``<cache>/dispatch/`` (see
    :mod:`repro.api.queue`), claimed atomically and executed by a worker
    that sees *only* that JSON plus the shared cache root, and acknowledged
    through a ``*.done.json`` receipt; the parent waits on queue state and
    then replays the stage's artifacts from the shared stores rather than
    receiving in-memory objects.  Workers are ``repro worker`` daemons on
    any host mounting the cache root (with an embedded local fleet as the
    default stand-in); a killed worker's leases expire and its items are
    requeued and retried idempotently.

The module-level :func:`run_stage` is the single worker entry point every
backend funnels through, so a stage computes the same payload no matter
where it runs — the backends are interchangeable by construction, and the
CI smoke job asserts bit-identical plan artifacts across all four.

Two submission levels:

* :meth:`Executor.submit` — one *stage*; the executor runs
  :func:`run_stage` wherever it sees fit and :meth:`Executor.finalize`
  turns the future's raw value into ``(status, payload)``.
* :meth:`Executor.submit_call` — one picklable ``fn(*args)``; the raw
  fan-out primitive :class:`~repro.experiments.parallel.ParallelSuiteRunner`
  uses for sub-stage work (per-epoch summaries, epoch-range shards).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from .registry import EXECUTORS, SYSTEMS, register_executor

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .plan import Plan, Stage
    from .session import Session

#: The names the built-in backends register under (CLI choices).
EXECUTOR_NAMES = ("serial", "thread", "process", "dispatch")


class ExecutorSetupError(RuntimeError):
    """A backend cannot run under the bound session's configuration.

    Distinct from plain ``RuntimeError`` so callers (e.g. the CLI) can
    report a configuration problem as a one-liner without also swallowing
    unrelated runtime failures like a broken worker pool.
    """

#: Stage kinds a backend executes; the scheduler runs the remaining kinds
#: (analyze/prefetch/render) inline because they are pure bookkeeping over
#: payloads it already holds.
BACKEND_KINDS = ("capture", "summarize", "prefix", "simulate")


def session_config(session: "Session", shard: bool = False) -> Dict[str, Any]:
    """The picklable/JSON-able policy a stage needs to run anywhere.

    ``shard`` marks that the stage executes in the parent process and may
    therefore open its own process pool for epoch-sharded simulation.
    """
    return {"cache_dir": session.cache_dir,
            "streaming": session.streaming,
            "replay": session.replay,
            "checkpoint": session.checkpoint,
            "resume": session.resume,
            "warm_start": bool(getattr(session, "warm_start", True)),
            "max_workers": session.max_workers,
            "shard": bool(shard),
            "profile": bool(getattr(session, "profile", False))}


def _config_session(config: Dict[str, Any]) -> "Session":
    from .session import Session
    return Session(cache_dir=config.get("cache_dir"),
                   streaming=config.get("streaming", True),
                   replay=config.get("replay", True),
                   checkpoint=config.get("checkpoint", True),
                   resume=config.get("resume", True),
                   warm_start=config.get("warm_start", True))


# --------------------------------------------------------------------------- #
# stage work functions (module-level so they pickle under fork and spawn)
# --------------------------------------------------------------------------- #
def _stage_capture(params: Dict[str, Any],
                   config: Dict[str, Any]) -> Tuple[str, None]:
    """Capture one workload access stream into the shared trace store."""
    from ..trace import get_trace_store, trace_params
    from ..workloads import create_workload
    store = (get_trace_store(config.get("cache_dir"))
             if config.get("replay", True) else None)
    if store is None:
        return "skipped", None
    key = trace_params(params["workload"], params["n_cpus"], params["seed"],
                       params["size"])
    if store.contains(key):
        return "cached", None
    accesses = create_workload(params["workload"], n_cpus=params["n_cpus"],
                               seed=params["seed"],
                               size=params["size"]).iter_accesses()
    for _ in store.capture(accesses, key):
        pass
    return "ran", None


def _stage_summarize(params: Dict[str, Any],
                     config: Dict[str, Any]) -> Tuple[str, Any]:
    """Counting pass over one captured stream; returns its EpochSummary."""
    from ..trace import get_trace_store, trace_params
    from ..trace.epoch import summarize_trace
    store = (get_trace_store(config.get("cache_dir"))
             if config.get("replay", True) else None)
    reader = (store.open(trace_params(params["workload"], params["n_cpus"],
                                      params["seed"], params["size"]))
              if store is not None else None)
    if reader is None:
        return "skipped", None
    if config.get("shard") and config.get("max_workers") != 1 \
            and reader.n_epochs > 1:
        # Stage-internal epoch sharding: only when this stage already runs
        # in the parent process (nesting pools inside workers is a hazard).
        from ..experiments.parallel import ParallelSuiteRunner
        runner = ParallelSuiteRunner(max_workers=config.get("max_workers"),
                                     cache_dir=config.get("cache_dir"))
        return "ran", runner.summarize_trace(reader)
    return "ran", summarize_trace(reader)


def _stage_prefix(params: Dict[str, Any],
                  config: Dict[str, Any]) -> Tuple[str, None]:
    """Publish the shared-prefix checkpoint chain of one cell group.

    Runs on every backend — a dispatch worker resolves the same shared
    cache root, so sibling simulate stages warm-start no matter where they
    (or this stage) execute.  Skipped when replay/checkpointing/warm
    starts are off: member cells then simulate cold, identically.
    """
    from ..checkpoint.prefix import publish_prefix
    from ..experiments.runner import clamp_warmup_fraction
    if not (config.get("replay", True) and config.get("checkpoint", True)
            and config.get("warm_start", True)):
        return "skipped", None
    status = publish_prefix(
        params["workload"], params["organisation"], params["size"],
        params["seed"], params["scale"],
        clamp_warmup_fraction(params["warmup"]),
        cache_dir=config.get("cache_dir"),
        resume=config.get("resume", True))
    return status, None


def _stage_simulate(params: Dict[str, Any],
                    config: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Simulate one grid cell; returns per-context statuses and bundles.

    The per-context status ("cached" vs "ran") is decided *before* running,
    so an analyze stage can report whether its bundle pre-existed in the
    memo/disk store — the same contract the batched suite path used to
    provide.  Epoch-sharded simulation stays available as a stage-internal
    detail when the stage executes in the parent (``config["shard"]``).
    """
    from ..experiments.runner import (bundle_status, clamp_warmup_fraction,
                                      run_context)
    workload = params["workload"]
    organisation = params["organisation"]
    scale, size, seed = params["scale"], params["size"], params["seed"]
    warmup = clamp_warmup_fraction(params["warmup"])
    session = _config_session(config)
    store = session.result_store
    contexts = SYSTEMS.get(organisation).contexts
    statuses = {context: bundle_status(workload, context, size, seed, scale,
                                       warmup, store=store)
                for context in contexts}
    if config.get("shard") and config.get("max_workers") != 1:
        from ..experiments.parallel import ParallelSuiteRunner
        runner = ParallelSuiteRunner(
            max_workers=config.get("max_workers"),
            streaming=session.streaming, cache_dir=session.cache_dir,
            replay=session.replay, checkpoint=session.checkpoint,
            resume=session.resume)
        if runner._shardable(workload, organisation, size, seed, scale,
                             warmup):
            bundles = runner._run_sharded(workload, organisation, size, seed,
                                          scale, warmup)
            return _merge_statuses(statuses), {"statuses": statuses,
                                               "bundles": bundles}
    bundles = {context: run_context(workload, context, size=size, seed=seed,
                                    scale=scale, warmup_fraction=warmup,
                                    session=session)
               for context in contexts}
    return _merge_statuses(statuses), {"statuses": statuses,
                                       "bundles": bundles}


def _merge_statuses(statuses: Dict[str, str]) -> str:
    """A simulate stage only "ran" if at least one context had real work."""
    return ("cached" if statuses and all(s == "cached"
                                         for s in statuses.values())
            else "ran")


_STAGE_FNS = {"capture": _stage_capture,
              "summarize": _stage_summarize,
              "prefix": _stage_prefix,
              "simulate": _stage_simulate}


def run_stage(kind: str, params: Dict[str, Any],
              config: Dict[str, Any]) -> Tuple[str, Any]:
    """Execute one backend-run stage; returns ``(status, payload)``.

    The single entry point every backend funnels through — inline, in a
    pool worker, or deserialised from a dispatch work item — so a stage's
    result is a pure function of ``(kind, params, config)`` and backends
    stay interchangeable.
    """
    try:
        fn = _STAGE_FNS[kind]
    except KeyError:
        raise ValueError(f"no backend work function for stage kind {kind!r} "
                         f"(backend kinds: {', '.join(_STAGE_FNS)})") from None
    run_id = config.get("telemetry_run_id")
    if not run_id:
        return fn(params, config)
    # Worker-origin span: the stage's actual compute cost, measured in
    # whichever process runs it (the serial parent, a pool worker, an
    # embedded dispatch worker, or a remote `repro worker`) and appended to
    # the run's shared spans.jsonl.  Telemetry must never fail the stage, so
    # a broken telemetry store only loses the span.
    from ..obs import Span, get_telemetry_store, maybe_profile
    store = get_telemetry_store(config.get("cache_dir"))
    if store is None:
        return fn(params, config)
    stage_key = config.get("stage_key", kind)
    prof_path = (store.profile_path(run_id, stage_key)
                 if config.get("profile") else None)
    span = Span(kind, params, stage=stage_key, origin="worker").begin()
    try:
        with maybe_profile(prof_path):
            status, payload = fn(params, config)
    except Exception as exc:
        span.finish("failed", error=exc)
        _append_span_safely(store, run_id, span)
        raise
    span.finish(status)
    _append_span_safely(store, run_id, span)
    return status, payload


def _append_span_safely(store, run_id: str, span) -> None:
    import warnings
    try:
        store.append_span(run_id, span.to_record())
    except OSError as exc:  # pragma: no cover - disk full etc.
        warnings.warn(f"failed to persist span for {span.stage}: {exc}",
                      RuntimeWarning, stacklevel=2)


# --------------------------------------------------------------------------- #
# the Executor protocol
# --------------------------------------------------------------------------- #
class Executor(ABC):
    """How a plan's ready stages turn into running work.

    Lifecycle: the scheduler calls :meth:`bind` once with the session (and
    the plan, for backends that want to pre-provision), then any number of
    :meth:`submit`/:meth:`submit_call`, then :meth:`shutdown` (or uses the
    executor as a context manager).  ``submit`` returns a
    :class:`concurrent.futures.Future` so heterogeneous backends compose
    with :func:`concurrent.futures.wait`.
    """

    #: Registry name; set by subclasses.
    name = "base"
    #: Whether submitted stages run in the parent process, which permits
    #: stage-internal pool use (epoch sharding).
    runs_in_parent = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        #: Explicit construction-time budget; ``None`` defers to the bound
        #: session, re-resolved on every bind so a reused instance follows
        #: each session's worker budget instead of pinning the first one.
        self._own_max_workers = max_workers
        self.max_workers = max_workers
        self._config: Dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------- #
    def bind(self, session: "Session", plan: Optional["Plan"] = None) -> None:
        """Adopt the session policy stages will run under."""
        self.max_workers = (self._own_max_workers
                            if self._own_max_workers is not None
                            else session.max_workers)
        self._config = session_config(session, shard=self.runs_in_parent)
        self._config["max_workers"] = self.max_workers

    def configure(self, **overrides: Any) -> None:
        """Merge per-run settings into the stage config.

        The scheduler calls this between :meth:`bind` and the first
        :meth:`submit` — e.g. with the telemetry ``run_id``, which does not
        exist yet at bind time.  Later submits (including dispatch work
        items) carry the merged config.
        """
        self._config.update(overrides)

    def shutdown(self) -> None:
        """Release pools/resources; the executor may not be reused after."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ------------------------------------------------------ #
    @abstractmethod
    def submit_call(self, fn, *args) -> Future:
        """Run ``fn(*args)`` under this backend; the raw fan-out primitive."""

    def submit(self, stage: "Stage") -> Future:
        """Run one ready stage; resolve the future via :meth:`finalize`."""
        config = dict(self._config)
        config["stage_key"] = stage.key
        return self.submit_call(run_stage, stage.kind, dict(stage.params),
                                config)

    def finalize(self, stage: "Stage", value: Any) -> Tuple[str, Any]:
        """Turn a completed future's raw value into ``(status, payload)``."""
        return value

    def describe(self) -> str:
        workers = "auto" if self.max_workers is None else self.max_workers
        return f"{self.name} executor (workers={workers})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def _completed_future(fn, *args) -> Future:
    """Run ``fn`` now; wrap its outcome in an already-settled Future."""
    future: Future = Future()
    try:
        future.set_result(fn(*args))
    except BaseException as exc:  # noqa: BLE001 - future carries it
        future.set_exception(exc)
    return future


@register_executor("serial", aliases=("inline",))
class SerialExecutor(Executor):
    """Run every stage inline, in submission order (the reference backend).

    Executing in the parent keeps the historical semantics exactly: one
    stage at a time, deterministic order, and epoch-sharded simulation
    below stage granularity whenever boundary checkpoints make it pay.
    """

    name = "serial"
    runs_in_parent = True

    def submit_call(self, fn, *args) -> Future:
        return _completed_future(fn, *args)


@register_executor("thread")
class ThreadExecutor(Executor):
    """Overlap stages on a thread pool sharing the parent's memo/stores."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def submit_call(self, fn, *args) -> Future:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-stage")
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


@register_executor("process")
class ProcessExecutor(Executor):
    """Overlap stages on a process pool writing through the shared stores.

    This backend absorbs the pool the historical ``ParallelSuiteRunner``
    owned: the suite runner now fans its sub-stage jobs out through
    :meth:`submit_call` on exactly this class.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def submit_call(self, fn, *args) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# --------------------------------------------------------------------------- #
# dispatch: a leased work queue against a shared cache root
# --------------------------------------------------------------------------- #
class WorkItemCorruptError(RuntimeError):
    """A work-item JSON is unreadable; the worker quarantines it."""


class WorkItemFailed(RuntimeError):
    """A worker acknowledged an item with a ``failed`` receipt."""


def _summary_to_json(summary) -> Dict[str, Any]:
    return {"first_epoch": summary.first_epoch,
            "last_epoch": summary.last_epoch,
            "n_accesses": summary.n_accesses,
            "instructions": summary.instructions,
            "kind_counts": {str(k): v
                            for k, v in summary.kind_counts.items()},
            "cpu_counts": {str(k): v for k, v in summary.cpu_counts.items()},
            "distinct_blocks": summary.distinct_blocks}


def _summary_from_json(data: Dict[str, Any]):
    from ..trace.epoch import EpochSummary
    return EpochSummary(
        first_epoch=data["first_epoch"], last_epoch=data["last_epoch"],
        n_accesses=data["n_accesses"], instructions=data["instructions"],
        kind_counts={int(k): v for k, v in data["kind_counts"].items()},
        cpu_counts={int(k): v for k, v in data["cpu_counts"].items()},
        distinct_blocks=data["distinct_blocks"])


def execute_work_item(item_path: str,
                      extra: Optional[Dict[str, Any]] = None) -> str:
    """Run one serialised stage; returns the path of its ``done`` receipt.

    The worker contract of the dispatch backend: everything it needs is in
    the work-item JSON (stage key/kind/params plus the session policy) and
    the shared cache root the policy points at.  Bulk artifacts — captured
    traces, checkpoints, analysis bundles — land in the shared stores; the
    receipt carries only statuses and small JSON-able payloads, so this
    function can run on any host mounting the cache root.

    Idempotence guarantees (what makes lease-expiry retries safe):

    * an already-finalised ``done`` receipt is a **no-op** — the stage is
      not re-run and the first receipt is never re-replaced;
    * a corrupt/truncated item raises :class:`WorkItemCorruptError` (the
      worker quarantines it) instead of ``JSONDecodeError``;
    * a stage exception is captured into a ``failed`` receipt rather than
      crashing the worker, so the submitter sees the failure exactly once.

    ``extra`` (e.g. worker id and attempt count) is merged into the receipt.
    """
    from .queue import load_json, write_json_atomic
    done_path = item_path[:-len(".json")] + ".done.json"
    if os.path.exists(done_path):
        return done_path  # already finalised (e.g. by the lease's previous
        # holder racing our steal); re-running would only repeat the work.
    item = load_json(item_path, kind="dispatch work item")
    if item is None:
        raise WorkItemCorruptError(f"unreadable work item {item_path}")
    done: Dict[str, Any] = dict(extra or {})
    done.update({"stage": item["stage"], "kind": item["kind"]})
    try:
        status, payload = run_stage(item["kind"], item["params"],
                                    item["config"])
    except Exception as exc:  # noqa: BLE001 - reported via the receipt
        done.update({"status": "failed",
                     "error": f"{type(exc).__name__}: {exc}"})
    else:
        done["status"] = status
        if item["kind"] == "summarize" and payload is not None:
            done["summary"] = _summary_to_json(payload)
        elif item["kind"] == "simulate":
            done["statuses"] = payload["statuses"]
    if not os.path.exists(done_path):  # first finaliser wins
        write_json_atomic(done_path, done)
    return done_path


@register_executor("dispatch")
class DispatchExecutor(Executor):
    """Enqueue ready stages as leased work items; wait on queue state.

    The multi-host execution backend: the parent writes each ready stage as
    ``<cache>/dispatch/<run>/item-NNNN-<kind>.json`` and then *watches the
    queue* — it never executes stages itself.  Any ``repro worker`` process
    on any host mounting the cache root may claim an item (atomic
    ``claim-NNNN`` creation), heartbeat its lease while executing, and
    acknowledge through an ``item-NNNN.done.json`` receipt; the parent
    recovers the stage's artifacts from the **shared cache root** —
    analysis bundles from the result store, statuses and epoch summaries
    from the receipt — never from worker memory.

    With ``workers > 0`` (the default: the session's worker budget) the
    executor spawns that many local worker *processes* scoped to its run
    directory, so ``--executor dispatch`` is self-contained — the embedded
    fleet is a stand-in for remote hosts running the identical claim
    protocol.  ``workers=0`` (or ``Session(dispatch_workers=0)``) enqueues
    only, relying on an external fleet — how ``repro serve`` shares one
    worker pool across many submitters.

    Robustness: a SIGKILLed worker's leases expire and its items are
    re-claimed by the fleet; a corrupt receipt warns and requeues the item;
    a corrupt (quarantined) work item warns and is re-enqueued from the
    stage the parent still holds.  Work items and receipts are left in
    place as an audit trail of the run (``repro clear-cache`` removes
    them).
    """

    name = "dispatch"

    def __init__(self, max_workers: Optional[int] = None,
                 work_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 lease_seconds: Optional[float] = None,
                 poll_seconds: float = 0.02) -> None:
        super().__init__(max_workers)
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0 (0 = external fleet)")
        self.work_dir = work_dir
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self._run_dir: Optional[str] = None
        self._counter = 0
        self._queue = None
        self._procs: list = []
        self._watch: Dict[str, Tuple["Stage", Future]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    def submit_call(self, fn, *args) -> Future:
        # Sub-stage fan-out never routes through dispatch (stages run in
        # worker processes, which must not nest pools); run it inline.
        return _completed_future(fn, *args)

    # -- lifecycle ------------------------------------------------------- #
    def bind(self, session: "Session", plan: Optional["Plan"] = None) -> None:
        super().bind(session, plan)
        if not session.disk_cache_enabled:
            raise ExecutorSetupError(
                "the dispatch executor shares work through the disk cache; "
                "unset REPRO_DISABLE_DISK_CACHE or pick another backend")
        from .queue import WorkQueue
        root = (self.work_dir if self.work_dir is not None
                else str(session.cache_root / "dispatch"))
        os.makedirs(root, exist_ok=True)
        name = (plan.spec.name if plan is not None else "plan")
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
        self._run_dir = tempfile.mkdtemp(prefix=f"{safe}-", dir=root)
        self._session = session
        self._queue = WorkQueue(self._run_dir,
                                lease_seconds=self.lease_seconds)
        self._watch = {}
        self._stop = threading.Event()
        self._spawn_workers(self._resolve_worker_count(session))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-dispatch-monitor",
            daemon=True)
        self._monitor.start()

    def _resolve_worker_count(self, session: "Session") -> int:
        count = self.workers
        if count is None:
            count = getattr(session, "dispatch_workers", None)
        if count is None:
            count = self.max_workers or (os.cpu_count() or 1)
        return int(count)

    def _spawn_workers(self, count: int) -> None:
        import multiprocessing
        from .worker import embedded_worker_main
        for _ in range(count):
            proc = multiprocessing.Process(
                target=embedded_worker_main,
                args=(self._run_dir, self._queue.lease_seconds, 0.05),
                daemon=True)
            proc.start()
            self._procs.append(proc)

    def shutdown(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        with self._lock:
            leftovers = list(self._watch.values())
            self._watch = {}
        for _stage, future in leftovers:
            future.cancel()
        for proc in self._procs:
            proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5)
        self._procs = []

    # -- submission ------------------------------------------------------ #
    def _item_payload(self, stage: "Stage") -> Dict[str, Any]:
        config = dict(self._config)
        config["stage_key"] = stage.key
        return {"stage": stage.key, "kind": stage.kind,
                "params": dict(stage.params), "config": config}

    def submit(self, stage: "Stage") -> Future:
        if self._run_dir is None:
            raise RuntimeError("DispatchExecutor.submit before bind()")
        from .queue import write_json_atomic
        self._counter += 1
        item_path = os.path.join(
            self._run_dir,
            f"item-{self._counter:04d}-{stage.kind}.json")
        write_json_atomic(item_path, self._item_payload(stage))
        future: Future = Future()
        with self._lock:
            self._watch[item_path] = (stage, future)
        return future

    def _monitor_loop(self) -> None:
        """Resolve futures as receipts land; requeue corrupted hand-offs."""
        import warnings
        from .queue import done_path_for, load_json, write_json_atomic
        while not self._stop.is_set():
            with self._lock:
                watch = list(self._watch.items())
            for item_path, (stage, future) in watch:
                done_path = done_path_for(item_path)
                if done_path.exists():
                    receipt = load_json(done_path, kind="dispatch receipt")
                    if receipt is None:
                        # Warned already; drop receipt + claim so the fleet
                        # re-executes the item (idempotent against stores).
                        self._queue.requeue(item_path, "corrupt receipt")
                        continue
                    with self._lock:
                        self._watch.pop(item_path, None)
                    if receipt.get("status") == "failed":
                        future.set_exception(WorkItemFailed(
                            f"stage {stage.key} failed on worker "
                            f"{receipt.get('worker', '?')}: "
                            f"{receipt.get('error', 'unknown error')}"))
                    else:
                        future.set_result(receipt)
                elif not os.path.exists(item_path):
                    # A worker quarantined the item as corrupt (or the file
                    # vanished); re-enqueue a fresh copy from the stage.
                    warnings.warn(
                        f"re-enqueueing dispatch item for stage "
                        f"{stage.key}: work item vanished without a receipt",
                        RuntimeWarning, stacklevel=2)
                    write_json_atomic(item_path, self._item_payload(stage))
            self._stop.wait(self.poll_seconds)

    def finalize(self, stage: "Stage", value: Any) -> Tuple[str, Any]:
        done = value  # the receipt dict the monitor resolved the future with
        status = done["status"]
        if stage.kind == "summarize":
            return status, (_summary_from_json(done["summary"])
                            if "summary" in done else None)
        if stage.kind == "simulate":
            return status, {"statuses": done["statuses"],
                            "bundles": self._replay_bundles(stage)}
        return status, None

    def _replay_bundles(self, stage: "Stage") -> Dict[str, Any]:
        """Load the cell's bundles back from the shared result store."""
        from ..experiments.runner import _result_params, clamp_warmup_fraction
        params = stage.params
        store = self._session.result_store
        warmup = clamp_warmup_fraction(params["warmup"])
        bundles = {}
        for context in SYSTEMS.get(params["organisation"]).contexts:
            bundle = store.load("context", _result_params(
                params["workload"], context, params["size"], params["seed"],
                params["scale"], warmup)) if store is not None else None
            if bundle is None:
                raise RuntimeError(
                    f"dispatch worker reported {stage.key} done but its "
                    f"{context} bundle is missing from the shared store")
            bundles[context] = bundle
        return bundles


def choose_executor_name(plan: Optional["Plan"],
                         costs: Dict[str, Dict[str, float]]) -> str:
    """The backend ``executor="auto"`` resolves to for this plan.

    The decision reads the plan's backend-stage mix against the observed
    costs (``TelemetryStore.observed_costs()`` via the run index):

    * no plan in hand, or nothing observed yet — ``process``, the safe
      overlapping default for compute-bound simulation;
    * at most one backend stage — ``serial``: nothing can overlap, so
      skip pool startup entirely;
    * otherwise compare total observed CPU to total observed wall over
      the plan's backend stages.  Replay-dominated plans (cpu/wall below
      :data:`AUTO_THREAD_CPU_RATIO`) spend their time in I/O and numpy
      releases of the GIL, so threads win without fork/pickle overhead;
      compute-bound plans get processes.
    """
    if plan is None:
        return "process"
    backend_stages = [stage for stage in plan.stages.values()
                      if stage.kind in BACKEND_KINDS]
    if len(backend_stages) <= 1:
        return "serial"
    wall = cpu = 0.0
    for stage in backend_stages:
        estimate = (costs or {}).get(stage.kind)
        if estimate:
            wall += float(estimate.get("mean_wall_s", 0.0))
            cpu += float(estimate.get("mean_cpu_s", 0.0))
    if wall <= 0.0:
        return "process"
    return "thread" if cpu / wall < AUTO_THREAD_CPU_RATIO else "process"


#: ``auto`` picks threads when observed cpu/wall falls below this ratio
#: (the plan's backend stages spend most of their time off the GIL).
AUTO_THREAD_CPU_RATIO = 0.5


def resolve_executor(policy: Any, session: "Session",
                     plan: Optional["Plan"] = None) -> Executor:
    """The :class:`Executor` instance a policy value denotes.

    ``policy`` may be an executor instance (used as-is), a registered name
    (instantiated with the session's worker budget), ``None`` (the
    session's own ``executor`` policy, default ``serial``), or ``"auto"``
    (pick serial/thread/process for this ``plan`` from the observed
    replay/compute mix via :func:`choose_executor_name`).
    """
    if policy is None:
        policy = getattr(session, "executor", None) or "serial"
    if isinstance(policy, Executor):
        return policy
    if policy == "auto":
        costs: Dict[str, Dict[str, float]] = {}
        telem = getattr(session, "telemetry_store", None)
        if telem is not None:
            try:
                costs = telem.observed_costs() or {}
            except Exception:
                costs = {}
        policy = choose_executor_name(plan, costs)
    factory = EXECUTORS.get(policy)
    return factory(max_workers=session.max_workers)
