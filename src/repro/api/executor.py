"""Pluggable execution backends for stage-DAG plans.

A plan (:mod:`repro.api.plan`) is *what* runs — an explicit DAG of pipeline
stages.  An :class:`Executor` is *how* it runs: the event-driven scheduler in
:func:`~repro.api.plan.execute_plan` hands each *ready* stage (all
dependencies landed) to the backend and gets a
:class:`concurrent.futures.Future` back; everything about pools, processes,
and work-item serialisation lives behind that boundary.

Four backends ship, all registered in :data:`repro.api.registry.EXECUTORS`
(so ``Session(executor="process")``, ``--executor process``, and
``@register_executor`` all resolve through one namespace):

``serial``
    Runs every stage inline, in submission (topological) order — the
    reference semantics and the default.  Because it executes in the parent
    process, a simulate stage may still drop *below* stage granularity and
    epoch-shard itself over a process pool when boundary checkpoints exist
    (the historical ``ParallelSuiteRunner`` behaviour, now a stage-internal
    detail).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Stages share the
    parent's memo and stores directly; useful when stages are dominated by
    replay I/O or the vectorised numpy paths that release the GIL.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` — independent grid
    cells (and capture passes) genuinely overlap.  Workers write through the
    shared on-disk stores and return their payloads to the parent, exactly
    like the historical suite pool this backend absorbed.
``dispatch``
    The stepping stone to multi-host execution: each ready stage is
    serialised to a **JSON work item** under ``<cache>/dispatch/``, executed
    by a worker that sees *only* that JSON plus the shared cache root, and
    acknowledged through a ``*.done.json`` receipt; the parent then replays
    the stage's artifacts from the shared stores rather than receiving
    in-memory objects.  Any scheduler that can ship a JSON file to a machine
    mounting the same cache root can substitute for the local worker pool.

The module-level :func:`run_stage` is the single worker entry point every
backend funnels through, so a stage computes the same payload no matter
where it runs — the backends are interchangeable by construction, and the
CI smoke job asserts bit-identical plan artifacts across all four.

Two submission levels:

* :meth:`Executor.submit` — one *stage*; the executor runs
  :func:`run_stage` wherever it sees fit and :meth:`Executor.finalize`
  turns the future's raw value into ``(status, payload)``.
* :meth:`Executor.submit_call` — one picklable ``fn(*args)``; the raw
  fan-out primitive :class:`~repro.experiments.parallel.ParallelSuiteRunner`
  uses for sub-stage work (per-epoch summaries, epoch-range shards).
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from .registry import EXECUTORS, SYSTEMS, register_executor

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .plan import Plan, Stage
    from .session import Session

#: The names the built-in backends register under (CLI choices).
EXECUTOR_NAMES = ("serial", "thread", "process", "dispatch")


class ExecutorSetupError(RuntimeError):
    """A backend cannot run under the bound session's configuration.

    Distinct from plain ``RuntimeError`` so callers (e.g. the CLI) can
    report a configuration problem as a one-liner without also swallowing
    unrelated runtime failures like a broken worker pool.
    """

#: Stage kinds a backend executes; the scheduler runs the remaining kinds
#: (analyze/prefetch/render) inline because they are pure bookkeeping over
#: payloads it already holds.
BACKEND_KINDS = ("capture", "summarize", "simulate")


def session_config(session: "Session", shard: bool = False) -> Dict[str, Any]:
    """The picklable/JSON-able policy a stage needs to run anywhere.

    ``shard`` marks that the stage executes in the parent process and may
    therefore open its own process pool for epoch-sharded simulation.
    """
    return {"cache_dir": session.cache_dir,
            "streaming": session.streaming,
            "replay": session.replay,
            "checkpoint": session.checkpoint,
            "resume": session.resume,
            "max_workers": session.max_workers,
            "shard": bool(shard)}


def _config_session(config: Dict[str, Any]) -> "Session":
    from .session import Session
    return Session(cache_dir=config.get("cache_dir"),
                   streaming=config.get("streaming", True),
                   replay=config.get("replay", True),
                   checkpoint=config.get("checkpoint", True),
                   resume=config.get("resume", True))


# --------------------------------------------------------------------------- #
# stage work functions (module-level so they pickle under fork and spawn)
# --------------------------------------------------------------------------- #
def _stage_capture(params: Dict[str, Any],
                   config: Dict[str, Any]) -> Tuple[str, None]:
    """Capture one workload access stream into the shared trace store."""
    from ..trace import get_trace_store, trace_params
    from ..workloads import create_workload
    store = (get_trace_store(config.get("cache_dir"))
             if config.get("replay", True) else None)
    if store is None:
        return "skipped", None
    key = trace_params(params["workload"], params["n_cpus"], params["seed"],
                       params["size"])
    if store.contains(key):
        return "cached", None
    accesses = create_workload(params["workload"], n_cpus=params["n_cpus"],
                               seed=params["seed"],
                               size=params["size"]).iter_accesses()
    for _ in store.capture(accesses, key):
        pass
    return "ran", None


def _stage_summarize(params: Dict[str, Any],
                     config: Dict[str, Any]) -> Tuple[str, Any]:
    """Counting pass over one captured stream; returns its EpochSummary."""
    from ..trace import get_trace_store, trace_params
    from ..trace.epoch import summarize_trace
    store = (get_trace_store(config.get("cache_dir"))
             if config.get("replay", True) else None)
    reader = (store.open(trace_params(params["workload"], params["n_cpus"],
                                      params["seed"], params["size"]))
              if store is not None else None)
    if reader is None:
        return "skipped", None
    if config.get("shard") and config.get("max_workers") != 1 \
            and reader.n_epochs > 1:
        # Stage-internal epoch sharding: only when this stage already runs
        # in the parent process (nesting pools inside workers is a hazard).
        from ..experiments.parallel import ParallelSuiteRunner
        runner = ParallelSuiteRunner(max_workers=config.get("max_workers"),
                                     cache_dir=config.get("cache_dir"))
        return "ran", runner.summarize_trace(reader)
    return "ran", summarize_trace(reader)


def _stage_simulate(params: Dict[str, Any],
                    config: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Simulate one grid cell; returns per-context statuses and bundles.

    The per-context status ("cached" vs "ran") is decided *before* running,
    so an analyze stage can report whether its bundle pre-existed in the
    memo/disk store — the same contract the batched suite path used to
    provide.  Epoch-sharded simulation stays available as a stage-internal
    detail when the stage executes in the parent (``config["shard"]``).
    """
    from ..experiments.runner import (bundle_status, clamp_warmup_fraction,
                                      run_context)
    workload = params["workload"]
    organisation = params["organisation"]
    scale, size, seed = params["scale"], params["size"], params["seed"]
    warmup = clamp_warmup_fraction(params["warmup"])
    session = _config_session(config)
    store = session.result_store
    contexts = SYSTEMS.get(organisation).contexts
    statuses = {context: bundle_status(workload, context, size, seed, scale,
                                       warmup, store=store)
                for context in contexts}
    if config.get("shard") and config.get("max_workers") != 1:
        from ..experiments.parallel import ParallelSuiteRunner
        runner = ParallelSuiteRunner(
            max_workers=config.get("max_workers"),
            streaming=session.streaming, cache_dir=session.cache_dir,
            replay=session.replay, checkpoint=session.checkpoint,
            resume=session.resume)
        if runner._shardable(workload, organisation, size, seed, scale,
                             warmup):
            bundles = runner._run_sharded(workload, organisation, size, seed,
                                          scale, warmup)
            return _merge_statuses(statuses), {"statuses": statuses,
                                               "bundles": bundles}
    bundles = {context: run_context(workload, context, size=size, seed=seed,
                                    scale=scale, warmup_fraction=warmup,
                                    session=session)
               for context in contexts}
    return _merge_statuses(statuses), {"statuses": statuses,
                                       "bundles": bundles}


def _merge_statuses(statuses: Dict[str, str]) -> str:
    """A simulate stage only "ran" if at least one context had real work."""
    return ("cached" if statuses and all(s == "cached"
                                         for s in statuses.values())
            else "ran")


_STAGE_FNS = {"capture": _stage_capture,
              "summarize": _stage_summarize,
              "simulate": _stage_simulate}


def run_stage(kind: str, params: Dict[str, Any],
              config: Dict[str, Any]) -> Tuple[str, Any]:
    """Execute one backend-run stage; returns ``(status, payload)``.

    The single entry point every backend funnels through — inline, in a
    pool worker, or deserialised from a dispatch work item — so a stage's
    result is a pure function of ``(kind, params, config)`` and backends
    stay interchangeable.
    """
    try:
        fn = _STAGE_FNS[kind]
    except KeyError:
        raise ValueError(f"no backend work function for stage kind {kind!r} "
                         f"(backend kinds: {', '.join(_STAGE_FNS)})") from None
    return fn(params, config)


# --------------------------------------------------------------------------- #
# the Executor protocol
# --------------------------------------------------------------------------- #
class Executor(ABC):
    """How a plan's ready stages turn into running work.

    Lifecycle: the scheduler calls :meth:`bind` once with the session (and
    the plan, for backends that want to pre-provision), then any number of
    :meth:`submit`/:meth:`submit_call`, then :meth:`shutdown` (or uses the
    executor as a context manager).  ``submit`` returns a
    :class:`concurrent.futures.Future` so heterogeneous backends compose
    with :func:`concurrent.futures.wait`.
    """

    #: Registry name; set by subclasses.
    name = "base"
    #: Whether submitted stages run in the parent process, which permits
    #: stage-internal pool use (epoch sharding).
    runs_in_parent = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        #: Explicit construction-time budget; ``None`` defers to the bound
        #: session, re-resolved on every bind so a reused instance follows
        #: each session's worker budget instead of pinning the first one.
        self._own_max_workers = max_workers
        self.max_workers = max_workers
        self._config: Dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------- #
    def bind(self, session: "Session", plan: Optional["Plan"] = None) -> None:
        """Adopt the session policy stages will run under."""
        self.max_workers = (self._own_max_workers
                            if self._own_max_workers is not None
                            else session.max_workers)
        self._config = session_config(session, shard=self.runs_in_parent)
        self._config["max_workers"] = self.max_workers

    def shutdown(self) -> None:
        """Release pools/resources; the executor may not be reused after."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ------------------------------------------------------ #
    @abstractmethod
    def submit_call(self, fn, *args) -> Future:
        """Run ``fn(*args)`` under this backend; the raw fan-out primitive."""

    def submit(self, stage: "Stage") -> Future:
        """Run one ready stage; resolve the future via :meth:`finalize`."""
        return self.submit_call(run_stage, stage.kind, dict(stage.params),
                                dict(self._config))

    def finalize(self, stage: "Stage", value: Any) -> Tuple[str, Any]:
        """Turn a completed future's raw value into ``(status, payload)``."""
        return value

    def describe(self) -> str:
        workers = "auto" if self.max_workers is None else self.max_workers
        return f"{self.name} executor (workers={workers})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def _completed_future(fn, *args) -> Future:
    """Run ``fn`` now; wrap its outcome in an already-settled Future."""
    future: Future = Future()
    try:
        future.set_result(fn(*args))
    except BaseException as exc:  # noqa: BLE001 - future carries it
        future.set_exception(exc)
    return future


@register_executor("serial", aliases=("inline",))
class SerialExecutor(Executor):
    """Run every stage inline, in submission order (the reference backend).

    Executing in the parent keeps the historical semantics exactly: one
    stage at a time, deterministic order, and epoch-sharded simulation
    below stage granularity whenever boundary checkpoints make it pay.
    """

    name = "serial"
    runs_in_parent = True

    def submit_call(self, fn, *args) -> Future:
        return _completed_future(fn, *args)


@register_executor("thread")
class ThreadExecutor(Executor):
    """Overlap stages on a thread pool sharing the parent's memo/stores."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def submit_call(self, fn, *args) -> Future:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-stage")
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


@register_executor("process")
class ProcessExecutor(Executor):
    """Overlap stages on a process pool writing through the shared stores.

    This backend absorbs the pool the historical ``ParallelSuiteRunner``
    owned: the suite runner now fans its sub-stage jobs out through
    :meth:`submit_call` on exactly this class.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def submit_call(self, fn, *args) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# --------------------------------------------------------------------------- #
# dispatch: JSON work items against a shared cache root
# --------------------------------------------------------------------------- #
def _summary_to_json(summary) -> Dict[str, Any]:
    return {"first_epoch": summary.first_epoch,
            "last_epoch": summary.last_epoch,
            "n_accesses": summary.n_accesses,
            "instructions": summary.instructions,
            "kind_counts": {str(k): v
                            for k, v in summary.kind_counts.items()},
            "cpu_counts": {str(k): v for k, v in summary.cpu_counts.items()},
            "distinct_blocks": summary.distinct_blocks}


def _summary_from_json(data: Dict[str, Any]):
    from ..trace.epoch import EpochSummary
    return EpochSummary(
        first_epoch=data["first_epoch"], last_epoch=data["last_epoch"],
        n_accesses=data["n_accesses"], instructions=data["instructions"],
        kind_counts={int(k): v for k, v in data["kind_counts"].items()},
        cpu_counts={int(k): v for k, v in data["cpu_counts"].items()},
        distinct_blocks=data["distinct_blocks"])


def execute_work_item(item_path: str) -> str:
    """Run one serialised stage; returns the path of its ``done`` receipt.

    The worker contract of the dispatch backend: everything it needs is in
    the work-item JSON (stage key/kind/params plus the session policy) and
    the shared cache root the policy points at.  Bulk artifacts — captured
    traces, checkpoints, analysis bundles — land in the shared stores; the
    receipt carries only statuses and small JSON-able payloads, so this
    function can run on any host mounting the cache root.
    """
    with open(item_path, "r", encoding="utf-8") as fh:
        item = json.load(fh)
    status, payload = run_stage(item["kind"], item["params"], item["config"])
    done: Dict[str, Any] = {"stage": item["stage"], "kind": item["kind"],
                            "status": status}
    if item["kind"] == "summarize" and payload is not None:
        done["summary"] = _summary_to_json(payload)
    elif item["kind"] == "simulate":
        done["statuses"] = payload["statuses"]
    done_path = item_path[:-len(".json")] + ".done.json"
    tmp_path = done_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(done, fh, indent=2)
    os.replace(tmp_path, done_path)
    return done_path


@register_executor("dispatch")
class DispatchExecutor(ProcessExecutor):
    """Serialise ready stages to JSON work items; replay artifacts from disk.

    The stepping stone to multi-host execution: the parent writes each
    ready stage as ``<cache>/dispatch/<run>/item-NNNN.json``, a worker
    executes it from the JSON alone (here: a local process pool standing in
    for remote hosts), and the parent recovers the stage's artifacts from
    the **shared cache root** — analysis bundles from the result store,
    statuses and epoch summaries from the ``*.done.json`` receipt — never
    from worker memory.  Requires the disk cache; work-item and receipt
    files are left in place as an audit trail of the run.
    """

    name = "dispatch"

    def __init__(self, max_workers: Optional[int] = None,
                 work_dir: Optional[str] = None) -> None:
        super().__init__(max_workers)
        self.work_dir = work_dir
        self._run_dir: Optional[str] = None
        self._counter = 0

    def bind(self, session: "Session", plan: Optional["Plan"] = None) -> None:
        super().bind(session, plan)
        if not session.disk_cache_enabled:
            raise ExecutorSetupError(
                "the dispatch executor shares work through the disk cache; "
                "unset REPRO_DISABLE_DISK_CACHE or pick another backend")
        root = (self.work_dir if self.work_dir is not None
                else str(session.cache_root / "dispatch"))
        os.makedirs(root, exist_ok=True)
        name = (plan.spec.name if plan is not None else "plan")
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
        self._run_dir = tempfile.mkdtemp(prefix=f"{safe}-", dir=root)
        self._session = session

    def submit(self, stage: "Stage") -> Future:
        if self._run_dir is None:
            raise RuntimeError("DispatchExecutor.submit before bind()")
        self._counter += 1
        item_path = os.path.join(
            self._run_dir,
            f"item-{self._counter:04d}-{stage.kind}.json")
        item = {"stage": stage.key, "kind": stage.kind,
                "params": dict(stage.params), "config": dict(self._config)}
        with open(item_path, "w", encoding="utf-8") as fh:
            json.dump(item, fh, indent=2)
        return self.submit_call(execute_work_item, item_path)

    def finalize(self, stage: "Stage", value: Any) -> Tuple[str, Any]:
        with open(value, "r", encoding="utf-8") as fh:
            done = json.load(fh)
        status = done["status"]
        if stage.kind == "summarize":
            return status, (_summary_from_json(done["summary"])
                            if "summary" in done else None)
        if stage.kind == "simulate":
            return status, {"statuses": done["statuses"],
                            "bundles": self._replay_bundles(stage)}
        return status, None

    def _replay_bundles(self, stage: "Stage") -> Dict[str, Any]:
        """Load the cell's bundles back from the shared result store."""
        from ..experiments.runner import _result_params, clamp_warmup_fraction
        params = stage.params
        store = self._session.result_store
        warmup = clamp_warmup_fraction(params["warmup"])
        bundles = {}
        for context in SYSTEMS.get(params["organisation"]).contexts:
            bundle = store.load("context", _result_params(
                params["workload"], context, params["size"], params["seed"],
                params["scale"], warmup)) if store is not None else None
            if bundle is None:
                raise RuntimeError(
                    f"dispatch worker reported {stage.key} done but its "
                    f"{context} bundle is missing from the shared store")
            bundles[context] = bundle
        return bundles


def resolve_executor(policy: Any, session: "Session") -> Executor:
    """The :class:`Executor` instance a policy value denotes.

    ``policy`` may be an executor instance (used as-is), a registered name
    (instantiated with the session's worker budget), or ``None`` (the
    session's own ``executor`` policy, default ``serial``).
    """
    if policy is None:
        policy = getattr(session, "executor", None) or "serial"
    if isinstance(policy, Executor):
        return policy
    factory = EXECUTORS.get(policy)
    return factory(max_workers=session.max_workers)
