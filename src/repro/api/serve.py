"""The ``repro serve`` front end: spec submission over HTTP, events as NDJSON.

A thin stdlib-``http.server`` service that lets many concurrent submitters
share one cache root and one dispatch worker fleet:

* ``POST /submit`` — body is an experiment spec (TOML by default,
  ``Content-Type: application/json`` for a JSON dict).  The server resolves
  it into a plan, enqueues the plan's stages through a
  :class:`~repro.api.executor.DispatchExecutor` (``workers=0`` by default:
  the items are picked up by external ``repro worker`` daemons polling the
  same cache root), and streams the scheduler's
  :class:`~repro.api.plan.PlanEvents` back to the client as **NDJSON** —
  one ``{"event": ...}`` object per line, ending with a ``done`` line
  carrying per-status stage counts and every rendered artifact.
* ``GET /queue`` — dispatch queue stats (runs/items/pending/leased/done).
* ``GET /workers`` — fleet health: worker heartbeat/status records with
  liveness, held leases with remaining time and attempt counts, and
  queue depth with oldest-pending age.
* ``GET /metrics`` — the unified metrics registry snapshot (trace /
  checkpoint / generation counters plus stage histograms with p50/p95)
  and the queue/fleet state as one JSON object.
* ``GET /health`` — liveness plus the session description.

Each submission's event stream also carries its telemetry ``run_id``
(``{"event": "run", "run_id": ...}`` right after the ``plan`` line, and
again on the ``done`` line), so a client can fetch the per-stage span
records with ``repro stats <run_id>`` afterwards.

Each request is handled on its own thread (``ThreadingHTTPServer``), and
each submission gets its own run directory under ``<cache>/dispatch/``, so
concurrent grids interleave safely on the shared fleet; the
content-addressed stores dedupe any overlapping cells.

:func:`submit_spec` is the matching client (used by ``repro submit``): it
POSTs a spec file, renders progress lines as they arrive, and returns the
final ``done`` object.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, TextIO

from .plan import PlanEvents, PlanExecutionError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023

#: NDJSON content type used for the event stream.
NDJSON = "application/x-ndjson"


class _StreamEvents(PlanEvents):
    """Forward scheduler lifecycle events to a writable as NDJSON lines."""

    def __init__(self, emit: Callable[[Dict[str, Any]], None]) -> None:
        self._emit = emit
        self.run_id: Optional[str] = None

    def on_plan_start(self, plan, run_id) -> None:
        self.run_id = run_id
        if run_id is not None:
            self._emit({"event": "run", "run_id": run_id})

    def on_stage_start(self, stage) -> None:
        self._emit({"event": "start", "stage": stage.key,
                    "kind": stage.kind})

    def on_stage_finish(self, stage, status) -> None:
        self._emit({"event": "finish", "stage": stage.key,
                    "kind": stage.kind, "status": status})

    def on_stage_error(self, stage, error) -> None:
        self._emit({"event": "error", "stage": stage.key,
                    "kind": stage.kind, "error": str(error)})


def _status_counts(statuses: Dict[str, str]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for status in statuses.values():
        counts[status] = counts.get(status, 0) + 1
    return counts


class ReproRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.0"  # close-delimited NDJSON streams

    # -- helpers --------------------------------------------------------- #
    def _json_response(self, code: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover - noise
        if self.server.verbose:
            sys.stderr.write("[serve] %s\n" % (fmt % args))

    # -- routes ---------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self.path == "/health":
            self._json_response(200, {
                "status": "ok",
                "session": self.server.make_session().describe(),
                "queue": self.server.queue_stats()})
        elif self.path == "/queue":
            self._json_response(200, self.server.queue_stats())
        elif self.path == "/workers":
            self._json_response(200, self.server.fleet_status())
        elif self.path == "/metrics":
            self._json_response(200, self.server.metrics_snapshot())
        else:
            self._json_response(404, {"error": f"unknown path {self.path}; "
                                      f"GET /health, GET /queue, "
                                      f"GET /workers, GET /metrics, "
                                      f"POST /submit"})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self.path != "/submit":
            self._json_response(404, {"error": f"unknown path {self.path}; "
                                      f"POST /submit"})
            return
        spec, problem = self._parse_spec()
        if spec is None:
            self._json_response(400, {"error": problem})
            return
        self._stream_execution(spec)

    # -- submission ------------------------------------------------------ #
    def _parse_spec(self):
        from .spec import ExperimentSpec, SpecError
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        try:
            if content_type == "application/json":
                data = json.loads(body.decode("utf-8"))
            else:  # TOML is the default spec wire format
                import tomllib
                data = tomllib.loads(body.decode("utf-8"))
            spec = ExperimentSpec.from_dict(data)
            spec.ensure_valid()
        except SpecError as exc:
            return None, str(exc)
        except Exception as exc:  # noqa: BLE001 - malformed body
            return None, f"unparsable spec body: {type(exc).__name__}: {exc}"
        return spec, None

    def _stream_execution(self, spec) -> None:
        self.send_response(200)
        self.send_header("Content-Type", NDJSON)
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        lock = threading.Lock()

        def emit(obj: Dict[str, Any]) -> None:
            line = (json.dumps(obj) + "\n").encode("utf-8")
            with lock:
                self.wfile.write(line)
                self.wfile.flush()

        session = self.server.make_session()
        plan = session.plan(spec.resolved())
        emit({"event": "plan", "name": plan.spec.name,
              "stages": len(plan)})
        events = _StreamEvents(emit)
        try:
            outcome = session.execute(plan, events=events)
            error = None
        except PlanExecutionError as exc:
            outcome, error = exc.result, str(exc)
        except Exception as exc:  # noqa: BLE001 - report, don't hang client
            emit({"event": "done", "ok": False, "run_id": events.run_id,
                  "error": f"{type(exc).__name__}: {exc}", "artifacts": {}})
            return
        emit({"event": "done", "ok": error is None, "error": error,
              "run_id": outcome.run_id,
              "statuses": _status_counts(outcome.statuses),
              "artifacts": outcome.render_all()})


class ReproServer(ThreadingHTTPServer):
    """HTTP front end bound to one cache root and one executor policy."""

    daemon_threads = True

    def __init__(self, address, cache_dir: Optional[str] = None,
                 local_workers: int = 0,
                 lease_seconds: Optional[float] = None,
                 verbose: bool = False) -> None:
        super().__init__(address, ReproRequestHandler)
        self.cache_dir = cache_dir
        self.local_workers = local_workers
        self.lease_seconds = lease_seconds
        self.verbose = verbose

    def make_session(self):
        """A fresh per-request session submitting through the dispatch queue."""
        from .executor import DispatchExecutor
        from .session import Session
        executor = DispatchExecutor(workers=self.local_workers,
                                    lease_seconds=self.lease_seconds)
        return Session(cache_dir=self.cache_dir, executor=executor,
                       dispatch_workers=self.local_workers)

    def queue_stats(self) -> Dict[str, int]:
        from .queue import WorkQueue, queue_root
        return WorkQueue(queue_root(self.cache_dir)).stats()

    def fleet_status(self) -> Dict[str, Any]:
        """The live fleet-health view (``GET /workers``).

        Worker heartbeat records, held leases with remaining time and
        attempt counts, and queue depth with oldest-pending age — read
        straight off the dispatch directory, so it reflects embedded and
        external workers alike.
        """
        from .queue import WorkQueue, queue_root
        return WorkQueue(queue_root(self.cache_dir)).fleet_status()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The unified registry snapshot plus queue/fleet state (``GET /metrics``).

        The pipeline packages register their ``STATS`` objects into the
        registry at import time; import them here so a scrape early in the
        server's life still reports every section (zeroed) instead of only
        what a prior submission happened to touch.  Histogram entries carry
        p50/p95 alongside count/sum/min/max/mean.
        """
        import repro.checkpoint.store  # noqa: F401 - registers STATS
        import repro.trace.store  # noqa: F401 - registers STATS
        import repro.workloads  # noqa: F401 - registers GENERATION_STATS
        from ..obs.metrics import REGISTRY
        fleet = self.fleet_status()
        return {"metrics": REGISTRY.snapshot(), "queue": fleet["queue"],
                "fleet": fleet}

    def describe(self) -> str:
        host, port = self.server_address[:2]
        fleet = (f"{self.local_workers} local worker"
                 f"{'' if self.local_workers == 1 else 's'}"
                 if self.local_workers else "external workers")
        return (f"repro serve on http://{host}:{port} "
                f"(cache={self.cache_dir or 'default'}, {fleet})")


def create_server(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                  cache_dir: Optional[str] = None, local_workers: int = 0,
                  lease_seconds: Optional[float] = None,
                  verbose: bool = False) -> ReproServer:
    return ReproServer((host, port), cache_dir=cache_dir,
                       local_workers=local_workers,
                       lease_seconds=lease_seconds, verbose=verbose)


# --------------------------------------------------------------------------- #
# the matching client (``repro submit``)
# --------------------------------------------------------------------------- #
def submit_spec(url: str, spec_text: str,
                content_type: str = "application/toml",
                progress: Optional[TextIO] = None,
                timeout: float = 600.0) -> Dict[str, Any]:
    """POST a spec to a ``repro serve`` endpoint; returns the ``done`` object.

    Streams the NDJSON events as they arrive; with ``progress`` each stage
    lifecycle line is rendered to it live (the HTTP analogue of the CLI's
    ``--progress``).  Raises ``RuntimeError`` when the server rejects the
    spec or the stream ends without a ``done`` event.
    """
    from urllib.request import Request, urlopen
    from urllib.error import HTTPError
    request = Request(url.rstrip("/") + "/submit",
                      data=spec_text.encode("utf-8"),
                      headers={"Content-Type": content_type})
    try:
        response = urlopen(request, timeout=timeout)
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        raise RuntimeError(
            f"server rejected the spec ({exc.code}): {detail}") from None
    done: Optional[Dict[str, Any]] = None
    with response:
        for raw in response:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("event") == "done":
                done = event
                break
            if progress is not None:
                _render_progress_line(event, progress)
    if done is None:
        raise RuntimeError("event stream ended without a 'done' event "
                           "(server died mid-plan?)")
    return done


def _render_progress_line(event: Dict[str, Any], out: TextIO) -> None:
    kind = event.get("kind", "")
    if event["event"] == "plan":
        print(f"[     plan] {event['name']}: {event['stages']} stages",
              file=out, flush=True)
    elif event["event"] == "run":
        print(f"[      run] telemetry {event['run_id']}", file=out,
              flush=True)
    elif event["event"] == "start":
        print(f"[{kind:>9}] {event['stage']} ...", file=out, flush=True)
    elif event["event"] == "finish":
        print(f"[{kind:>9}] {event['stage']} {event['status']}", file=out,
              flush=True)
    elif event["event"] == "error":
        print(f"[{kind:>9}] {event['stage']} FAILED: {event['error']}",
              file=out, flush=True)
