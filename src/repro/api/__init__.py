"""Declarative experiment API: the :class:`Session` facade, plugin
registries, :class:`ExperimentSpec` plans, and their stage DAGs.

This package is the composition layer over the rest of the library:

* :mod:`~repro.api.registry` — decorator-based plugin registries for
  workloads, system organisations, prefetchers, and analyses; every axis of
  the evaluation grid is extensible without editing core.
* :mod:`~repro.api.session` — :class:`Session`, owning the cache root, the
  three on-disk stores, and the parallelism/pipeline policy; the historical
  module-level store singletons delegate to the process default session.
* :mod:`~repro.api.spec` — :class:`ExperimentSpec`, a declarative
  workload x organisation x scale x warmup grid plus requested prefetchers
  and analyses, loadable from TOML or a dict.
* :mod:`~repro.api.plan` — :func:`build_plan` resolving a spec into an
  explicit capture -> summarize -> simulate -> analyze -> render DAG, and
  :func:`execute_plan`, the event-driven scheduler submitting each stage to
  an execution backend the moment its dependencies land (with replay,
  checkpoint resume, and epoch-sharded simulation per cell).
* :mod:`~repro.api.executor` — the :class:`Executor` protocol plus the four
  built-in backends (``serial``/``thread``/``process``/``dispatch``); new
  backends plug in via :func:`register_executor`.
* :mod:`~repro.api.queue` / :mod:`~repro.api.worker` /
  :mod:`~repro.api.serve` — the dispatch work-queue service:
  :class:`WorkQueue` (atomic claim/lease/receipt files under
  ``<cache>/dispatch``), :class:`Worker` (the ``repro worker`` daemon with
  heartbeat renewal and expired-lease stealing), and the ``repro serve``
  HTTP front end (:func:`create_server`) with its :func:`submit_spec`
  client.

Quick start::

    from repro.api import ExperimentSpec, Session

    session = Session(max_workers=4, executor="process")
    spec = ExperimentSpec.from_toml("experiment.toml")
    outcome = session.execute(spec)
    print(outcome.render("figure2"))
"""

from .executor import (DispatchExecutor, EXECUTOR_NAMES, Executor,
                       ExecutorSetupError, ProcessExecutor, SerialExecutor,
                       ThreadExecutor, WorkItemCorruptError, WorkItemFailed,
                       execute_work_item, resolve_executor)
from .plan import (EventLog, Plan, PlanEvents, PlanExecutionError, PlanResult,
                   Stage, build_plan, execute_plan)
from .queue import Lease, WorkQueue
from .serve import ReproServer, create_server, submit_spec
from .worker import Worker, WorkerStats
from .registry import (ANALYSES, EXECUTORS, PREFETCHERS, Registry, SYSTEMS,
                       WORKLOADS, register_analysis, register_executor,
                       register_prefetcher, register_system,
                       register_workload)
from .session import Session, get_default_session, set_default_session
from .spec import Cell, ExperimentSpec, SIZE_NAMES, SpecError

__all__ = [
    "ANALYSES", "Cell", "DispatchExecutor", "EXECUTOR_NAMES", "EXECUTORS",
    "EventLog", "ExperimentSpec", "Executor", "ExecutorSetupError",
    "Lease", "PREFETCHERS", "Plan",
    "PlanEvents", "PlanExecutionError", "PlanResult", "ProcessExecutor",
    "Registry", "ReproServer", "SIZE_NAMES", "SYSTEMS", "SerialExecutor",
    "Session", "SpecError", "Stage", "ThreadExecutor", "WORKLOADS",
    "WorkItemCorruptError", "WorkItemFailed", "WorkQueue", "Worker",
    "WorkerStats", "build_plan", "create_server",
    "execute_plan", "execute_work_item", "get_default_session",
    "register_analysis",
    "register_executor", "register_prefetcher", "register_system",
    "register_workload", "resolve_executor", "set_default_session",
    "submit_spec",
]
