"""Declarative experiment API: the :class:`Session` facade, plugin
registries, :class:`ExperimentSpec` plans, and their stage DAGs.

This package is the composition layer over the rest of the library:

* :mod:`~repro.api.registry` — decorator-based plugin registries for
  workloads, system organisations, prefetchers, and analyses; every axis of
  the evaluation grid is extensible without editing core.
* :mod:`~repro.api.session` — :class:`Session`, owning the cache root, the
  three on-disk stores, and the parallelism/pipeline policy; the historical
  module-level store singletons delegate to the process default session.
* :mod:`~repro.api.spec` — :class:`ExperimentSpec`, a declarative
  workload x organisation x scale x warmup grid plus requested prefetchers
  and analyses, loadable from TOML or a dict.
* :mod:`~repro.api.plan` — :func:`build_plan` resolving a spec into an
  explicit capture -> summarize -> simulate -> analyze -> render DAG, and
  :func:`execute_plan` running it with replay, checkpoint resume, and
  epoch-sharded parallel simulation per cell.

Quick start::

    from repro.api import ExperimentSpec, Session

    session = Session(max_workers=4)
    spec = ExperimentSpec.from_toml("experiment.toml")
    outcome = session.execute(spec)
    print(outcome.render("figure2"))
"""

from .plan import Plan, PlanResult, Stage, build_plan, execute_plan
from .registry import (ANALYSES, PREFETCHERS, Registry, SYSTEMS, WORKLOADS,
                       register_analysis, register_prefetcher,
                       register_system, register_workload)
from .session import Session, get_default_session, set_default_session
from .spec import Cell, ExperimentSpec, SIZE_NAMES, SpecError

__all__ = [
    "ANALYSES", "Cell", "ExperimentSpec", "PREFETCHERS", "Plan",
    "PlanResult", "Registry", "SIZE_NAMES", "SYSTEMS", "Session",
    "SpecError", "Stage", "WORKLOADS", "build_plan", "execute_plan",
    "get_default_session", "register_analysis", "register_prefetcher",
    "register_system", "register_workload", "set_default_session",
]
