"""The ``repro worker`` daemon: claim, heartbeat, execute, acknowledge.

A worker is one member of the dispatch fleet.  It polls a
:class:`~repro.api.queue.WorkQueue` (the whole ``<cache>/dispatch``
directory, or one plan's run directory when embedded in a
:class:`~repro.api.executor.DispatchExecutor`), claims items through the
atomic lease protocol, executes them via
:func:`~repro.api.executor.execute_work_item` — the same contract the
dispatch backend has always used, so a stage's result is a pure function of
its JSON — and writes the ``done`` receipt.  While a stage runs, a
background thread renews the lease every heartbeat interval; if the worker
is killed instead, the lease expires and any other worker requeues the item
by stealing the claim.  Re-execution is idempotent: stages write through
the content-addressed stores and the first receipt to land stands.

Corrupt work items warn and are quarantined (renamed aside) rather than
crashing the worker; the submitter re-enqueues a fresh copy.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from .queue import (Lease, WorkQueue, default_worker_id,
                    heartbeat_seconds_default, load_json, queue_root,
                    DEFAULT_POLL_SECONDS, POLL_ENV)

#: Test hook: seconds to sleep between claiming an item and executing it.
#: Lets tests (and drills) SIGKILL a worker that provably holds a lease.
TEST_SLEEP_ENV = "REPRO_WORKER_TEST_SLEEP"


def poll_seconds_default() -> float:
    try:
        value = float(os.environ.get(POLL_ENV, DEFAULT_POLL_SECONDS))
    except ValueError:
        return DEFAULT_POLL_SECONDS
    return value if value > 0 else DEFAULT_POLL_SECONDS


@dataclass
class WorkerStats:
    """What one worker run did, for logs and tests."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    steals: int = 0
    quarantined: int = 0
    polls: int = 0
    started_at: float = field(default_factory=time.time)

    def describe(self) -> str:
        return (f"{self.executed} executed ({self.cached} cached, "
                f"{self.failed} failed), {self.steals} stolen lease"
                f"{'' if self.steals == 1 else 's'}, "
                f"{self.quarantined} quarantined, "
                f"{time.time() - self.started_at:.1f}s up")


class _Heartbeat:
    """Renew a lease on a background thread while the stage executes."""

    def __init__(self, lease: Lease, interval: float,
                 on_beat=None) -> None:
        self._lease = lease
        self._interval = interval
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._lease.heartbeat()
            except OSError:
                return  # run directory cleared; the item is gone anyway
            if self._on_beat is not None:
                try:
                    self._on_beat()
                except Exception:
                    pass  # health reporting must never stop the renewals


class Worker:
    """Poll one queue and execute claimed items until told to stop.

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` to poll; built from ``cache_dir`` when
        omitted.
    lease_seconds / heartbeat_seconds / poll_seconds:
        Lease duration, renewal cadence (default: a third of the lease),
        and idle sleep between queue scans.  Env defaults:
        ``REPRO_LEASE_SECONDS`` / ``REPRO_HEARTBEAT_SECONDS`` /
        ``REPRO_WORKER_POLL_SECONDS``.
    max_items:
        Stop after executing this many items (``None``: run forever).
    idle_exit:
        Stop after this many consecutive seconds with nothing claimable
        (``None``: keep polling) — how CI smoke workers drain and exit.
    """

    def __init__(self, queue: Optional[WorkQueue] = None,
                 cache_dir: Optional[str] = None,
                 worker_id: Optional[str] = None,
                 lease_seconds: Optional[float] = None,
                 heartbeat_seconds: Optional[float] = None,
                 poll_seconds: Optional[float] = None,
                 max_items: Optional[int] = None,
                 idle_exit: Optional[float] = None) -> None:
        self.queue = queue if queue is not None else WorkQueue(
            queue_root(cache_dir), lease_seconds=lease_seconds)
        if lease_seconds is not None:
            self.queue.lease_seconds = lease_seconds
        self.worker_id = worker_id or default_worker_id()
        self.heartbeat_seconds = (
            heartbeat_seconds if heartbeat_seconds is not None
            else heartbeat_seconds_default(self.queue.lease_seconds))
        self.poll_seconds = (poll_seconds if poll_seconds is not None
                             else poll_seconds_default())
        self.max_items = max_items
        self.idle_exit = idle_exit
        self.stats = WorkerStats()
        self._stop = threading.Event()
        self._published_at = 0.0

    def stop(self) -> None:
        """Ask the polling loop to exit after the current item."""
        self._stop.set()

    # ------------------------------------------------------------------ #
    def publish(self, status: str, item: Optional[str] = None) -> None:
        """Publish this worker's heartbeat/status record (best-effort).

        The record lands in the queue's shared ``workers/`` directory,
        where ``GET /workers``, ``repro queue status``, and the run index
        read fleet health from.  Failures are swallowed: liveness
        reporting must never take the worker down.
        """
        now = time.time()
        try:
            self.queue.publish_worker({
                "worker": self.worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "status": status,
                "item": item,
                "started_at": self.stats.started_at,
                "updated_at": now,
                "heartbeat_seconds": self.heartbeat_seconds,
                "lease_seconds": self.queue.lease_seconds,
                "executed": self.stats.executed,
                "cached": self.stats.cached,
                "failed": self.stats.failed,
                "steals": self.stats.steals,
                "quarantined": self.stats.quarantined,
                "polls": self.stats.polls,
            })
            self._published_at = now
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def run(self) -> WorkerStats:
        """The polling loop; returns stats when a stop condition is met."""
        self.publish("idle")
        try:
            return self._run_loop()
        finally:
            self.publish("stopped")

    def _run_loop(self) -> WorkerStats:
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            self.stats.polls += 1
            claimed_any = False
            for item_path in self.queue.item_files():
                if self._stop.is_set():
                    break
                lease = self.queue.try_claim(item_path, self.worker_id)
                if lease is None:
                    continue
                claimed_any = True
                idle_since = None
                self._execute(lease)
                if self.max_items is not None \
                        and self.stats.executed >= self.max_items:
                    return self.stats
            if not claimed_any:
                now = time.time()
                # Keep the published record fresh while idle, so a fleet
                # with an empty queue still reads as alive.
                if now - self._published_at >= self.heartbeat_seconds:
                    self.publish("idle")
                if idle_since is None:
                    idle_since = now
                if self.idle_exit is not None \
                        and now - idle_since >= self.idle_exit:
                    return self.stats
                self._stop.wait(self.poll_seconds)
        return self.stats

    def run_once(self) -> WorkerStats:
        """Drain everything currently claimable, then return."""
        previous, self.idle_exit = self.idle_exit, 0.0
        try:
            return self.run()
        finally:
            self.idle_exit = previous

    # ------------------------------------------------------------------ #
    def _execute(self, lease: Lease) -> None:
        from .executor import WorkItemCorruptError, execute_work_item
        if lease.attempt > 1:
            self.stats.steals += 1
        test_sleep = float(os.environ.get(TEST_SLEEP_ENV, 0) or 0)
        if test_sleep > 0:
            time.sleep(test_sleep)
        item_name = lease.item_path.name
        self.publish("executing", item=item_name)
        started = time.time()
        try:
            with _Heartbeat(lease, self.heartbeat_seconds,
                            on_beat=lambda: self.publish(
                                "executing", item=item_name)):
                done_path = execute_work_item(
                    str(lease.item_path),
                    extra={"worker": self.worker_id,
                           "attempt": lease.attempt})
        except WorkItemCorruptError:
            # Warned already (load path); move the junk aside so the fleet
            # stops re-claiming it — the submitter re-enqueues a fresh copy.
            self.queue.quarantine(lease.item_path)
            self.stats.quarantined += 1
            lease.release()
            self.publish("idle")
            return
        self._audit(lease, started=started,
                    duration=time.time() - started)
        lease.release()
        receipt = load_json(done_path, kind="dispatch receipt") or {}
        self.stats.executed += 1
        if receipt.get("status") == "cached":
            self.stats.cached += 1
        elif receipt.get("status") == "failed":
            self.stats.failed += 1
        self.publish("idle")

    def _audit(self, lease: Lease, started: float, duration: float) -> None:
        """Append one line to the run's execution log (O_APPEND: atomic).

        The log is the ground truth for exactly-once assertions: a line is
        written per *completed execution attempt* (after the stage, so it
        carries the start timestamp and duration — cross-checkable against
        the worker-origin spans in the telemetry store), while receipts
        record only the first finalisation.
        """
        from .queue import iso_utc
        log = lease.item_path.parent / "executed.log"
        line = (f"{lease.item_path.name} worker={self.worker_id} "
                f"attempt={lease.attempt} started={iso_utc(started)} "
                f"duration_seconds={duration:.3f}\n")
        try:
            fd = os.open(log, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(line)
        except OSError:
            pass  # auditing is best-effort


def embedded_worker_main(run_dir: str, lease_seconds: Optional[float],
                         poll_seconds: float) -> None:
    """Entry point of the dispatch executor's embedded worker processes.

    Scoped to one run directory (so embedded stand-in fleets of concurrent
    plans do not contend) and polls fast: these workers exist to make
    ``--executor dispatch`` self-contained when no external fleet runs.
    """
    # Under fork this child inherits the parent's in-process memos, which
    # are keyed without the cache root; a memo hit would skip the disk
    # write the submitter replays artifacts from.  Start cold, like the
    # external ``repro worker`` daemons this fleet stands in for.
    from ..experiments import runner
    runner._CACHE.clear()
    runner._TRACE_CACHE.clear()
    worker = Worker(queue=WorkQueue(run_dir, lease_seconds=lease_seconds),
                    poll_seconds=poll_seconds)
    try:
        worker.run()
    except KeyboardInterrupt:  # pragma: no cover - parent terminates us
        pass
