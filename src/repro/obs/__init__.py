"""Observability: stage spans, the unified metrics registry, run telemetry.

Layering note: this package sits *below* ``repro.api`` and the stores — the
stores register their ``STATS`` objects here, and the plan scheduler and
``run_stage`` emit spans here, but nothing in ``repro.obs`` imports from
either. See the module docstrings for the contract each piece provides:

* :mod:`repro.obs.metrics` — :data:`REGISTRY`, ``Counter``/``Gauge``/
  ``Histogram``, ``register_stats``, flat ``snapshot()``.
* :mod:`repro.obs.span` — :class:`Span`, :class:`SpanRecorder`,
  :func:`maybe_profile`.
* :mod:`repro.obs.store` — :class:`TelemetryStore` under
  ``<cache>/telemetry/<run_id>/``, :func:`get_telemetry_store`.
* :mod:`repro.obs.index` — :class:`RunIndex`, the sqlite query layer over
  telemetry, dispatch audit logs, worker heartbeats, and result artifacts.
"""

from repro.obs.index import (INDEX_SUBDIR, RunIndex, TABLE_COLUMNS,
                             TABLE_NAMES, get_run_index)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               REGISTRY, get_registry)
from repro.obs.span import Span, SpanRecorder, maybe_profile, peak_rss_kib
from repro.obs.store import (TELEMETRY_SUBDIR, TelemetryStore,
                             get_telemetry_store, iso_utc, new_run_id)

__all__ = [
    "INDEX_SUBDIR",
    "RunIndex",
    "TABLE_COLUMNS",
    "TABLE_NAMES",
    "get_run_index",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "Span",
    "SpanRecorder",
    "maybe_profile",
    "peak_rss_kib",
    "TELEMETRY_SUBDIR",
    "TelemetryStore",
    "get_telemetry_store",
    "iso_utc",
    "new_run_id",
]
