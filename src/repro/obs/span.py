"""Stage spans: one timed record per executed stage, wherever it runs.

A :class:`Span` measures one unit of work — wall time via
``time.perf_counter``, CPU time via ``time.thread_time`` (per-thread, so
concurrent stages in the thread backend don't bleed into each other), peak
RSS via ``resource.getrusage`` (Linux: KiB; absent on platforms without the
``resource`` module), and the delta of every registered store counter
(trace hits/misses, checkpoint saves/loads, generation runs) between entry
and exit.  Spans are plain data once finished: ``to_record()`` yields the
JSON-safe dict persisted to the telemetry store's ``spans.jsonl``.

Two origins produce spans for the same plan:

* ``origin="scheduler"`` — emitted by :class:`SpanRecorder` from the
  ``PlanEvents`` hooks in ``repro.api.plan``.  Exists for *every* stage
  under *every* backend; for backend-executed stages it measures
  submission-to-settle latency (queueing included).
* ``origin="worker"`` — emitted inside ``run_stage`` around the actual
  stage function, in whichever process executes it: the serial scheduler
  itself, a thread/process pool worker, an embedded dispatch worker, or a
  remote ``repro worker`` daemon.  This is the true compute cost.

Both origins exist under every backend, so the set of ``(stage, origin)``
keys a run produces is identical across serial and dispatch — the
acceptance criterion for ``repro stats``.

``SpanRecorder`` deliberately does *not* subclass ``PlanEvents``: it
duck-types the three hooks so this package never imports ``repro.api``
(which imports the stores, which import this package's registry — keeping
the dependency arrow one-way).
"""

from __future__ import annotations

import cProfile
import contextlib
import os
import threading
import time
from typing import Any, Dict, Iterator, Optional

from repro.obs.metrics import REGISTRY

try:  # ru_maxrss is POSIX-only; spans degrade to rss=0 elsewhere
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB (0 if unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":  # pragma: no cover - mac only
        return int(usage // 1024)
    return int(usage)


def _cpu_time() -> float:
    """CPU seconds consumed by the *current thread* (falls back to process)."""
    try:
        return time.thread_time()
    except AttributeError:  # pragma: no cover - very old platforms
        return time.process_time()


class Span:
    """One timed unit of work.

    Usable as a context manager::

        with Span("simulate", params, stage="simulate:apache/split/64/0.25",
                  origin="worker") as span:
            run(...)
        record = span.to_record()

    or via the explicit ``begin()`` / ``finish(status)`` pair when entry and
    exit happen in different callbacks (the :class:`SpanRecorder` case).
    Measurements are *deltas* relative to ``begin()``, except ``rss_peak_kib``
    which is the absolute process high-water mark at ``finish()`` — a peak
    cannot be diffed.
    """

    def __init__(self, kind: str, params: Optional[Dict[str, Any]] = None, *,
                 stage: Optional[str] = None, origin: str = "scheduler") -> None:
        self.kind = kind
        self.params = dict(params or {})
        self.stage = stage if stage is not None else kind
        self.origin = origin
        self.status = "pending"
        self.error: Optional[str] = None
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.rss_peak_kib = 0
        self.counter_deltas: Dict[str, float] = {}
        self.started_unix: Optional[float] = None
        self._wall0: Optional[float] = None
        self._cpu0 = 0.0
        self._counters0: Dict[str, float] = {}

    # -- lifecycle -------------------------------------------------------- #
    def begin(self) -> "Span":
        self.started_unix = time.time()
        self._counters0 = REGISTRY.counters_snapshot()
        self._cpu0 = _cpu_time()
        self._wall0 = time.perf_counter()
        return self

    def finish(self, status: str = "done", error: Optional[BaseException] = None) -> "Span":
        if self._wall0 is None:
            raise RuntimeError("Span.finish() before begin()")
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = _cpu_time() - self._cpu0
        self.rss_peak_kib = peak_rss_kib()
        after = REGISTRY.counters_snapshot()
        self.counter_deltas = {
            name: value - self._counters0.get(name, 0.0)
            for name, value in after.items()
            if value != self._counters0.get(name, 0.0)
        }
        self.status = status
        if error is not None:
            self.error = f"{type(error).__name__}: {error}"
        REGISTRY.histogram(f"stage.{self.kind}.wall_s").observe(self.wall_s)
        REGISTRY.histogram(f"stage.{self.kind}.cpu_s").observe(self.cpu_s)
        REGISTRY.counter(f"stage.{self.kind}.{status}").inc()
        return self

    def __enter__(self) -> "Span":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish("error" if exc is not None else "done", error=exc)

    # -- serialisation ---------------------------------------------------- #
    def to_record(self) -> Dict[str, Any]:
        """The JSON-safe dict persisted to ``spans.jsonl``."""
        record: Dict[str, Any] = {
            "stage": self.stage,
            "kind": self.kind,
            "origin": self.origin,
            "status": self.status,
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "rss_peak_kib": self.rss_peak_kib,
            "pid": os.getpid(),
        }
        if self.started_unix is not None:
            record["started_unix"] = round(self.started_unix, 6)
        if self.counter_deltas:
            record["counter_deltas"] = {
                k: round(v, 9) for k, v in sorted(self.counter_deltas.items())
            }
        if self.error is not None:
            record["error"] = self.error
        if self.params:
            record["params"] = _json_safe(self.params)
        return record


def _json_safe(value: Any) -> Any:
    """Coerce params to JSON-encodable structures (best effort)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class SpanRecorder:
    """PlanEvents-compatible hook set that turns stage events into spans.

    Duck-types ``on_stage_start`` / ``on_stage_finish`` / ``on_stage_error``
    (plus the no-op ``on_plan_start``) so ``execute_plan`` can compose it
    with user events.  Each finished span is handed to ``sink`` — typically
    ``TelemetryStore.append_span(run_id, ...)`` — as a record dict.

    A stage skipped because its dependency failed gets ``on_stage_finish``
    with *no* prior ``on_stage_start``; the pop-with-default below turns
    that into a zero-duration ``skipped`` span rather than a KeyError.
    """

    def __init__(self, sink=None) -> None:
        self._sink = sink
        self._open: Dict[str, Span] = {}
        self._lock = threading.Lock()
        self.records: list = []

    def on_plan_start(self, plan: Any, run_id: str) -> None:  # noqa: D401
        pass

    def on_stage_start(self, stage: Any) -> None:
        span = Span(stage.kind, getattr(stage, "params", None),
                    stage=stage.key, origin="scheduler").begin()
        with self._lock:
            self._open[stage.key] = span

    def on_stage_finish(self, stage: Any, status: str) -> None:
        self._settle(stage, status, None)

    def on_stage_error(self, stage: Any, error: BaseException) -> None:
        self._settle(stage, "failed", error)

    def _settle(self, stage: Any, status: str, error: Optional[BaseException]) -> None:
        with self._lock:
            span = self._open.pop(stage.key, None)
        if span is None:  # skipped dependents never started
            span = Span(stage.kind, getattr(stage, "params", None),
                        stage=stage.key, origin="scheduler").begin()
        span.finish(status, error=error)
        record = span.to_record()
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)


@contextlib.contextmanager
def maybe_profile(path: Optional[Any]) -> Iterator[None]:
    """cProfile the enclosed block into ``path`` (``None`` = do nothing).

    Used by the ``--profile`` flag: each profiled stage drops one ``.prof``
    file (loadable with ``pstats`` or ``snakeviz``) into the run's telemetry
    directory.  Dump failures are swallowed — profiling must never fail the
    stage it observes.
    """
    if path is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        try:
            profiler.dump_stats(str(path))
        except OSError as exc:  # pragma: no cover - disk full etc.
            import warnings

            warnings.warn(f"failed to write profile {path}: {exc}",
                          RuntimeWarning, stacklevel=2)
