"""A sqlite-backed run index over every on-disk observability source.

The telemetry store (PR 7) records what happened; this module makes it
*queryable*.  :class:`RunIndex` incrementally ingests four sources that
already live under the shared cache root:

* ``telemetry/<run_id>/manifest.json`` -> ``runs`` + ``stages`` rows
* ``telemetry/<run_id>/spans.jsonl``   -> ``spans`` rows (with the cell
  coordinates — workload, organisation, scale, warmup — lifted out of each
  span's ``params`` into real columns)
* ``dispatch/<run>/executed.log``      -> ``executions`` rows (the audit
  trail of which worker ran which item, attempt counts, durations)
* ``dispatch/workers/worker-*.json``   -> ``workers`` rows (the heartbeat
  records the worker daemons publish)
* ``v*/<kind>/<slug>.pkl``             -> ``artifacts`` rows (result-store
  metadata from ``stat`` alone — **no pickle is ever loaded**)

plus a ``cells`` view (worker-origin simulate spans joined to their runs)
that answers the questions ``repro report`` used to unpickle everything
for: "mean simulate wall time for OLTP at scale 256", "which cells failed
yesterday", "how many cells has this sweep produced".

Ingestion is incremental and idempotent: each source carries a fingerprint
(mtime+size for telemetry runs, a byte offset for append-only
``executed.log``) in the ``ingest_state`` table, unchanged sources are
skipped, and a changed telemetry run is deleted and re-inserted whole so
re-ingesting is always safe.  Corrupt rows follow the stores' policy —
warn and skip, never abort — and sources that vanish from disk have their
rows retired on the next ingest.

Layering: like the rest of ``repro.obs`` this module never imports
``repro.api``; it reads the dispatch directory as plain JSON/text files.
"""

from __future__ import annotations

import json
import os
import sqlite3
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cachedir import default_cache_root, disk_cache_disabled
from repro.obs.store import TelemetryStore

#: Subdirectory of the cache root holding the index database.
INDEX_SUBDIR = "index"

#: Bumping this drops and rebuilds the database on next open (the sources
#: on disk remain the ground truth; the index is always reconstructible).
SCHEMA_VERSION = 2

#: Span statuses that represent real work (mirrors ``observed_costs``).
_WORKED = ("done", "ran")

#: Stage statuses whose spans must not inform cost estimates.
_POISONED = ("failed", "skipped")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS ingest_state (
    source      TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    spec        TEXT,
    executor    TEXT,
    n_stages    INTEGER,
    started_at  TEXT,
    finished_at TEXT,
    wall_s      REAL,
    ok          INTEGER,
    profile     INTEGER
);
CREATE TABLE IF NOT EXISTS stages (
    run_id TEXT NOT NULL,
    stage  TEXT NOT NULL,
    kind   TEXT,
    status TEXT,
    PRIMARY KEY (run_id, stage)
);
CREATE TABLE IF NOT EXISTS spans (
    run_id       TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    stage        TEXT,
    kind         TEXT,
    origin       TEXT,
    status       TEXT,
    wall_s       REAL,
    cpu_s        REAL,
    rss_peak_kib INTEGER,
    pid          INTEGER,
    started_unix REAL,
    workload     TEXT,
    organisation TEXT,
    context      TEXT,
    scale        INTEGER,
    warmup       REAL,
    warm_start   INTEGER,
    error        TEXT,
    params       TEXT,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS artifacts (
    path       TEXT PRIMARY KEY,
    kind       TEXT,
    slug       TEXT,
    version    TEXT,
    size_bytes INTEGER,
    mtime      REAL
);
CREATE TABLE IF NOT EXISTS workers (
    worker            TEXT PRIMARY KEY,
    host              TEXT,
    pid               INTEGER,
    status            TEXT,
    item              TEXT,
    started_at        REAL,
    updated_at        REAL,
    heartbeat_seconds REAL,
    lease_seconds     REAL,
    executed          INTEGER,
    cached            INTEGER,
    failed            INTEGER,
    steals            INTEGER,
    quarantined       INTEGER,
    polls             INTEGER
);
CREATE TABLE IF NOT EXISTS executions (
    run_dir    TEXT NOT NULL,
    line       INTEGER NOT NULL,
    item       TEXT,
    worker     TEXT,
    attempt    INTEGER,
    started    TEXT,
    duration_s REAL,
    PRIMARY KEY (run_dir, line)
);
CREATE INDEX IF NOT EXISTS spans_kind ON spans (kind, origin, status);
CREATE INDEX IF NOT EXISTS spans_cell ON spans (workload, organisation);
CREATE VIEW IF NOT EXISTS cells AS
    SELECT s.run_id AS run_id, s.stage AS stage, s.workload AS workload,
           s.organisation AS organisation, s.scale AS scale,
           s.warmup AS warmup, s.warm_start AS warm_start,
           s.status AS status, s.wall_s AS wall_s,
           s.cpu_s AS cpu_s, r.spec AS spec, r.executor AS executor,
           r.started_at AS started_at
    FROM spans s JOIN runs r ON r.run_id = s.run_id
    WHERE s.kind = 'simulate' AND s.origin = 'worker';
"""

#: Queryable column whitelist per table (``repro query`` validates against
#: this, so user input never reaches SQL as an identifier).
TABLE_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "runs": ("run_id", "spec", "executor", "n_stages", "started_at",
             "finished_at", "wall_s", "ok", "profile"),
    "stages": ("run_id", "stage", "kind", "status"),
    "spans": ("run_id", "seq", "stage", "kind", "origin", "status",
              "wall_s", "cpu_s", "rss_peak_kib", "pid", "started_unix",
              "workload", "organisation", "context", "scale", "warmup",
              "warm_start", "error", "params"),
    "artifacts": ("path", "kind", "slug", "version", "size_bytes", "mtime"),
    "workers": ("worker", "host", "pid", "status", "item", "started_at",
                "updated_at", "heartbeat_seconds", "lease_seconds",
                "executed", "cached", "failed", "steals", "quarantined",
                "polls"),
    "executions": ("run_dir", "line", "item", "worker", "attempt",
                   "started", "duration_s"),
    "cells": ("run_id", "stage", "workload", "organisation", "scale",
              "warmup", "warm_start", "status", "wall_s", "cpu_s", "spec",
              "executor", "started_at"),
}

TABLE_NAMES: Tuple[str, ...] = tuple(TABLE_COLUMNS)

_OPS = {"=": "=", "!=": "!=", ">": ">", "<": "<", ">=": ">=", "<=": "<=",
        "~": "LIKE"}

_AGG_FNS = {"count": "COUNT", "sum": "SUM", "mean": "AVG", "min": "MIN",
            "max": "MAX"}


def _warn(message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _load_json_guarded(path: Path, what: str) -> Optional[Dict[str, Any]]:
    """Parse a JSON object file, warn-and-skip on any corruption."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        _warn(f"skipping corrupt {what} {path} ({exc})")
        return None
    if not isinstance(payload, dict):
        _warn(f"skipping corrupt {what} {path} (not an object)")
        return None
    return payload


def _as_float(value: Any) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _as_int(value: Any) -> Optional[int]:
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


class RunIndex:
    """The queryable sqlite index at ``<cache root>/index/runs.sqlite``."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.base = Path(root) if root is not None else default_cache_root()
        self.db_path = self.base / INDEX_SUBDIR / "runs.sqlite"

    # -- connection / schema ---------------------------------------------- #
    def _connect(self) -> sqlite3.Connection:
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.db_path, timeout=2.0)
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version != SCHEMA_VERSION:
                if version:  # stale schema: the sources rebuild everything
                    for row in conn.execute(
                            "SELECT type, name FROM sqlite_master "
                            "WHERE name NOT LIKE 'sqlite_%'").fetchall():
                        conn.execute(f"DROP {row[0]} IF EXISTS {row[1]}")
                conn.executescript(_SCHEMA)
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                conn.commit()
        except BaseException:
            conn.close()
            raise
        return conn

    # -- ingestion --------------------------------------------------------- #
    def ingest(self, full: bool = False) -> Dict[str, int]:
        """Bring the index up to date with the on-disk sources.

        Returns ``{"runs": ..., "spans": ..., "executions": ...,
        "artifacts": ..., "workers": ...}`` — the number of rows (re)written
        this call, so an unchanged tree ingests as all zeros.  ``full=True``
        ignores fingerprints and re-reads everything.
        """
        conn = self._connect()
        try:
            with conn:
                counts = {"runs": 0, "spans": 0, "executions": 0}
                self._ingest_telemetry(conn, counts, full)
                self._ingest_executions(conn, counts, full)
                counts["artifacts"] = self._ingest_artifacts(conn)
                counts["workers"] = self._ingest_workers(conn)
            return counts
        finally:
            conn.close()

    def _fingerprint(self, conn: sqlite3.Connection,
                     source: str) -> Optional[str]:
        row = conn.execute("SELECT fingerprint FROM ingest_state "
                           "WHERE source = ?", (source,)).fetchone()
        return row[0] if row else None

    def _set_fingerprint(self, conn: sqlite3.Connection, source: str,
                         fingerprint: str) -> None:
        conn.execute("INSERT OR REPLACE INTO ingest_state VALUES (?, ?)",
                     (source, fingerprint))

    def _ingest_telemetry(self, conn: sqlite3.Connection,
                          counts: Dict[str, int], full: bool) -> None:
        store = TelemetryStore(self.base)
        seen: List[str] = []
        run_dirs = (sorted(p for p in store.root.iterdir() if p.is_dir())
                    if store.root.is_dir() else [])
        for run_dir in run_dirs:
            run_id = run_dir.name
            manifest_path = store.manifest_path(run_id)
            spans_path = store.spans_path(run_id)
            try:
                mstat = manifest_path.stat()
                spans_size = (spans_path.stat().st_size
                              if spans_path.is_file() else 0)
            except OSError:
                continue  # torn down mid-scan; next ingest settles it
            seen.append(run_id)
            source = f"run:{run_id}"
            fingerprint = f"{mstat.st_mtime_ns}:{mstat.st_size}:{spans_size}"
            if not full and self._fingerprint(conn, source) == fingerprint:
                continue
            self._delete_run(conn, run_id)
            # load_manifest/load_spans warn on corruption themselves; the
            # fingerprint is recorded either way so an unchanged corrupt
            # run does not re-warn on every ingest.
            manifest = store.load_manifest(run_id)
            self._set_fingerprint(conn, source, fingerprint)
            if manifest is None:
                continue
            conn.execute(
                "INSERT OR REPLACE INTO runs VALUES (?,?,?,?,?,?,?,?,?)",
                (run_id, manifest.get("spec"), manifest.get("executor"),
                 _as_int(manifest.get("n_stages")),
                 manifest.get("started_at"), manifest.get("finished_at"),
                 _as_float(manifest.get("wall_s")),
                 None if manifest.get("ok") is None
                 else int(bool(manifest.get("ok"))),
                 None if manifest.get("profile") is None
                 else int(bool(manifest.get("profile")))))
            counts["runs"] += 1
            statuses = manifest.get("statuses")
            if isinstance(statuses, dict):
                conn.executemany(
                    "INSERT OR REPLACE INTO stages VALUES (?,?,?,?)",
                    [(run_id, str(stage), str(stage).split(":", 1)[0],
                      None if status is None else str(status))
                     for stage, status in statuses.items()])
            for seq, span in enumerate(store.load_spans(run_id)):
                params = span.get("params")
                if not isinstance(params, dict):
                    params = {}
                deltas = span.get("counter_deltas")
                if not isinstance(deltas, dict):
                    deltas = {}
                # 1 when the stage restored a shared-prefix checkpoint
                # (checkpoint subsystem counter), 0 when it ran cold, NULL
                # for span kinds where the question doesn't apply.
                warm = (None if span.get("kind") not in ("simulate", "prefix")
                        else int(bool(deltas.get(
                            "checkpoint_store.warm_starts"))))
                conn.execute(
                    "INSERT OR REPLACE INTO spans VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                    (run_id, seq, span.get("stage"), span.get("kind"),
                     span.get("origin"), span.get("status"),
                     _as_float(span.get("wall_s")),
                     _as_float(span.get("cpu_s")),
                     _as_int(span.get("rss_peak_kib")),
                     _as_int(span.get("pid")),
                     _as_float(span.get("started_unix")),
                     params.get("workload"), params.get("organisation"),
                     params.get("context"), _as_int(params.get("scale")),
                     _as_float(params.get("warmup")), warm,
                     span.get("error"),
                     json.dumps(params, sort_keys=True) if params else None))
                counts["spans"] += 1
        # Retire runs whose directories vanished (clear-cache, pruning).
        for (run_id,) in conn.execute("SELECT run_id FROM runs").fetchall():
            if run_id not in seen:
                self._delete_run(conn, run_id)
        for (source,) in conn.execute(
                "SELECT source FROM ingest_state "
                "WHERE source LIKE 'run:%'").fetchall():
            if source[len("run:"):] not in seen:
                conn.execute("DELETE FROM ingest_state WHERE source = ?",
                             (source,))

    def _delete_run(self, conn: sqlite3.Connection, run_id: str) -> None:
        for table in ("runs", "stages", "spans"):
            conn.execute(f"DELETE FROM {table} WHERE run_id = ?", (run_id,))

    def _ingest_executions(self, conn: sqlite3.Connection,
                           counts: Dict[str, int], full: bool) -> None:
        dispatch = self.base / "dispatch"
        seen: List[str] = []
        run_dirs = (sorted(p for p in dispatch.iterdir()
                           if p.is_dir() and p.name != "workers")
                    if dispatch.is_dir() else [])
        for run_dir in run_dirs:
            log = run_dir / "executed.log"
            if not log.is_file():
                continue
            seen.append(run_dir.name)
            source = f"log:{run_dir.name}"
            try:
                size = log.stat().st_size
            except OSError:
                continue
            state = self._fingerprint(conn, source)
            offset = int(state) if state and state.isdigit() else 0
            if full or offset > size:  # truncated/rewritten: start over
                conn.execute("DELETE FROM executions WHERE run_dir = ?",
                             (run_dir.name,))
                offset = 0
            if offset >= size:
                continue
            try:
                with open(log, "rb") as fh:
                    fh.seek(offset)
                    blob = fh.read()
            except OSError:
                continue
            end = blob.rfind(b"\n")
            if end < 0:
                continue  # no complete line appended yet
            dropped = 0
            pos = offset
            for raw in blob[:end + 1].split(b"\n")[:-1]:
                line_no, pos = pos, pos + len(raw) + 1
                row = self._parse_audit_line(raw)
                if row is None:
                    dropped += 1
                    continue
                conn.execute(
                    "INSERT OR REPLACE INTO executions VALUES "
                    "(?,?,?,?,?,?,?)", (run_dir.name, line_no) + row)
                counts["executions"] += 1
            if dropped:
                _warn(f"skipped {dropped} corrupt audit line"
                      f"{'' if dropped == 1 else 's'} in {log}")
            self._set_fingerprint(conn, source, str(offset + end + 1))
        for (run_dir,) in conn.execute(
                "SELECT DISTINCT run_dir FROM executions").fetchall():
            if run_dir not in seen:
                conn.execute("DELETE FROM executions WHERE run_dir = ?",
                             (run_dir,))
        for (source,) in conn.execute(
                "SELECT source FROM ingest_state "
                "WHERE source LIKE 'log:%'").fetchall():
            if source[len("log:"):] not in seen:
                conn.execute("DELETE FROM ingest_state WHERE source = ?",
                             (source,))

    @staticmethod
    def _parse_audit_line(
            raw: bytes) -> Optional[Tuple[str, Optional[str], Optional[int],
                                          Optional[str], Optional[float]]]:
        """``item-NNNN-kind.json worker=W attempt=N started=... duration_seconds=F``"""
        try:
            tokens = raw.decode().split()
        except UnicodeDecodeError:
            return None
        fields = dict(token.split("=", 1)
                      for token in tokens[1:] if "=" in token)
        # The first token is the item filename; a line without it (or
        # without a single k=v field) is torn or foreign — skip it.
        if not tokens or not tokens[0].endswith(".json") or not fields:
            return None
        return (tokens[0], fields.get("worker"),
                _as_int(fields.get("attempt")), fields.get("started"),
                _as_float(fields.get("duration_seconds")))

    def _ingest_artifacts(self, conn: sqlite3.Connection) -> int:
        """Stat-only rescan of the result store (cheap: no pickle loads)."""
        conn.execute("DELETE FROM artifacts")
        written = 0
        for path in sorted(self.base.glob("v*/*/*.pkl")):
            try:
                stat = path.stat()
            except OSError:
                continue
            version_dir, kind = path.parts[-3], path.parts[-2]
            conn.execute(
                "INSERT OR REPLACE INTO artifacts VALUES (?,?,?,?,?,?)",
                (str(path.relative_to(self.base)), kind, path.stem,
                 version_dir[1:], stat.st_size, stat.st_mtime))
            written += 1
        return written

    def _ingest_workers(self, conn: sqlite3.Connection) -> int:
        """Snapshot the worker heartbeat records (current fleet state)."""
        conn.execute("DELETE FROM workers")
        workers_dir = self.base / "dispatch" / "workers"
        written = 0
        if not workers_dir.is_dir():
            return 0
        for path in sorted(workers_dir.glob("worker-*.json")):
            record = _load_json_guarded(path, "worker record")
            if record is None or not record.get("worker"):
                continue
            conn.execute(
                "INSERT OR REPLACE INTO workers VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (str(record["worker"]), record.get("host"),
                 _as_int(record.get("pid")), record.get("status"),
                 record.get("item"), _as_float(record.get("started_at")),
                 _as_float(record.get("updated_at")),
                 _as_float(record.get("heartbeat_seconds")),
                 _as_float(record.get("lease_seconds")),
                 _as_int(record.get("executed")),
                 _as_int(record.get("cached")),
                 _as_int(record.get("failed")),
                 _as_int(record.get("steals")),
                 _as_int(record.get("quarantined")),
                 _as_int(record.get("polls"))))
            written += 1
        return written

    # -- queries ----------------------------------------------------------- #
    def query(self, table: str = "cells",
              where: Sequence[Tuple[str, str, Any]] = (),
              select: Optional[Sequence[str]] = None,
              group_by: Optional[Sequence[str]] = None,
              aggregates: Optional[Sequence[str]] = None,
              order_by: Optional[str] = None, descending: bool = False,
              limit: Optional[int] = None,
              ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        """Run a validated filter/aggregate and return ``(columns, rows)``.

        ``where`` is ``[(column, op, value), ...]`` with ops ``= != > <
        >= <= ~`` (``~`` is a substring LIKE).  ``aggregates`` entries are
        ``"count"`` or ``"<fn>:<column>"`` with fn in count/sum/mean/min/
        max.  Every identifier is checked against :data:`TABLE_COLUMNS`;
        anything unknown raises ``ValueError`` before touching SQL.
        """
        if table not in TABLE_COLUMNS:
            raise ValueError(f"unknown table {table!r}; "
                             f"expected one of {', '.join(TABLE_NAMES)}")
        columns = TABLE_COLUMNS[table]

        def check(name: str) -> str:
            if name not in columns:
                raise ValueError(f"unknown column {name!r} for table "
                                 f"{table!r}; expected one of "
                                 f"{', '.join(columns)}")
            return name

        agg_exprs: List[str] = []
        agg_labels: List[str] = []
        for spec in aggregates or ():
            fn, _, col = spec.partition(":")
            if fn not in _AGG_FNS:
                raise ValueError(f"unknown aggregate {spec!r}; expected "
                                 f"count or <fn>:<column> with fn in "
                                 f"{', '.join(_AGG_FNS)}")
            if fn == "count" and not col:
                agg_exprs.append("COUNT(*)")
                agg_labels.append("count")
            else:
                if not col:
                    raise ValueError(f"aggregate {spec!r} needs a column "
                                     f"({fn}:<column>)")
                agg_exprs.append(f"{_AGG_FNS[fn]}({check(col)})")
                agg_labels.append(f"{fn}_{col}")

        if group_by:
            out_cols = [check(c) for c in group_by]
            select_sql = ", ".join(out_cols + agg_exprs)
            out_labels = out_cols + (agg_labels or [])
            if not agg_exprs:
                select_sql += ", COUNT(*)"
                out_labels = out_cols + ["count"]
            group_sql = " GROUP BY " + ", ".join(out_cols)
        elif agg_exprs:
            select_sql = ", ".join(agg_exprs)
            out_labels = list(agg_labels)
            group_sql = ""
        else:
            out_cols = [check(c) for c in (select or columns)]
            select_sql = ", ".join(out_cols)
            out_labels = list(out_cols)
            group_sql = ""

        clauses: List[str] = []
        values: List[Any] = []
        for column, op, value in where:
            if op not in _OPS:
                raise ValueError(f"unknown operator {op!r}; expected one "
                                 f"of {', '.join(_OPS)}")
            clauses.append(f"{check(column)} {_OPS[op]} ?")
            values.append(f"%{value}%" if op == "~" else value)
        where_sql = (" WHERE " + " AND ".join(clauses)) if clauses else ""

        order_sql = ""
        if order_by:
            if order_by in out_labels:
                order_sql = f" ORDER BY {out_labels.index(order_by) + 1}"
            else:
                order_sql = f" ORDER BY {check(order_by)}"
            if descending:
                order_sql += " DESC"
        limit_sql = f" LIMIT {int(limit)}" if limit is not None else ""

        sql = (f"SELECT {select_sql} FROM {table}{where_sql}{group_sql}"
               f"{order_sql}{limit_sql}")
        conn = self._connect()
        try:
            rows = conn.execute(sql, values).fetchall()
        finally:
            conn.close()
        return out_labels, rows

    def observed_costs(self) -> Dict[str, Dict[str, float]]:
        """``{kind: {"mean_wall_s", "mean_cpu_s", "count"}}`` from the index.

        Matches :meth:`TelemetryStore.observed_costs` semantics — only
        spans that did real work, worker origin preferred over scheduler —
        plus the manifest-status filter: spans whose *stage* ultimately
        failed or was skipped are excluded, so one crashed run cannot
        poison the cost model with partial timings.
        """
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT s.kind, s.origin, SUM(s.wall_s), SUM(s.cpu_s), "
                "       COUNT(*) "
                "FROM spans s LEFT JOIN stages st "
                "  ON st.run_id = s.run_id AND st.stage = s.stage "
                "WHERE s.status IN (?, ?) AND s.kind IS NOT NULL "
                "  AND (st.status IS NULL OR st.status NOT IN (?, ?)) "
                "GROUP BY s.kind, s.origin",
                _WORKED + _POISONED).fetchall()
        finally:
            conn.close()
        buckets: Dict[str, Dict[str, Tuple[float, float, int]]] = {}
        for kind, origin, wall, cpu, n in rows:
            label = "worker" if origin == "worker" else "sched"
            prev = buckets.setdefault(kind, {}).get(label, (0.0, 0.0, 0))
            buckets[kind][label] = (prev[0] + (wall or 0.0),
                                    prev[1] + (cpu or 0.0), prev[2] + n)
        costs: Dict[str, Dict[str, float]] = {}
        for kind, origins in buckets.items():
            wall, cpu, n = origins.get("worker") or origins["sched"]
            costs[kind] = {"mean_wall_s": wall / n, "mean_cpu_s": cpu / n,
                           "count": n}
        return costs

    def counts(self) -> Dict[str, int]:
        """Row counts per table (cheap health overview)."""
        conn = self._connect()
        try:
            return {table: conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                for table in TABLE_NAMES if table != "cells"}
        finally:
            conn.close()

    # -- maintenance (store protocol shared with the other stores) --------- #
    def entries(self) -> List[Path]:
        return [self.db_path] if self.db_path.is_file() else []

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Drop the database; returns 1 if one existed (it rebuilds lazily)."""
        existed = int(self.db_path.is_file())
        try:
            self.db_path.unlink()
        except OSError:
            pass
        return existed

    def describe(self) -> str:
        if not self.db_path.is_file():
            return f"run index {self.db_path}: empty"
        try:
            counts = self.counts()
        except sqlite3.Error:
            return f"run index {self.db_path}: unreadable"
        return (f"run index {self.db_path}: {counts['runs']} "
                f"run{'' if counts['runs'] == 1 else 's'}, "
                f"{counts['spans']} spans, {counts['artifacts']} artifacts, "
                f"{counts['executions']} executions, "
                f"{self.size_bytes() / 1024:.1f} KiB")


def get_run_index(cache_dir: Optional[os.PathLike] = None
                  ) -> Optional[RunIndex]:
    """The run index for ``cache_dir``, or ``None`` when disk is off."""
    if disk_cache_disabled():
        return None
    return RunIndex(cache_dir)
