"""Persistent run telemetry: one directory per executed plan.

Layout, alongside the other stores under the shared cache root::

    <root>/telemetry/
        <run_id>/
            manifest.json       # spec name, executor, stage census, outcome
            spans.jsonl         # one span record per line, O_APPEND
            <stage>.prof        # per-stage cProfile dumps (--profile only)

``run_id`` is ``<UTC compact timestamp>-<pid>-<hex>`` so a plain sorted
listing is chronological and concurrent runs on one host never collide.
Span lines are written with a single ``os.write`` on an ``O_APPEND`` fd —
the same atomic-append discipline ``executed.log`` uses — so the dispatch
backend's embedded workers and a remote ``repro worker`` fleet can all
append to one run's ``spans.jsonl`` without interleaving partial lines.

Corruption policy matches the other stores: a manifest that fails to parse
is warned about and the run treated as absent; a torn or corrupt span line
is warned about and dropped, the remaining lines still load.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cachedir import default_cache_root, disk_cache_disabled

#: Subdirectory of the cache root holding per-run telemetry.
TELEMETRY_SUBDIR = "telemetry"

#: Manifest schema version (bump orphans old runs rather than misreading them).
TELEMETRY_VERSION = 1

_run_counter = 0


def new_run_id() -> str:
    """A chronologically sortable, collision-resistant run identifier."""
    global _run_counter
    _run_counter += 1
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{_run_counter:03d}-{os.urandom(3).hex()}"


def iso_utc(unix: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (second precision, ``Z`` suffix)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ",
                         time.gmtime(unix if unix is not None else time.time()))


def _safe_filename(name: str) -> str:
    """A filesystem-safe rendering of a stage key (for ``.prof`` files)."""
    return "".join(c if c.isalnum() or c in ".-_=" else "_" for c in name)


class TelemetryStore:
    """Directory-per-run telemetry under ``<cache root>/telemetry``."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        base = Path(root) if root is not None else default_cache_root()
        self.root = base / TELEMETRY_SUBDIR

    # -- paths ----------------------------------------------------------- #
    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "manifest.json"

    def spans_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "spans.jsonl"

    def profile_path(self, run_id: str, stage_key: str) -> Path:
        return self.run_dir(run_id) / f"{_safe_filename(stage_key)}.prof"

    # -- run lifecycle ---------------------------------------------------- #
    def create_run(self, manifest: Dict[str, Any],
                   run_id: Optional[str] = None) -> str:
        """Create a run directory and write its initial manifest."""
        run_id = run_id or new_run_id()
        path = self.run_dir(run_id)
        path.mkdir(parents=True, exist_ok=True)
        payload = {"version": TELEMETRY_VERSION, "run_id": run_id,
                   "started_at": iso_utc(), **manifest}
        self._write_manifest(run_id, payload)
        return run_id

    def update_manifest(self, run_id: str, **fields: Any) -> None:
        """Merge ``fields`` into the run's manifest (no-op if run vanished)."""
        manifest = self.load_manifest(run_id)
        if manifest is None:
            return
        manifest.update(fields)
        self._write_manifest(run_id, manifest)

    def _write_manifest(self, run_id: str, payload: Dict[str, Any]) -> None:
        path = self.manifest_path(run_id)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def load_manifest(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The run's manifest, or ``None`` (warn-and-drop on corruption)."""
        path = self.manifest_path(run_id)
        if not path.is_file():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            warnings.warn(f"dropping corrupt telemetry manifest {path} "
                          f"({exc})", RuntimeWarning, stacklevel=2)
            return None
        if not isinstance(manifest, dict):
            warnings.warn(f"dropping corrupt telemetry manifest {path} "
                          f"(not an object)", RuntimeWarning, stacklevel=2)
            return None
        return manifest

    # -- spans ------------------------------------------------------------ #
    def append_span(self, run_id: str, record: Dict[str, Any]) -> None:
        """Append one span record to the run's JSONL (atomic single write)."""
        path = self.spans_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def span_sink(self, run_id: str):
        """A ``record -> None`` callable bound to one run (SpanRecorder sink)."""
        def sink(record: Dict[str, Any]) -> None:
            self.append_span(run_id, record)
        return sink

    def load_spans(self, run_id: str) -> List[Dict[str, Any]]:
        """All parseable span records of a run (corrupt lines warn-and-drop)."""
        path = self.spans_path(run_id)
        if not path.is_file():
            return []
        spans: List[Dict[str, Any]] = []
        dropped = 0
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if isinstance(record, dict):
                spans.append(record)
            else:
                dropped += 1
        if dropped:
            warnings.warn(f"dropped {dropped} corrupt span line"
                          f"{'' if dropped == 1 else 's'} in {path}",
                          RuntimeWarning, stacklevel=2)
        return spans

    # -- queries ----------------------------------------------------------- #
    def runs(self) -> List[str]:
        """All run ids with a readable manifest, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and self.load_manifest(p.name) is not None)

    def last_run_id(self) -> Optional[str]:
        """The most recently *started* run, by manifest timestamp.

        Run ids sort chronologically only within one process (the embedded
        counter breaks ties); across processes — and after a reader updates
        a directory's mtime — the manifest's ``started_at`` is the ground
        truth.  Ties (same second) fall back to the run id, which keeps the
        within-process counter order.
        """
        runs = self.runs()
        if not runs:
            return None
        def started(run_id: str) -> tuple:
            manifest = self.load_manifest(run_id) or {}
            return (str(manifest.get("started_at", "")), run_id)
        return max(runs, key=started)

    def observed_costs(self) -> Dict[str, Dict[str, float]]:
        """Mean observed cost per stage kind across all recorded runs.

        Returns ``{kind: {"mean_wall_s", "mean_cpu_s", "count"}}`` built from
        worker-origin spans (actual compute) with scheduler-origin spans as
        the fallback for kinds that only ever ran inline.  This is what
        ``repro spec plan`` annotates stages with and what the cost-aware
        scheduler orders ready stages by.

        Answered from the sqlite :class:`~repro.obs.index.RunIndex` (an
        incremental ingest then one aggregate query) with a direct JSONL
        scan as the fallback if the index is unavailable (e.g. the database
        is locked by a concurrent ingest); both paths exclude spans whose
        stage ultimately failed or was skipped.
        """
        try:
            from repro.obs.index import RunIndex
            index = RunIndex(self.root.parent)
            index.ingest()
            return index.observed_costs()
        except Exception:
            return self._observed_costs_scan()

    def _observed_costs_scan(self) -> Dict[str, Dict[str, float]]:
        """The index-free fallback: scan every run's manifest + JSONL."""
        sums: Dict[str, Dict[str, float]] = {}
        for run_id in self.runs():
            manifest = self.load_manifest(run_id) or {}
            statuses = manifest.get("statuses")
            if not isinstance(statuses, dict):
                statuses = {}
            for span in self.load_spans(run_id):
                # Only stages that did real work inform the cost model:
                # "ran" is the scheduler/stage status, "done" the generic
                # span status; cached/skipped/failed spans would skew means.
                if span.get("status") not in ("done", "ran"):
                    continue
                # A span can report success while its stage later failed
                # (e.g. a retried dispatch attempt); the manifest's final
                # stage status is authoritative for the cost model.
                if statuses.get(span.get("stage")) in ("failed", "skipped"):
                    continue
                kind = span.get("kind")
                if not kind:
                    continue
                origin = span.get("origin", "scheduler")
                bucket = sums.setdefault(kind, {
                    "worker_wall": 0.0, "worker_cpu": 0.0, "worker_n": 0.0,
                    "sched_wall": 0.0, "sched_cpu": 0.0, "sched_n": 0.0})
                prefix = "worker" if origin == "worker" else "sched"
                bucket[f"{prefix}_wall"] += float(span.get("wall_s", 0.0))
                bucket[f"{prefix}_cpu"] += float(span.get("cpu_s", 0.0))
                bucket[f"{prefix}_n"] += 1
        costs: Dict[str, Dict[str, float]] = {}
        for kind, b in sums.items():
            prefix = "worker" if b["worker_n"] else "sched"
            n = b[f"{prefix}_n"]
            if not n:
                continue
            costs[kind] = {"mean_wall_s": b[f"{prefix}_wall"] / n,
                           "mean_cpu_s": b[f"{prefix}_cpu"] / n,
                           "count": int(n)}
        return costs

    # -- maintenance (store protocol shared with the other stores) --------- #
    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir() if p.is_dir())

    def size_bytes(self) -> int:
        return sum(f.stat().st_size
                   for run in self.entries()
                   for f in run.iterdir() if f.is_file())

    def clear(self) -> int:
        """Remove every run directory; returns the number of runs removed."""
        removed = len(self.entries())
        for run in self.entries():
            shutil.rmtree(run, ignore_errors=True)
        return removed

    def describe(self) -> str:
        n = len(self.entries())
        return (f"telemetry store {self.root}: {n} "
                f"run{'' if n == 1 else 's'}, "
                f"{self.size_bytes() / 1024:.1f} KiB")


def get_telemetry_store(
        cache_dir: Optional[os.PathLike] = None) -> Optional[TelemetryStore]:
    """The telemetry store for ``cache_dir``, or ``None`` when disk is off.

    Unlike the other stores' getters this does not route through the default
    session: worker processes construct it straight from the ``cache_dir``
    carried in a work item's config, keeping ``repro.obs`` free of any
    ``repro.api`` import.
    """
    if disk_cache_disabled():
        return None
    return TelemetryStore(cache_dir)
