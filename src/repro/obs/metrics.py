"""The unified metrics registry: named counters, gauges, and histograms.

Before this module existed the codebase had three disconnected module-level
``STATS`` dataclasses — :data:`repro.trace.store.STATS`,
:data:`repro.checkpoint.store.STATS`, and
:data:`repro.workloads.base.GENERATION_STATS` — each invented independently and each
snapshotable only by importing its module and reading its fields.  The
:class:`MetricsRegistry` unifies them: the dataclasses stay exactly as they
are (so every existing ``STATS.hits += 1`` site and every test asserting on
them keeps working, attribute for attribute) but they *register* themselves
here at import time, and :meth:`MetricsRegistry.snapshot` renders everything
— registered stats objects plus first-class counters/gauges/histograms — as
one flat ``{"section.field": number}`` dict.  That dict is what
``GET /metrics`` on ``repro serve`` returns and what span records diff to
report per-stage store-counter deltas.

Design constraints:

* **Zero overhead on the hot paths.**  The stats dataclasses are read at
  snapshot time only; their increment sites are untouched plain attribute
  writes.  First-class metrics are used by the span layer (per stage, not
  per access), so a lock per observation is fine.
* **Stdlib only, no background threads.**  A registry is a dictionary with
  opinions, not an agent.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import deque
from typing import Any, Dict, Iterable, Optional, Tuple


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Running count/sum/min/max/mean plus p50/p95 over observed values.

    Deliberately not bucketed: the consumers (span summaries, ``/metrics``)
    want headline aggregates, so instead of bucket state the histogram
    keeps a sliding window of the most recent :data:`SAMPLE_SIZE`
    observations and derives p50/p95 from it at snapshot time
    (nearest-rank over the sorted window).  Full per-span values still
    live in the telemetry JSONL for exact offline percentiles.
    """

    #: Recent observations retained for percentile estimates.
    SAMPLE_SIZE = 512

    __slots__ = ("name", "count", "total", "min", "max", "_lock", "_sample")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: deque = deque(maxlen=self.SAMPLE_SIZE)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the recent-observation window."""
        with self._lock:
            sample = sorted(self._sample)
        if not sample:
            return 0.0
        rank = math.ceil(q / 100.0 * len(sample))
        return sample[min(len(sample), max(rank, 1)) - 1]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = self.max = None
            self._sample.clear()

    def snapshot(self) -> Dict[str, float]:
        return {f"{self.name}.count": self.count,
                f"{self.name}.sum": round(self.total, 9),
                f"{self.name}.min": self.min if self.min is not None else 0.0,
                f"{self.name}.max": self.max if self.max is not None else 0.0,
                f"{self.name}.mean": round(self.mean, 9),
                f"{self.name}.p50": round(self.percentile(50), 9),
                f"{self.name}.p95": round(self.percentile(95), 9)}


def _numeric_fields(obj: Any) -> Iterable[Tuple[str, float]]:
    """The ``(name, value)`` pairs of an object's numeric attributes."""
    if dataclasses.is_dataclass(obj):
        names = [f.name for f in dataclasses.fields(obj)]
    else:  # plain objects: public instance attributes
        names = [n for n in vars(obj) if not n.startswith("_")]
    for name in names:
        value = getattr(obj, name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        yield name, value


class MetricsRegistry:
    """One namespace for every metric in the process.

    Three kinds of members:

    * ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` — get-or-
      create first-class metrics (spans observe their durations here).
    * ``register_stats(section, obj)`` — adopt an existing stats object
      (dataclass or plain object); its numeric fields appear in snapshots
      as ``<section>.<field>``.  The object itself stays the module-level
      singleton it always was — registration is an alias, not a move — so
      registering is free on the increment path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._stats: Dict[str, Any] = {}

    # -- first-class metrics --------------------------------------------- #
    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name))

    # -- adopted stats objects ------------------------------------------- #
    def register_stats(self, section: str, obj: Any) -> Any:
        """Expose ``obj``'s numeric fields as ``<section>.<field>``.

        Re-registering a section replaces the previous object (import
        reloads and test doubles), and returns ``obj`` so the call can wrap
        a module-level assignment.
        """
        with self._lock:
            self._stats[section] = obj
        return obj

    def stats_object(self, section: str) -> Optional[Any]:
        return self._stats.get(section)

    # -- snapshots -------------------------------------------------------- #
    def counters_snapshot(self) -> Dict[str, float]:
        """Counters and stats fields only — the monotonic, diffable subset.

        This is what :class:`~repro.obs.span.Span` diffs before/after a
        stage to report store-counter deltas; histograms and gauges are
        excluded because they are not meaningful as differences (and the
        span layer itself writes histograms, which would self-observe).
        """
        out: Dict[str, float] = {}
        for section, obj in list(self._stats.items()):
            for name, value in _numeric_fields(obj):
                out[f"{section}.{name}"] = value
        for name, counter in list(self._counters.items()):
            out[name] = counter.value
        return out

    def snapshot(self) -> Dict[str, float]:
        """Every metric in the process as one flat name -> number dict."""
        out = self.counters_snapshot()
        for name, gauge in list(self._gauges.items()):
            out[name] = gauge.value
        for _name, histogram in list(self._histograms.items()):
            out.update(histogram.snapshot())
        return out

    def reset(self) -> None:
        """Zero every metric (tests); stats objects reset via their own API."""
        with self._lock:
            members = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values())
                       + [obj for obj in self._stats.values()
                          if hasattr(obj, "reset")])
        for member in members:
            member.reset()


#: The process-wide registry every subsystem registers into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` (module-level singleton)."""
    return REGISTRY
