"""Trace capture/replay: a persistence layer between workloads and systems.

Re-simulating a configuration used to re-run the Python workload generators
even though the access stream is fully determined by
``(workload, n_cpus, seed, size)``.  This package captures that stream the
first time it is generated and replays it from a compact columnar on-disk
format afterwards — any warm-up fraction, cache scale, or prefetcher study
over the same stream skips generation entirely.

* :mod:`~repro.trace.format` — versioned columnar encoding (parallel numpy
  arrays in compressed epoch segments) and :class:`ColumnarChunk`, the
  vectorised in-memory unit the system models' fast path consumes.
* :mod:`~repro.trace.capture` — streaming :class:`CaptureWriter` and the
  :func:`capture_stream` tee (capture as a side effect of a first run).
* :mod:`~repro.trace.replay` — :class:`TraceReader`: epoch chunks, flat
  ``Access`` iteration, random access to single epochs.
* :mod:`~repro.trace.store` — :class:`TraceStore`, content-addressed under
  the shared ``REPRO_CACHE_DIR`` root, with process-wide hit/miss counters.
* :mod:`~repro.trace.epoch` — :class:`EpochSummary` map/merge, the unit of
  epoch-sharded parallelism (see ``ParallelSuiteRunner.summarize_trace``).
"""

from .capture import CaptureWriter, capture_stream
from .epoch import (EpochSummary, merge_summaries, summarize_chunk,
                    summarize_trace, summarize_trace_epoch)
from .format import (ColumnarChunk, DEFAULT_EPOCH_SIZE, FunctionTable,
                     TRACE_FORMAT_VERSION, TraceMeta)
from .replay import TraceCorruptError, TraceReader, is_trace_dir
from .store import (STATS, TraceStore, TraceStoreStats, get_trace_store,
                    trace_params)

__all__ = [
    "CaptureWriter", "ColumnarChunk", "DEFAULT_EPOCH_SIZE", "EpochSummary",
    "FunctionTable", "STATS", "TRACE_FORMAT_VERSION", "TraceCorruptError",
    "TraceMeta", "TraceReader", "TraceStore", "TraceStoreStats",
    "capture_stream", "get_trace_store", "is_trace_dir", "merge_summaries",
    "summarize_chunk", "summarize_trace", "summarize_trace_epoch",
    "trace_params",
]
