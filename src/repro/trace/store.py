"""Content-addressed on-disk store of captured access traces.

Sits alongside the analysis-bundle store under the same cache root::

    <root>/traces/v<format>-<package version>/<param slug>-<digest>/
        meta.json
        seg-00000.npz
        ...

A trace is keyed by everything that determines the access stream —
``(workload, n_cpus, seed, size)`` — *not* by warm-up fraction, cache scale,
or system organisation beyond its CPU count: any simulation over the same
stream replays the same trace.  Entries are namespaced by the trace format
version **and** the package version (workload generator semantics change
with releases), so either bump orphans old traces rather than replaying
stale streams.

Module-level :data:`STATS` counts hits/misses/captures for this process;
tests and the CLI use it to prove a run was served from disk instead of
re-generating.
"""

from __future__ import annotations

import os
import shutil
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from .. import __version__
from ..cachedir import default_cache_root, params_slug
from ..mem.records import Access
from ..obs.metrics import REGISTRY
from .capture import CaptureWriter, capture_stream
from .format import DEFAULT_EPOCH_SIZE, TRACE_FORMAT_VERSION
from .replay import TraceCorruptError, TraceReader, is_trace_dir

#: Subdirectory of the cache root holding all trace versions.
TRACES_SUBDIR = "traces"


@dataclass
class TraceStoreStats:
    """Process-wide counters over every :class:`TraceStore` instance."""

    hits: int = 0
    misses: int = 0
    captures: int = 0
    #: Traces written by the ingest subsystem (``repro trace import``).
    imports: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.captures = self.imports = 0


#: Shared counters (all stores in this process).  Registered into the
#: unified metrics registry as the ``trace_store.*`` section; the module
#: attribute stays the canonical increment site.
STATS = REGISTRY.register_stats("trace_store", TraceStoreStats())


def trace_params(workload: str, n_cpus: int, seed: int,
                 size: str) -> Dict[str, Any]:
    """The canonical key of one access stream."""
    return {"workload": workload, "n_cpus": n_cpus, "seed": seed,
            "size": size}


class TraceStore:
    """Directory-per-trace store under ``<cache root>/traces``."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        base = Path(root) if root is not None else default_cache_root()
        self.root = base / TRACES_SUBDIR
        self.version = f"{TRACE_FORMAT_VERSION}-{__version__}"

    # ------------------------------------------------------------------ #
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, params: Dict[str, Any]) -> Path:
        """The directory a trace with ``params`` lives at."""
        return self.version_dir / params_slug(params)

    def contains(self, params: Dict[str, Any]) -> bool:
        return is_trace_dir(self.path_for(params))

    # ------------------------------------------------------------------ #
    def open(self, params: Dict[str, Any]) -> Optional[TraceReader]:
        """A reader for the stored trace, or ``None`` on miss.

        A corrupt entry (unreadable header, format-version mismatch) is
        dropped with a warning and treated as a miss so the next capture
        replaces it instead of a stale entry failing every later run.
        Segment files are validated lazily on decode; a consumer that hits
        a corrupt segment mid-replay should :meth:`drop` the trace and fall
        back to generation (see the experiment runner).
        """
        path = self.path_for(params)
        if not is_trace_dir(path):
            STATS.misses += 1
            return None
        try:
            reader = TraceReader(path)
        except TraceCorruptError as exc:
            warnings.warn(
                f"dropping corrupt trace {path} ({exc}); the stream will be "
                f"re-generated and re-captured", RuntimeWarning, stacklevel=2)
            shutil.rmtree(path, ignore_errors=True)
            STATS.misses += 1
            return None
        STATS.hits += 1
        return reader

    def drop(self, params: Dict[str, Any]) -> bool:
        """Remove one stored trace (corrupt-segment recovery); True if it existed."""
        path = self.path_for(params)
        existed = path.is_dir()
        shutil.rmtree(path, ignore_errors=True)
        return existed

    def writer(self, params: Dict[str, Any],
               epoch_size: int = DEFAULT_EPOCH_SIZE) -> CaptureWriter:
        """A staged :class:`CaptureWriter` publishing at ``path_for(params)``."""
        return CaptureWriter(self.path_for(params), params,
                             epoch_size=epoch_size)

    def capture(self, accesses: Iterable[Access], params: Dict[str, Any],
                epoch_size: int = DEFAULT_EPOCH_SIZE) -> Iterator[Access]:
        """Tee ``accesses`` into the store; yields the stream unchanged.

        The trace is committed when the stream is exhausted (see
        :func:`~repro.trace.capture.capture_stream`).
        """
        STATS.captures += 1
        return capture_stream(accesses, self.writer(params,
                                                    epoch_size=epoch_size))

    # ------------------------------------------------------------------ #
    def entries(self) -> List[Path]:
        """All committed trace directories across every version."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("v*/*")
                      if p.is_dir() and is_trace_dir(p))

    def size_bytes(self) -> int:
        return sum(f.stat().st_size
                   for trace in self.entries()
                   for f in trace.iterdir() if f.is_file())

    def clear(self) -> int:
        """Remove every version directory; returns the number of traces."""
        removed = len(self.entries())
        if self.root.is_dir():
            for child in self.root.glob("v*"):
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    def describe(self) -> str:
        n = len(self.entries())
        return (f"trace store {self.root} (current version "
                f"v{self.version}): {n} trace{'' if n == 1 else 's'}, "
                f"{self.size_bytes() / 1024:.1f} KiB")


def get_trace_store(cache_dir: Optional[str] = None) -> Optional[TraceStore]:
    """The trace store to use, or ``None`` when disk caching is disabled.

    Thin delegate to the default :class:`~repro.api.session.Session`'s
    trace store; ``cache_dir`` overrides the root for this store only.
    """
    from ..api.session import get_default_session
    session = get_default_session()
    if cache_dir:
        session = session.with_options(cache_dir=cache_dir)
    return session.trace_store
