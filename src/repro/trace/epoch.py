"""Per-epoch summaries: the map/merge unit of epoch-sharded trace work.

The streaming runner's *counting pass* — everything about an access stream
that must be known before simulating it (length, instruction total, CPU
population, kind mix) — decomposes perfectly over a trace's epoch segments:
summarise each epoch independently (:func:`summarize_chunk`), then fold the
partial summaries together **in epoch order** (:func:`merge_summaries`), so
the merged result is deterministic no matter which order a process pool
completed the epochs in.

:func:`summarize_trace_epoch` is the module-level pool entry point: a worker
opens the trace directory, decodes exactly one segment, and returns its
summary (see :meth:`repro.experiments.parallel.ParallelSuiteRunner.summarize_trace`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..mem.records import AccessKind
from .format import ColumnarChunk
from .replay import TraceReader


@dataclass
class EpochSummary:
    """Deterministic aggregate of one epoch (or a merged run of epochs)."""

    #: Index of the first and last epoch covered (inclusive); (-1, -1) empty.
    first_epoch: int = -1
    last_epoch: int = -1
    n_accesses: int = 0
    #: Sum of ``icount`` over CPU-issued accesses.
    instructions: int = 0
    #: accesses per AccessKind value.
    kind_counts: Dict[int, int] = field(default_factory=dict)
    #: accesses per issuing CPU (-1 collects DMA operations).
    cpu_counts: Dict[int, int] = field(default_factory=dict)
    #: Distinct cache blocks touched *within* the summarised epochs.  Merging
    #: sums the per-epoch counts (an upper bound on the union — exact
    #: dedup across epochs would need the block sets themselves).
    distinct_blocks: int = 0

    def merge(self, other: "EpochSummary") -> "EpochSummary":
        """Fold ``other`` (the next run of epochs) into this one."""
        if other.n_accesses == 0 and other.first_epoch < 0:
            return self
        if self.first_epoch < 0:
            self.first_epoch = other.first_epoch
        self.last_epoch = max(self.last_epoch, other.last_epoch)
        self.n_accesses += other.n_accesses
        self.instructions += other.instructions
        for kind, count in other.kind_counts.items():
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + count
        for cpu, count in other.cpu_counts.items():
            self.cpu_counts[cpu] = self.cpu_counts.get(cpu, 0) + count
        self.distinct_blocks += other.distinct_blocks
        return self

    def describe(self) -> str:
        kinds = ", ".join(
            f"{AccessKind(kind).name.lower()}={count:,}"
            for kind, count in sorted(self.kind_counts.items()))
        cpus = sorted(c for c in self.cpu_counts if c >= 0)
        span = (f"epochs {self.first_epoch}..{self.last_epoch}"
                if self.first_epoch >= 0 else "empty")
        return (f"{span}: {self.n_accesses:,} accesses, "
                f"{self.instructions:,} instructions, "
                f"{len(cpus)} cpus, ~{self.distinct_blocks:,} blocks "
                f"[{kinds}]")


def summarize_chunk(chunk: ColumnarChunk,
                    block_bits: int = 6) -> EpochSummary:
    """Summarise one decoded epoch chunk (vectorised, no Access objects)."""
    cpu = chunk.columns["cpu"]
    kind = chunk.columns["kind"]
    kinds, kind_counts = np.unique(kind, return_counts=True)
    cpus, cpu_counts = np.unique(cpu, return_counts=True)
    blocks = chunk.block_addresses(block_bits)
    return EpochSummary(
        first_epoch=chunk.epoch,
        last_epoch=chunk.epoch,
        n_accesses=len(chunk),
        instructions=chunk.recorded_instructions(),
        kind_counts={int(k): int(n) for k, n in zip(kinds, kind_counts)},
        cpu_counts={int(c): int(n) for c, n in zip(cpus, cpu_counts)},
        distinct_blocks=int(np.unique(blocks).size),
    )


def merge_summaries(summaries: Iterable[Tuple[int, EpochSummary]]
                    ) -> EpochSummary:
    """Fold ``(epoch_index, summary)`` pairs deterministically.

    Pairs may arrive in any order (e.g. pool completion order); they are
    sorted by epoch index before folding, so the merged summary is a pure
    function of the trace.
    """
    merged = EpochSummary()
    for _, summary in sorted(summaries, key=lambda pair: pair[0]):
        merged.merge(summary)
    return merged


def summarize_trace_epoch(trace_path: os.PathLike, epoch_index: int,
                          block_bits: int = 6) -> Tuple[int, EpochSummary]:
    """Pool worker: summarise exactly one epoch of the trace at ``trace_path``."""
    reader = TraceReader(trace_path)
    return epoch_index, summarize_chunk(reader.epoch(epoch_index),
                                        block_bits=block_bits)


def summarize_trace(reader: TraceReader,
                    block_bits: int = 6) -> EpochSummary:
    """Sequential whole-trace summary (the reference the parallel path must match)."""
    return merge_summaries(
        (chunk.epoch, summarize_chunk(chunk, block_bits=block_bits))
        for chunk in reader.iter_epochs())


def boundary_at_or_before(segments: List[Dict[str, int]],
                          access_count: int) -> int:
    """The largest epoch boundary whose prefix fits within ``access_count``.

    ``segments`` is ``TraceMeta.segments``; the return value ``e`` satisfies
    ``sum(seg["n"] for seg in segments[:e]) <= access_count`` and is maximal
    (0 when not even the first epoch fits).  The shared-prefix planner uses
    this to turn a warm-up access count into the last epoch boundary whose
    snapshot is still warmup-independent.
    """
    boundary = 0
    consumed = 0
    for index, segment in enumerate(segments):
        consumed += int(segment["n"])
        if consumed > access_count:
            break
        boundary = index + 1
    return boundary
