"""Replay captured columnar traces as access streams or epoch chunks.

:class:`TraceReader` opens a trace directory written by
:class:`~repro.trace.capture.CaptureWriter` and exposes three views:

* :meth:`~TraceReader.iter_epochs` — one :class:`~repro.trace.format.ColumnarChunk`
  per epoch segment, decoded lazily (O(epoch) memory).  This is the fast
  path: the system models consume the chunks' vectorised block-address
  columns directly, and parallel consumers can map over epochs.
* :meth:`~TraceReader.iter_accesses` — a flat iterator of reconstructed
  :class:`~repro.mem.records.Access` records, drop-in compatible with
  ``Workload.iter_accesses()``.
* :meth:`~TraceReader.epoch` — random access to one epoch, which is what a
  per-epoch pool worker loads (nothing else is touched).
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..mem.records import Access
from .format import (ColumnarChunk, META_NAME, TRACE_FORMAT_VERSION,
                     TraceMeta, read_segment, segment_name)


class TraceCorruptError(RuntimeError):
    """A trace directory is unreadable or inconsistent with its header."""


def is_trace_dir(path: os.PathLike) -> bool:
    """True when ``path`` looks like a committed trace directory."""
    return (Path(path) / META_NAME).is_file()


class TraceReader:
    """Read-only view of one committed columnar trace directory."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        try:
            self.meta = TraceMeta.load(self.path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise TraceCorruptError(f"unreadable trace {self.path}: {exc}") \
                from exc
        if self.meta.format_version != TRACE_FORMAT_VERSION:
            raise TraceCorruptError(
                f"trace {self.path} has format version "
                f"{self.meta.format_version}, expected {TRACE_FORMAT_VERSION}")

    # ------------------------------------------------------------------ #
    @property
    def params(self) -> Dict[str, object]:
        return self.meta.params

    @property
    def n_accesses(self) -> int:
        return self.meta.n_accesses

    @property
    def instructions(self) -> int:
        return self.meta.instructions

    @property
    def n_epochs(self) -> int:
        return self.meta.n_epochs

    def __len__(self) -> int:
        return self.meta.n_accesses

    # ------------------------------------------------------------------ #
    def epoch(self, index: int) -> ColumnarChunk:
        """Decode one epoch segment into a :class:`ColumnarChunk`."""
        if not 0 <= index < self.meta.n_epochs:
            raise IndexError(f"epoch {index} out of range "
                             f"[0, {self.meta.n_epochs})")
        path = self.path / segment_name(index)
        try:
            columns = read_segment(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise TraceCorruptError(
                f"unreadable segment {path}: {exc}") from exc
        chunk = ColumnarChunk(columns=columns, functions=self.meta.functions,
                              epoch=index)
        expected = self.meta.segments[index]["n"]
        if len(chunk) != expected:
            raise TraceCorruptError(
                f"segment {path} holds {len(chunk)} accesses, header "
                f"says {expected}")
        return chunk

    def iter_epochs(self, start: int = 0,
                    stop: Optional[int] = None) -> Iterator[ColumnarChunk]:
        """Lazily decode epochs ``[start, stop)`` in order."""
        stop = self.meta.n_epochs if stop is None else stop
        for index in range(start, stop):
            yield self.epoch(index)

    def iter_accesses(self) -> Iterator[Access]:
        """Reconstructed accesses in capture order (O(epoch) memory)."""
        for chunk in self.iter_epochs():
            yield from chunk

    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        """On-disk footprint of the trace directory."""
        return sum(p.stat().st_size for p in self.path.iterdir()
                   if p.is_file())

    def describe(self) -> str:
        return (f"{self.path.name}: {self.n_accesses:,} accesses, "
                f"{self.n_epochs} epoch(s) of {self.meta.epoch_size:,}, "
                f"{self.instructions:,} instructions, "
                f"{self.size_bytes() / 1024:.1f} KiB")
