"""Streaming capture of access streams into the columnar trace format.

:class:`CaptureWriter` consumes one :class:`~repro.mem.records.Access` at a
time, buffering at most one epoch in memory; every ``epoch_size`` accesses a
compressed segment file is flushed to disk, so capture adds O(epoch) memory
to whatever pipeline it is tee'd into.

Writers stage everything in a temporary sibling directory and only
:meth:`~CaptureWriter.commit` it into place with an atomic rename, so a
crashed or abandoned capture never leaves a half-written trace where a
reader could find it, and concurrent workers capturing the same key race
benignly (first rename wins, the loser discards its copy).

:func:`capture_stream` is the tee used by the experiment runner: it yields
the accesses of an underlying iterator unchanged while writing them through
a ``CaptureWriter`` as a side effect, committing only when the source is
exhausted.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional

from ..mem.records import Access
from .format import (ColumnBuilder, DEFAULT_EPOCH_SIZE, FunctionTable,
                     TRACE_FORMAT_VERSION, TraceMeta, segment_name,
                     write_segment)


class CaptureWriter:
    """Write an access stream into a (staged) columnar trace directory."""

    def __init__(self, dest: os.PathLike, params: Dict[str, object],
                 epoch_size: int = DEFAULT_EPOCH_SIZE) -> None:
        if epoch_size < 1:
            raise ValueError("epoch_size must be >= 1")
        self.dest = Path(dest)
        self.params = dict(params)
        self.epoch_size = epoch_size
        self.functions = FunctionTable()
        self._builder = ColumnBuilder(self.functions)
        self._segments: list = []
        self._n_accesses = 0
        self._closed = False
        self.dest.parent.mkdir(parents=True, exist_ok=True)
        self._staging = Path(tempfile.mkdtemp(
            dir=self.dest.parent, prefix=f".{self.dest.name}.tmp-"))

    # ------------------------------------------------------------------ #
    @property
    def n_accesses(self) -> int:
        return self._n_accesses

    def write(self, access: Access) -> None:
        """Append one access, flushing a segment at each epoch boundary."""
        if self._closed:
            raise ValueError("capture writer is closed")
        self._builder.append(access)
        self._n_accesses += 1
        if len(self._builder) >= self.epoch_size:
            self._flush_segment()

    def write_all(self, accesses: Iterable[Access]) -> int:
        """Append every access of ``accesses``; returns the number written."""
        before = self._n_accesses
        for access in accesses:
            self.write(access)
        return self._n_accesses - before

    def _flush_segment(self) -> None:
        columns = self._builder.arrays()
        index = len(self._segments)
        write_segment(self._staging / segment_name(index), columns)
        mask = columns["cpu"] >= 0
        self._segments.append({
            "n": int(len(columns["addr"])),
            "instructions": int(columns["icount"][mask].sum()),
        })
        self._builder.clear()

    # ------------------------------------------------------------------ #
    def commit(self) -> Optional[Path]:
        """Finalise the trace and rename it into place.

        Returns the final trace directory, or ``None`` when another writer
        committed the same destination first (their content is identical by
        construction, so losing the race is not an error).
        """
        if self._closed:
            raise ValueError("capture writer is closed")
        if len(self._builder):
            self._flush_segment()
        meta = TraceMeta(
            format_version=TRACE_FORMAT_VERSION,
            params=self.params,
            epoch_size=self.epoch_size,
            n_accesses=self._n_accesses,
            # The per-segment masked sums are the single source of truth.
            instructions=sum(s["instructions"] for s in self._segments),
            segments=self._segments,
            functions=self.functions,
        )
        meta.dump(self._staging)
        self._closed = True
        try:
            os.rename(self._staging, self.dest)
        except OSError:
            # Destination already exists (concurrent capture won the race)
            # or cannot be renamed to; discard our staged copy.
            shutil.rmtree(self._staging, ignore_errors=True)
            return self.dest if self.dest.is_dir() else None
        return self.dest

    def abort(self) -> None:
        """Discard the staged capture without publishing anything."""
        if not self._closed:
            self._closed = True
            shutil.rmtree(self._staging, ignore_errors=True)

    # -- context manager -------------------------------------------------- #
    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.commit()
        else:
            self.abort()


def capture_stream(accesses: Iterable[Access],
                   writer: CaptureWriter) -> Iterator[Access]:
    """Tee ``accesses`` through ``writer``: yield each access unchanged.

    The capture is committed only when the source iterator is exhausted; if
    the consumer abandons the stream early (or an error propagates), the
    staged trace is discarded — a partial trace must never be published.
    """
    try:
        for access in accesses:
            writer.write(access)
            yield access
    except BaseException:
        writer.abort()
        raise
    else:
        writer.commit()
    finally:
        writer.abort()  # no-op after commit; cleans up on early close
