"""Columnar on-disk encoding of :class:`~repro.mem.records.Access` streams.

A captured trace is a **directory** holding a JSON header plus one compressed
segment file per *epoch* (a fixed-length run of accesses):

.. code-block:: text

    <trace dir>/
        meta.json        # format version, capture params, totals, function
                         # table, per-epoch segment index
        seg-00000.npz    # parallel numpy arrays: cpu/addr/size/kind/fn/
        seg-00001.npz    #   thread/icount  (zip-deflate compressed)
        ...

Epoch segments are *self-describing* (each records its access count and
recordable instruction total in ``meta.json``), so consumers can fan work out
per-epoch — load one segment, process it, merge — without scanning the whole
trace.  Function attribution is interned: each distinct
:class:`~repro.mem.records.FunctionRef` appears once in the header table and
accesses store a small integer id.

:class:`ColumnarChunk` is the in-memory unit: parallel numpy columns plus the
function table.  Iterating one yields reconstructed ``Access`` records in
order; the columnar view additionally supports vectorised block-address
computation (``addresses >> block_bits`` over the whole column), which the
system models' chunked fast path consumes
(:meth:`repro.mem.stream.StreamingSystemMixin.process_chunk`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..mem.records import Access, AccessKind, FunctionRef

#: Bump when the on-disk trace layout changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Number of accesses per epoch segment.  Chosen so the ``small`` preset
#: (~70k accesses per workload) shards into a handful of epochs while the
#: per-segment compression ratio stays good.
DEFAULT_EPOCH_SIZE = 8192

#: Name of the trace header file inside a trace directory.
META_NAME = "meta.json"

#: Column names in serialisation order; one numpy array per column.
COLUMNS = ("cpu", "addr", "size", "kind", "fn", "thread", "icount")

#: Dtypes per column.  ``addr`` must cover the synthetic 64-bit address
#: space; the rest are small and left to the segment compressor to shrink.
COLUMN_DTYPES = {
    "cpu": np.int32,       # -1 for DMA operations
    "addr": np.uint64,
    "size": np.int64,      # bulk copies span whole pages
    "kind": np.uint8,
    "fn": np.int32,
    "thread": np.int32,
    "icount": np.int32,
}


def segment_name(index: int) -> str:
    """File name of epoch segment ``index`` inside a trace directory."""
    return f"seg-{index:05d}.npz"


class FunctionTable:
    """Bidirectional interning of :class:`FunctionRef` <-> small int ids."""

    def __init__(self, functions: Optional[Sequence[FunctionRef]] = None) -> None:
        self._refs: List[FunctionRef] = list(functions or [])
        self._ids: Dict[FunctionRef, int] = {fn: i
                                             for i, fn in enumerate(self._refs)}

    def __len__(self) -> int:
        return len(self._refs)

    def intern(self, fn: FunctionRef) -> int:
        """Return the id for ``fn``, adding it to the table if new."""
        fn_id = self._ids.get(fn)
        if fn_id is None:
            fn_id = len(self._refs)
            self._ids[fn] = fn_id
            self._refs.append(fn)
        return fn_id

    def ref(self, fn_id: int) -> FunctionRef:
        """The interned :class:`FunctionRef` for ``fn_id``."""
        return self._refs[fn_id]

    # -- serialisation --------------------------------------------------- #
    def to_json(self) -> List[List[str]]:
        return [[fn.name, fn.module, fn.category] for fn in self._refs]

    @classmethod
    def from_json(cls, rows: Iterable[Sequence[str]]) -> "FunctionTable":
        return cls([FunctionRef(name=r[0], module=r[1], category=r[2])
                    for r in rows])


@dataclass
class ColumnarChunk:
    """A run of accesses as parallel numpy columns plus the function table.

    Iteration reconstructs :class:`Access` records in order; slicing with a
    ``slice`` returns a (zero-copy, numpy-view backed) sub-chunk, which is
    what lets the streaming warm-up boundary split an epoch without decoding
    it twice.
    """

    columns: Dict[str, np.ndarray]
    functions: FunctionTable
    #: Index of the epoch this chunk was decoded from (-1 when synthetic).
    epoch: int = -1

    def __post_init__(self) -> None:
        lengths = {name: len(col) for name, col in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")

    def __len__(self) -> int:
        return len(self.columns["addr"])

    def __getitem__(self, item: slice) -> "ColumnarChunk":
        if not isinstance(item, slice):
            raise TypeError("ColumnarChunk only supports slice indexing")
        return ColumnarChunk(
            columns={name: col[item] for name, col in self.columns.items()},
            functions=self.functions, epoch=self.epoch)

    def __iter__(self) -> Iterator[Access]:
        ref = self.functions.ref
        cols = self.columns
        rows = zip(cols["cpu"].tolist(), cols["addr"].tolist(),
                   cols["size"].tolist(), cols["kind"].tolist(),
                   cols["fn"].tolist(), cols["thread"].tolist(),
                   cols["icount"].tolist())
        for cpu, addr, size, kind, fn_id, thread, icount in rows:
            yield Access(cpu=cpu, addr=addr, size=size,
                         kind=AccessKind(kind), fn=ref(fn_id),
                         thread=thread, icount=icount)

    def accesses_at(self, indices: np.ndarray) -> List[Access]:
        """Reconstruct only the accesses at ``indices`` (in index order).

        The batched same-block fast path needs a materialised ``Access`` for
        the *first* element of each run only (function attribution on a
        miss); gathering just those rows skips reconstructing the runs'
        tails entirely.
        """
        ref = self.functions.ref
        cols = self.columns
        rows = zip(cols["cpu"][indices].tolist(), cols["addr"][indices].tolist(),
                   cols["size"][indices].tolist(), cols["kind"][indices].tolist(),
                   cols["fn"][indices].tolist(), cols["thread"][indices].tolist(),
                   cols["icount"][indices].tolist())
        return [Access(cpu=cpu, addr=addr, size=size, kind=AccessKind(kind),
                       fn=ref(fn_id), thread=thread, icount=icount)
                for cpu, addr, size, kind, fn_id, thread, icount in rows]

    # -- vectorised views ------------------------------------------------- #
    def block_addresses(self, block_bits: int) -> np.ndarray:
        """Block index of each access's first byte (``addr >> block_bits``)."""
        return self.columns["addr"] >> np.uint64(block_bits)

    def block_spans(self, block_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """(first, last) block *base addresses* spanned by each access.

        Matches the per-access arithmetic in the system models' ``process``:
        ``first = addr - addr % bs`` and ``last`` is the block base of the
        access's final byte (``size`` is clamped to at least one byte).
        """
        bits = int(block_size).bit_length() - 1
        if (1 << bits) != block_size:
            raise ValueError(f"block_size {block_size} is not a power of two")
        addr = self.columns["addr"]
        size = self.columns["size"]
        first = (addr >> np.uint64(bits)) << np.uint64(bits)
        end = addr + np.maximum(size, 1).astype(np.uint64) - np.uint64(1)
        last = (end >> np.uint64(bits)) << np.uint64(bits)
        return first, last

    def recorded_instructions(self) -> int:
        """Sum of ``icount`` over CPU-issued accesses (DMA rows excluded)."""
        mask = self.columns["cpu"] >= 0
        return int(self.columns["icount"][mask].sum())

    # -- construction ----------------------------------------------------- #
    @classmethod
    def from_accesses(cls, accesses: Iterable[Access],
                      functions: Optional[FunctionTable] = None,
                      epoch: int = -1) -> "ColumnarChunk":
        """Encode ``accesses`` into columns (interning into ``functions``)."""
        table = functions if functions is not None else FunctionTable()
        builder = ColumnBuilder(table)
        for access in accesses:
            builder.append(access)
        return cls(columns=builder.arrays(), functions=table, epoch=epoch)


class ColumnBuilder:
    """Accumulates accesses into python column lists; snapshots to numpy."""

    def __init__(self, functions: FunctionTable) -> None:
        self.functions = functions
        self._cols: Dict[str, List[int]] = {name: [] for name in COLUMNS}

    def __len__(self) -> int:
        return len(self._cols["addr"])

    def append(self, access: Access) -> None:
        cols = self._cols
        cols["cpu"].append(access.cpu)
        cols["addr"].append(access.addr)
        cols["size"].append(access.size)
        cols["kind"].append(int(access.kind))
        cols["fn"].append(self.functions.intern(access.fn))
        cols["thread"].append(access.thread)
        cols["icount"].append(access.icount)

    def arrays(self) -> Dict[str, np.ndarray]:
        return {name: np.asarray(values, dtype=COLUMN_DTYPES[name])
                for name, values in self._cols.items()}

    def clear(self) -> None:
        for values in self._cols.values():
            values.clear()


def write_segment(path: Path, columns: Dict[str, np.ndarray]) -> None:
    """Write one epoch segment as a compressed ``.npz`` file."""
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **columns)


def read_segment(path: Path) -> Dict[str, np.ndarray]:
    """Read one epoch segment back into its column arrays."""
    with np.load(path) as npz:
        return {name: npz[name] for name in COLUMNS}


@dataclass
class TraceMeta:
    """Parsed contents of a trace directory's ``meta.json``."""

    format_version: int
    params: Dict[str, object]
    epoch_size: int
    n_accesses: int
    #: Total recordable instructions (sum of icount over CPU-issued rows).
    instructions: int
    #: Per-epoch ``{"n": ..., "instructions": ...}`` entries, in order.
    segments: List[Dict[str, int]]
    functions: FunctionTable

    @property
    def n_epochs(self) -> int:
        return len(self.segments)

    def to_json(self) -> Dict[str, object]:
        return {
            "format_version": self.format_version,
            "params": self.params,
            "epoch_size": self.epoch_size,
            "n_accesses": self.n_accesses,
            "instructions": self.instructions,
            "segments": self.segments,
            "functions": self.functions.to_json(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TraceMeta":
        return cls(
            format_version=int(data["format_version"]),
            params=dict(data["params"]),
            epoch_size=int(data["epoch_size"]),
            n_accesses=int(data["n_accesses"]),
            instructions=int(data["instructions"]),
            segments=list(data["segments"]),
            functions=FunctionTable.from_json(data["functions"]),
        )

    @classmethod
    def load(cls, trace_dir: Path) -> "TraceMeta":
        with open(Path(trace_dir) / META_NAME) as fh:
            return cls.from_json(json.load(fh))

    def dump(self, trace_dir: Path) -> None:
        with open(Path(trace_dir) / META_NAME, "w") as fh:
            json.dump(self.to_json(), fh)
