"""Process-pool suite runner for the full evaluation sweep.

The evaluation sweeps every workload through both system organisations.
Individual simulations are single-threaded pure Python, so the sweep
parallelises perfectly across (workload, organisation) pairs — the unit of
work is an *organisation* rather than a context because the single-chip
simulation yields both the ``single-chip`` and ``intra-chip`` bundles in one
pass.

Workers are ordinary processes, obtained through the pluggable executor
layer (:class:`repro.api.executor.ProcessExecutor` — or
:class:`~repro.api.executor.SerialExecutor` when ``max_workers=1`` — via
:meth:`~repro.api.executor.Executor.submit_call`); each one runs
:func:`repro.experiments.runner.run_context` under a worker-local
:class:`~repro.api.session.Session`, which writes its results through to the
shared on-disk store, and additionally returns the bundles to the parent so
the parent's in-process memo is warm afterwards.  A re-run of the suite is
therefore served entirely from the disk cache without spawning simulations
at all.

Cells whose captured trace already carries epoch-boundary checkpoints skip
the one-worker-per-organisation path entirely: :meth:`ParallelSuiteRunner.run_suite`
simulates them via epoch-sharded :meth:`~ParallelSuiteRunner.simulate_trace`
(each shard restores its boundary snapshot), so the sweep parallelises
*below* (workload, organisation) granularity whenever snapshots exist.

Captured traces additionally let parallelism drop *below* the
(workload, organisation) granularity: a trace's self-describing epoch
segments are independent units, so :meth:`ParallelSuiteRunner.summarize_trace`
fans a single stream's counting pass out per-epoch — each worker decodes
exactly one segment — and folds the per-epoch summaries back together in
epoch order, which makes the merge deterministic regardless of completion
order.

Epoch-boundary checkpoints push the same idea from *counting* to full
*simulation*: once a serial pass has stored snapshots at epoch boundaries,
:meth:`ParallelSuiteRunner.simulate_trace` splits the trace into epoch
ranges at available checkpoints, each worker restores the snapshot at its
range's start and simulates only its own epochs, and the per-range miss
records concatenate in epoch order into a trace bit-identical to a serial
run — wall clock drops to roughly one shard plus the merge.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..api.registry import SYSTEMS
from ..api.session import Session
from ..checkpoint import (checkpoint_params, get_checkpoint_store,
                          simulate_epoch_range)
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import MissTrace
from ..trace import (EpochSummary, TraceReader, get_trace_store,
                     merge_summaries, summarize_trace_epoch, trace_params)
from ..workloads import WORKLOAD_NAMES
from .runner import (ContextResult, DEFAULT_WARMUP_FRACTION, _CACHE,
                     _analyze, _build_system, _result_params,
                     clamp_warmup_fraction, get_store as runner_get_store,
                     memo_key, run_context)


def organisation_contexts() -> Dict[str, Tuple[str, ...]]:
    """Contexts produced by one simulation of each registered organisation.

    Computed from the system registry on every call so organisations added
    via :func:`repro.api.registry.register_system` after import time join
    the sweep (the module-level :data:`ORGANISATION_CONTEXTS` snapshot below
    is kept for back-compat with import-time consumers).
    """
    return {name: SYSTEMS.get(name).contexts for name in SYSTEMS.names()}


#: Import-time snapshot of :func:`organisation_contexts` (back-compat).
ORGANISATION_CONTEXTS: Dict[str, Tuple[str, ...]] = organisation_contexts()


def spec_contexts(spec) -> Tuple[str, ...]:
    """The contexts an :class:`~repro.api.spec.ExperimentSpec` grid covers."""
    contexts = organisation_contexts()
    return tuple(context
                 for organisation in spec.resolved().organisations
                 for context in contexts[organisation])


def _run_organisation(job: Tuple) -> Tuple[str, Dict[str, ContextResult]]:
    """Worker entry point: one (workload, organisation) simulation.

    Module-level so it pickles under both fork and spawn start methods.
    """
    (workload, organisation, size, seed, scale, warmup_fraction, streaming,
     cache_dir, replay, checkpoint, resume) = job
    session = Session(cache_dir=cache_dir, streaming=streaming,
                      replay=replay, checkpoint=checkpoint, resume=resume)
    results = {}
    for context in organisation_contexts()[organisation]:
        results[context] = run_context(
            workload, context, size=size, seed=seed, scale=scale,
            warmup_fraction=warmup_fraction, session=session)
    return workload, results


def _capture_stream_job(job: Tuple) -> Tuple[Tuple[str, int], str]:
    """Worker entry point: capture one workload access stream to the store.

    Module-level so it pickles under both fork and spawn start methods.
    Returns ``((workload, n_cpus), status)`` where status is ``cached`` when
    the trace already existed or ``ran`` after a fresh capture (committed
    atomically, so concurrent captures of the same stream race benignly).
    Delegates to the capture stage function so the suite-runner path and
    plan execution share one implementation.
    """
    workload, n_cpus, seed, size, cache_dir = job
    from ..api.executor import _stage_capture
    status, _ = _stage_capture(
        {"workload": workload, "n_cpus": n_cpus, "seed": seed, "size": size},
        {"cache_dir": cache_dir, "replay": True})
    return (workload, n_cpus), status


def _simulate_shard_job(job: Tuple) -> Tuple[int, Dict[str, list], int]:
    """Worker entry point: simulate one epoch range of one captured trace.

    Module-level so it pickles under both fork and spawn start methods; the
    worker opens the trace directory, restores the checkpoint at its start
    epoch (if any), and replays only its own epochs.
    """
    (trace_path, organisation, scale, warmup_fraction, start_epoch,
     stop_epoch, cache_dir) = job
    reader = TraceReader(trace_path)
    system = _build_system(organisation, scale)
    fraction = clamp_warmup_fraction(warmup_fraction)
    warmup = int(reader.n_accesses * fraction)
    store = get_checkpoint_store(cache_dir)
    params = checkpoint_params(
        str(reader.params["workload"]), int(reader.params["n_cpus"]),
        int(reader.params["seed"]), str(reader.params["size"]),
        organisation, scale, fraction, epoch_size=reader.meta.epoch_size)
    deltas, instructions = simulate_epoch_range(
        system, reader, start_epoch, stop_epoch, warmup, store, params)
    return start_epoch, deltas, instructions


def _summarize_epoch_job(job: Tuple) -> Tuple[int, EpochSummary]:
    """Worker entry point: summarise one epoch segment of one trace.

    Module-level so it pickles under both fork and spawn start methods; the
    worker opens the trace directory and decodes only its own segment.
    """
    trace_path, epoch_index, block_bits = job
    return summarize_trace_epoch(trace_path, epoch_index,
                                 block_bits=block_bits)


class ParallelSuiteRunner:
    """Fan the evaluation sweep out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets :class:`ProcessPoolExecutor` pick
        (cpu count).  ``1`` runs the jobs inline in this process — useful
        for tests and for environments where spawning is restricted.
    streaming:
        Passed through to the runner: lazy (bounded-memory) generation when
        True, eager materialisation when False.
    cache_dir:
        Optional disk-store root shared by parent and workers.
    replay:
        Passed through to the runner: capture/replay access streams via the
        trace store when True (default), always re-generate when False.
    checkpoint / resume:
        Passed through to the runner: write epoch-boundary system snapshots
        during replayed simulations, and restore the latest one instead of
        simulating from access zero.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 streaming: bool = True,
                 cache_dir: Optional[str] = None,
                 replay: bool = True, checkpoint: bool = True,
                 resume: bool = True) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.streaming = streaming
        self.cache_dir = cache_dir
        self.replay = replay
        self.checkpoint = checkpoint
        self.resume = resume

    # ------------------------------------------------------------------ #
    def _pool(self, n_jobs: int):
        """The executor backend for ``n_jobs`` sub-stage tasks.

        The pool this runner historically owned lives in
        :class:`repro.api.executor.ProcessExecutor` now; ``max_workers=1``
        (or a single job) degrades to the inline
        :class:`~repro.api.executor.SerialExecutor` so tests and restricted
        environments never spawn.
        """
        from ..api.executor import ProcessExecutor, SerialExecutor
        if self.max_workers == 1 or n_jobs <= 1:
            return SerialExecutor(max_workers=1)
        return ProcessExecutor(max_workers=self.max_workers)

    # ------------------------------------------------------------------ #
    def _jobs(self, workloads: Iterable[str], size: str, seed: int,
              scale: int, warmup_fraction: float,
              organisations: Tuple[str, ...]) -> List[Tuple]:
        return [(workload, organisation, size, seed, scale, warmup_fraction,
                 self.streaming, self.cache_dir, self.replay,
                 self.checkpoint, self.resume)
                for workload in workloads
                for organisation in organisations]

    def _shardable(self, workload: str, organisation: str, size: str,
                   seed: int, scale: int, warmup_fraction: float) -> bool:
        """True when this (workload, organisation) cell should be simulated
        via epoch-sharded parallel simulation instead of one pool worker.

        Sharding pays off exactly when real simulation work remains *and*
        the boundary snapshots to split it are already on disk: the analysis
        bundle is absent from memo and disk store, a captured trace exists,
        and at least one interior epoch checkpoint is stored.  Everything
        else (cache hits, first-ever runs that still have to capture) stays
        on the one-worker-per-organisation path.
        """
        if not (self.replay and self.resume) or self.max_workers == 1:
            return False
        store = runner_get_store(self.cache_dir)
        if store is None:
            return False
        contexts = organisation_contexts()[organisation]
        cached = 0
        for context in contexts:
            if memo_key(workload, context, size, seed, scale,
                        warmup_fraction) in _CACHE:
                cached += 1
            elif store.contains("context", _result_params(
                    workload, context, size, seed, scale, warmup_fraction)):
                cached += 1
        if cached == len(contexts):
            return False
        trace_store = get_trace_store(self.cache_dir)
        ckpt_store = get_checkpoint_store(self.cache_dir)
        if trace_store is None or ckpt_store is None:
            return False
        n_cpus = SYSTEMS.get(organisation).n_cpus
        reader = trace_store.open(trace_params(workload, n_cpus, seed, size))
        if reader is None:
            return False
        params = checkpoint_params(workload, n_cpus, seed, size, organisation,
                                   scale, warmup_fraction,
                                   epoch_size=reader.meta.epoch_size)
        return any(0 < epoch < reader.n_epochs
                   for epoch in ckpt_store.epochs(params))

    def _run_sharded(self, workload: str, organisation: str, size: str,
                     seed: int, scale: int, warmup_fraction: float
                     ) -> Dict[str, ContextResult]:
        """Simulate one cell epoch-sharded, then analyse and persist it.

        The bundle written here is byte-for-byte what the serial
        :func:`~repro.experiments.runner.run_context` path would produce:
        :meth:`simulate_trace` is verified bit-identical to a serial
        simulation, and the analysis is a pure function of the miss trace.
        """
        traces = self.simulate_trace(workload, organisation, size=size,
                                     seed=seed, scale=scale,
                                     warmup_fraction=warmup_fraction)
        store = runner_get_store(self.cache_dir)
        results: Dict[str, ContextResult] = {}
        for context in organisation_contexts()[organisation]:
            result = _analyze(workload, context, traces[context])
            if store is not None:
                store.save("context",
                           _result_params(workload, context, size, seed,
                                          scale, warmup_fraction), result)
            results[context] = result
        return results

    def run_suite(self, size: str = "small", seed: int = 42,
                  scale: int = DEFAULT_SCALE,
                  workloads: Tuple[str, ...] = WORKLOAD_NAMES,
                  warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                  organisations: Optional[Tuple[str, ...]] = None,
                  ) -> Dict[str, Dict[str, ContextResult]]:
        """All ``workloads`` in all contexts; returns {workload: {context: result}}.

        Cells whose captured trace already has boundary checkpoints (from
        any earlier run of the same configuration) are simulated via
        epoch-sharded :meth:`simulate_trace` — parallelism *below*
        (workload, organisation) granularity — while the rest fan out one
        organisation per pool worker; both paths produce bit-identical
        bundles.  ``organisations`` restricts the sweep (default: every
        registered organisation).
        """
        warmup_fraction = clamp_warmup_fraction(warmup_fraction)
        known = organisation_contexts()
        if organisations is None:
            organisations = tuple(known)
        for organisation in organisations:
            if organisation not in known:
                raise ValueError(f"unknown organisation {organisation!r}")
        jobs = self._jobs(workloads, size, seed, scale, warmup_fraction,
                          organisations)
        sharded = [job for job in jobs if self._shardable(*job[:6])]
        pooled = [job for job in jobs if job not in sharded]
        merged: Dict[str, Dict[str, ContextResult]] = {w: {} for w in workloads}
        with self._pool(len(pooled)) as pool:
            futures = [pool.submit_call(_run_organisation, job)
                       for job in pooled]
            for future in as_completed(futures):
                workload, results = future.result()
                merged[workload].update(results)
        # Sharded cells run in the parent: each call fans its epoch ranges
        # out over its own pool, so running them one after another keeps the
        # workers busy without nesting pools.
        for job in sharded:
            workload = job[0]
            merged[workload].update(self._run_sharded(*job[:6]))
        # Warm the parent's memo so follow-up figure/table rendering in this
        # process reuses the returned bundles directly.
        for workload, results in merged.items():
            for context, result in results.items():
                _CACHE[memo_key(workload, context, size, seed, scale,
                                warmup_fraction)] = result
        return merged

    # ------------------------------------------------------------------ #
    def capture_streams(self, streams: Sequence[Tuple[str, int]], seed: int,
                        size: str) -> Dict[Tuple[str, int], str]:
        """Capture several ``(workload, n_cpus)`` access streams concurrently.

        Streams that already exist in the trace store are left untouched
        (``cached``); the rest generate and capture in pool workers, so a
        cold plan execution overlaps its generation passes the same way the
        flag-driven suite path does.  Returns ``{stream: status}``.
        """
        jobs = [(workload, n_cpus, seed, size, self.cache_dir)
                for workload, n_cpus in streams]
        with self._pool(len(jobs)) as pool:
            futures = [pool.submit_call(_capture_stream_job, job)
                       for job in jobs]
            return dict(future.result() for future in as_completed(futures))

    # ------------------------------------------------------------------ #
    def summarize_trace(self, reader: TraceReader,
                        block_bits: int = 6) -> EpochSummary:
        """Epoch-sharded counting pass over one captured trace.

        Fans the trace's epoch segments out over the process pool (one
        segment per task, each worker decodes only its own segment) and
        merges the per-epoch :class:`~repro.trace.epoch.EpochSummary`
        objects in epoch order, so the result is identical to the
        sequential :func:`repro.trace.epoch.summarize_trace` no matter the
        completion order.  This is parallelism *below* single-simulation
        granularity: one stream, many workers.
        """
        jobs = [(str(reader.path), index, block_bits)
                for index in range(reader.n_epochs)]
        with self._pool(len(jobs)) as pool:
            futures = [pool.submit_call(_summarize_epoch_job, job)
                       for job in jobs]
            pairs = [future.result() for future in as_completed(futures)]
        return merge_summaries(pairs)

    # ------------------------------------------------------------------ #
    def simulate_trace(self, workload: str, organisation: str,
                       size: str = "small", seed: int = 42,
                       scale: int = DEFAULT_SCALE,
                       warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                       shards: Optional[int] = None
                       ) -> Dict[str, MissTrace]:
        """Epoch-sharded *simulation* of one captured trace.

        Splits the trace's epochs into up to ``shards`` contiguous ranges
        whose boundaries land on stored checkpoints (a range starting at
        epoch 0 needs none), simulates each range in its own worker — the
        worker restores the boundary snapshot and replays only its epochs —
        and concatenates the per-range miss records **in epoch order**.
        Because each snapshot embeds the cumulative miss traces before its
        boundary, the merged records carry globally correct sequence
        numbers and the result is bit-identical to a serial simulation.

        Checkpoints come from any earlier serial run of the same
        configuration (``run``/``suite`` write them by default); with no
        usable checkpoint the whole trace becomes a single shard, i.e. the
        method degrades to the serial path rather than failing.

        Returns ``{context: MissTrace}`` for the organisation's contexts.
        """
        if organisation not in organisation_contexts():
            raise ValueError(f"unknown organisation {organisation!r}")
        trace_store = get_trace_store(self.cache_dir)
        if trace_store is None:
            raise RuntimeError("epoch-sharded simulation needs the disk "
                               "cache (REPRO_DISABLE_DISK_CACHE is set)")
        system = _build_system(organisation, scale)
        stream_key = trace_params(workload, system.config.n_cpus, seed, size)
        reader = trace_store.open(stream_key)
        if reader is None:
            raise LookupError(
                f"no captured trace for {stream_key}; run a simulation with "
                f"replay enabled (or `trace capture`) first")
        fraction = clamp_warmup_fraction(warmup_fraction)
        ckpt_store = get_checkpoint_store(self.cache_dir)
        ckpt_key = checkpoint_params(workload, system.config.n_cpus, seed,
                                     size, organisation, scale, fraction,
                                     epoch_size=reader.meta.epoch_size)
        available = ([epoch for epoch in ckpt_store.epochs(ckpt_key)
                      if 0 < epoch < reader.n_epochs]
                     if ckpt_store is not None else [])
        n_shards = shards or self.max_workers or os.cpu_count() or 1
        starts = _shard_starts(reader.n_epochs, available, n_shards)
        jobs = [(str(reader.path), organisation, scale, fraction, start,
                 stop, self.cache_dir)
                for start, stop in zip(starts, starts[1:] + [reader.n_epochs])]
        try:
            with self._pool(len(jobs)) as pool:
                futures = [pool.submit_call(_simulate_shard_job, job)
                           for job in jobs]
                outcomes = [future.result()
                            for future in as_completed(futures)]
        except LookupError as exc:
            # A boundary checkpoint vanished or failed to load between
            # planning and execution; degrade to one serial shard.
            warnings.warn(f"epoch-sharded simulation fell back to serial "
                          f"({exc})", RuntimeWarning, stacklevel=2)
            outcomes = [_simulate_shard_job(
                (str(reader.path), organisation, scale, fraction, 0,
                 reader.n_epochs, self.cache_dir))]
        outcomes.sort(key=lambda outcome: outcome[0])
        contexts = organisation_contexts()[organisation]
        merged = {context: MissTrace(context) for context in contexts}
        for _, deltas, instructions in outcomes:
            for context in contexts:
                merged[context].records.extend(deltas[context])
                merged[context].instructions = instructions
        return merged


def _shard_starts(n_epochs: int, available: Sequence[int],
                  n_shards: int) -> List[int]:
    """Choose shard starting epochs: 0 plus checkpoints nearest to even cuts.

    ``available`` holds the epochs with a stored checkpoint; the ideal cut
    points divide the trace evenly, and each is snapped to the closest
    available checkpoint (ties to the smaller epoch).  Duplicates collapse,
    so with no checkpoints the result is a single serial shard ``[0]``.
    """
    starts = {0}
    if available and n_shards > 1:
        candidates = sorted(available)
        for index in range(1, n_shards):
            ideal = index * n_epochs / n_shards
            nearest = min(candidates,
                          key=lambda epoch: (abs(epoch - ideal), epoch))
            starts.add(nearest)
    return sorted(starts)
