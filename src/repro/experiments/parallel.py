"""Process-pool suite runner for the full evaluation sweep.

The evaluation sweeps every workload through both system organisations.
Individual simulations are single-threaded pure Python, so the sweep
parallelises perfectly across (workload, organisation) pairs — the unit of
work is an *organisation* rather than a context because the single-chip
simulation yields both the ``single-chip`` and ``intra-chip`` bundles in one
pass.

Workers are ordinary processes (:mod:`concurrent.futures`); each one runs
:func:`repro.experiments.runner.run_workload_context`, which writes its
results through to the shared on-disk store, and additionally returns the
bundles to the parent so the parent's in-process memo is warm afterwards.
A re-run of the suite is therefore served entirely from the disk cache
without spawning simulations at all.

Captured traces additionally let parallelism drop *below* the
(workload, organisation) granularity: a trace's self-describing epoch
segments are independent units, so :meth:`ParallelSuiteRunner.summarize_trace`
fans a single stream's counting pass out per-epoch — each worker decodes
exactly one segment — and folds the per-epoch summaries back together in
epoch order, which makes the merge deterministic regardless of completion
order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Tuple

from ..mem.config import DEFAULT_SCALE
from ..mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP
from ..trace import (EpochSummary, TraceReader, merge_summaries,
                     summarize_trace_epoch)
from ..workloads import WORKLOAD_NAMES
from .runner import (ContextResult, DEFAULT_WARMUP_FRACTION, _CACHE,
                     memo_key, run_workload_context)

#: Contexts produced by one simulation of each organisation.
ORGANISATION_CONTEXTS: Dict[str, Tuple[str, ...]] = {
    "multi-chip": (MULTI_CHIP,),
    "single-chip": (SINGLE_CHIP, INTRA_CHIP),
}


def _run_organisation(job: Tuple) -> Tuple[str, Dict[str, ContextResult]]:
    """Worker entry point: one (workload, organisation) simulation.

    Module-level so it pickles under both fork and spawn start methods.
    """
    (workload, organisation, size, seed, scale, warmup_fraction, streaming,
     cache_dir, replay) = job
    results = {}
    for context in ORGANISATION_CONTEXTS[organisation]:
        results[context] = run_workload_context(
            workload, context, size=size, seed=seed, scale=scale,
            warmup_fraction=warmup_fraction, streaming=streaming,
            cache_dir=cache_dir, replay=replay)
    return workload, results


def _summarize_epoch_job(job: Tuple) -> Tuple[int, EpochSummary]:
    """Worker entry point: summarise one epoch segment of one trace.

    Module-level so it pickles under both fork and spawn start methods; the
    worker opens the trace directory and decodes only its own segment.
    """
    trace_path, epoch_index, block_bits = job
    return summarize_trace_epoch(trace_path, epoch_index,
                                 block_bits=block_bits)


class ParallelSuiteRunner:
    """Fan the evaluation sweep out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets :class:`ProcessPoolExecutor` pick
        (cpu count).  ``1`` runs the jobs inline in this process — useful
        for tests and for environments where spawning is restricted.
    streaming:
        Passed through to the runner: lazy (bounded-memory) generation when
        True, eager materialisation when False.
    cache_dir:
        Optional disk-store root shared by parent and workers.
    replay:
        Passed through to the runner: capture/replay access streams via the
        trace store when True (default), always re-generate when False.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 streaming: bool = True,
                 cache_dir: Optional[str] = None,
                 replay: bool = True) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.streaming = streaming
        self.cache_dir = cache_dir
        self.replay = replay

    # ------------------------------------------------------------------ #
    def _jobs(self, workloads: Iterable[str], size: str, seed: int,
              scale: int, warmup_fraction: float) -> List[Tuple]:
        return [(workload, organisation, size, seed, scale, warmup_fraction,
                 self.streaming, self.cache_dir, self.replay)
                for workload in workloads
                for organisation in ORGANISATION_CONTEXTS]

    def run_suite(self, size: str = "small", seed: int = 42,
                  scale: int = DEFAULT_SCALE,
                  workloads: Tuple[str, ...] = WORKLOAD_NAMES,
                  warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                  ) -> Dict[str, Dict[str, ContextResult]]:
        """All ``workloads`` in all contexts; returns {workload: {context: result}}."""
        jobs = self._jobs(workloads, size, seed, scale, warmup_fraction)
        merged: Dict[str, Dict[str, ContextResult]] = {w: {} for w in workloads}
        if self.max_workers == 1:
            outcomes = map(_run_organisation, jobs)
            for workload, results in outcomes:
                merged[workload].update(results)
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(_run_organisation, job) for job in jobs]
                for future in as_completed(futures):
                    workload, results = future.result()
                    merged[workload].update(results)
        # Warm the parent's memo so follow-up figure/table rendering in this
        # process reuses the returned bundles directly.
        for workload, results in merged.items():
            for context, result in results.items():
                _CACHE[memo_key(workload, context, size, seed, scale,
                                warmup_fraction)] = result
        return merged

    # ------------------------------------------------------------------ #
    def summarize_trace(self, reader: TraceReader,
                        block_bits: int = 6) -> EpochSummary:
        """Epoch-sharded counting pass over one captured trace.

        Fans the trace's epoch segments out over the process pool (one
        segment per task, each worker decodes only its own segment) and
        merges the per-epoch :class:`~repro.trace.epoch.EpochSummary`
        objects in epoch order, so the result is identical to the
        sequential :func:`repro.trace.epoch.summarize_trace` no matter the
        completion order.  This is parallelism *below* single-simulation
        granularity: one stream, many workers.
        """
        jobs = [(str(reader.path), index, block_bits)
                for index in range(reader.n_epochs)]
        if self.max_workers == 1 or len(jobs) <= 1:
            pairs = [_summarize_epoch_job(job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(_summarize_epoch_job, job)
                           for job in jobs]
                pairs = [future.result() for future in as_completed(futures)]
        return merge_summaries(pairs)
