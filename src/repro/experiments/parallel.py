"""Process-pool suite runner for the full evaluation sweep.

The evaluation sweeps every workload through both system organisations.
Individual simulations are single-threaded pure Python, so the sweep
parallelises perfectly across (workload, organisation) pairs — the unit of
work is an *organisation* rather than a context because the single-chip
simulation yields both the ``single-chip`` and ``intra-chip`` bundles in one
pass.

Workers are ordinary processes (:mod:`concurrent.futures`); each one runs
:func:`repro.experiments.runner.run_workload_context`, which writes its
results through to the shared on-disk store, and additionally returns the
bundles to the parent so the parent's in-process memo is warm afterwards.
A re-run of the suite is therefore served entirely from the disk cache
without spawning simulations at all.

Captured traces additionally let parallelism drop *below* the
(workload, organisation) granularity: a trace's self-describing epoch
segments are independent units, so :meth:`ParallelSuiteRunner.summarize_trace`
fans a single stream's counting pass out per-epoch — each worker decodes
exactly one segment — and folds the per-epoch summaries back together in
epoch order, which makes the merge deterministic regardless of completion
order.

Epoch-boundary checkpoints push the same idea from *counting* to full
*simulation*: once a serial pass has stored snapshots at epoch boundaries,
:meth:`ParallelSuiteRunner.simulate_trace` splits the trace into epoch
ranges at available checkpoints, each worker restores the snapshot at its
range's start and simulates only its own epochs, and the per-range miss
records concatenate in epoch order into a trace bit-identical to a serial
run — wall clock drops to roughly one shard plus the merge.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..checkpoint import (checkpoint_params, get_checkpoint_store,
                          simulate_epoch_range)
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import INTRA_CHIP, MULTI_CHIP, MissTrace, SINGLE_CHIP
from ..trace import (EpochSummary, TraceReader, get_trace_store,
                     merge_summaries, summarize_trace_epoch, trace_params)
from ..workloads import WORKLOAD_NAMES
from .runner import (ContextResult, DEFAULT_WARMUP_FRACTION, _CACHE,
                     _build_system, clamp_warmup_fraction, memo_key,
                     run_workload_context)

#: Contexts produced by one simulation of each organisation.
ORGANISATION_CONTEXTS: Dict[str, Tuple[str, ...]] = {
    "multi-chip": (MULTI_CHIP,),
    "single-chip": (SINGLE_CHIP, INTRA_CHIP),
}


def _run_organisation(job: Tuple) -> Tuple[str, Dict[str, ContextResult]]:
    """Worker entry point: one (workload, organisation) simulation.

    Module-level so it pickles under both fork and spawn start methods.
    """
    (workload, organisation, size, seed, scale, warmup_fraction, streaming,
     cache_dir, replay, checkpoint, resume) = job
    results = {}
    for context in ORGANISATION_CONTEXTS[organisation]:
        results[context] = run_workload_context(
            workload, context, size=size, seed=seed, scale=scale,
            warmup_fraction=warmup_fraction, streaming=streaming,
            cache_dir=cache_dir, replay=replay, checkpoint=checkpoint,
            resume=resume)
    return workload, results


def _simulate_shard_job(job: Tuple) -> Tuple[int, Dict[str, list], int]:
    """Worker entry point: simulate one epoch range of one captured trace.

    Module-level so it pickles under both fork and spawn start methods; the
    worker opens the trace directory, restores the checkpoint at its start
    epoch (if any), and replays only its own epochs.
    """
    (trace_path, organisation, scale, warmup_fraction, start_epoch,
     stop_epoch, cache_dir) = job
    reader = TraceReader(trace_path)
    system = _build_system(organisation, scale)
    fraction = clamp_warmup_fraction(warmup_fraction)
    warmup = int(reader.n_accesses * fraction)
    store = get_checkpoint_store(cache_dir)
    params = checkpoint_params(
        str(reader.params["workload"]), int(reader.params["n_cpus"]),
        int(reader.params["seed"]), str(reader.params["size"]),
        organisation, scale, fraction, epoch_size=reader.meta.epoch_size)
    deltas, instructions = simulate_epoch_range(
        system, reader, start_epoch, stop_epoch, warmup, store, params)
    return start_epoch, deltas, instructions


def _summarize_epoch_job(job: Tuple) -> Tuple[int, EpochSummary]:
    """Worker entry point: summarise one epoch segment of one trace.

    Module-level so it pickles under both fork and spawn start methods; the
    worker opens the trace directory and decodes only its own segment.
    """
    trace_path, epoch_index, block_bits = job
    return summarize_trace_epoch(trace_path, epoch_index,
                                 block_bits=block_bits)


class ParallelSuiteRunner:
    """Fan the evaluation sweep out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets :class:`ProcessPoolExecutor` pick
        (cpu count).  ``1`` runs the jobs inline in this process — useful
        for tests and for environments where spawning is restricted.
    streaming:
        Passed through to the runner: lazy (bounded-memory) generation when
        True, eager materialisation when False.
    cache_dir:
        Optional disk-store root shared by parent and workers.
    replay:
        Passed through to the runner: capture/replay access streams via the
        trace store when True (default), always re-generate when False.
    checkpoint / resume:
        Passed through to the runner: write epoch-boundary system snapshots
        during replayed simulations, and restore the latest one instead of
        simulating from access zero.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 streaming: bool = True,
                 cache_dir: Optional[str] = None,
                 replay: bool = True, checkpoint: bool = True,
                 resume: bool = True) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.streaming = streaming
        self.cache_dir = cache_dir
        self.replay = replay
        self.checkpoint = checkpoint
        self.resume = resume

    # ------------------------------------------------------------------ #
    def _jobs(self, workloads: Iterable[str], size: str, seed: int,
              scale: int, warmup_fraction: float) -> List[Tuple]:
        return [(workload, organisation, size, seed, scale, warmup_fraction,
                 self.streaming, self.cache_dir, self.replay,
                 self.checkpoint, self.resume)
                for workload in workloads
                for organisation in ORGANISATION_CONTEXTS]

    def run_suite(self, size: str = "small", seed: int = 42,
                  scale: int = DEFAULT_SCALE,
                  workloads: Tuple[str, ...] = WORKLOAD_NAMES,
                  warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                  ) -> Dict[str, Dict[str, ContextResult]]:
        """All ``workloads`` in all contexts; returns {workload: {context: result}}."""
        jobs = self._jobs(workloads, size, seed, scale, warmup_fraction)
        merged: Dict[str, Dict[str, ContextResult]] = {w: {} for w in workloads}
        if self.max_workers == 1:
            outcomes = map(_run_organisation, jobs)
            for workload, results in outcomes:
                merged[workload].update(results)
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(_run_organisation, job) for job in jobs]
                for future in as_completed(futures):
                    workload, results = future.result()
                    merged[workload].update(results)
        # Warm the parent's memo so follow-up figure/table rendering in this
        # process reuses the returned bundles directly.
        for workload, results in merged.items():
            for context, result in results.items():
                _CACHE[memo_key(workload, context, size, seed, scale,
                                warmup_fraction)] = result
        return merged

    # ------------------------------------------------------------------ #
    def summarize_trace(self, reader: TraceReader,
                        block_bits: int = 6) -> EpochSummary:
        """Epoch-sharded counting pass over one captured trace.

        Fans the trace's epoch segments out over the process pool (one
        segment per task, each worker decodes only its own segment) and
        merges the per-epoch :class:`~repro.trace.epoch.EpochSummary`
        objects in epoch order, so the result is identical to the
        sequential :func:`repro.trace.epoch.summarize_trace` no matter the
        completion order.  This is parallelism *below* single-simulation
        granularity: one stream, many workers.
        """
        jobs = [(str(reader.path), index, block_bits)
                for index in range(reader.n_epochs)]
        if self.max_workers == 1 or len(jobs) <= 1:
            pairs = [_summarize_epoch_job(job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(_summarize_epoch_job, job)
                           for job in jobs]
                pairs = [future.result() for future in as_completed(futures)]
        return merge_summaries(pairs)

    # ------------------------------------------------------------------ #
    def simulate_trace(self, workload: str, organisation: str,
                       size: str = "small", seed: int = 42,
                       scale: int = DEFAULT_SCALE,
                       warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                       shards: Optional[int] = None
                       ) -> Dict[str, MissTrace]:
        """Epoch-sharded *simulation* of one captured trace.

        Splits the trace's epochs into up to ``shards`` contiguous ranges
        whose boundaries land on stored checkpoints (a range starting at
        epoch 0 needs none), simulates each range in its own worker — the
        worker restores the boundary snapshot and replays only its epochs —
        and concatenates the per-range miss records **in epoch order**.
        Because each snapshot embeds the cumulative miss traces before its
        boundary, the merged records carry globally correct sequence
        numbers and the result is bit-identical to a serial simulation.

        Checkpoints come from any earlier serial run of the same
        configuration (``run``/``suite`` write them by default); with no
        usable checkpoint the whole trace becomes a single shard, i.e. the
        method degrades to the serial path rather than failing.

        Returns ``{context: MissTrace}`` for the organisation's contexts.
        """
        if organisation not in ORGANISATION_CONTEXTS:
            raise ValueError(f"unknown organisation {organisation!r}")
        trace_store = get_trace_store(self.cache_dir)
        if trace_store is None:
            raise RuntimeError("epoch-sharded simulation needs the disk "
                               "cache (REPRO_DISABLE_DISK_CACHE is set)")
        system = _build_system(organisation, scale)
        stream_key = trace_params(workload, system.config.n_cpus, seed, size)
        reader = trace_store.open(stream_key)
        if reader is None:
            raise LookupError(
                f"no captured trace for {stream_key}; run a simulation with "
                f"replay enabled (or `trace capture`) first")
        fraction = clamp_warmup_fraction(warmup_fraction)
        ckpt_store = get_checkpoint_store(self.cache_dir)
        ckpt_key = checkpoint_params(workload, system.config.n_cpus, seed,
                                     size, organisation, scale, fraction,
                                     epoch_size=reader.meta.epoch_size)
        available = ([epoch for epoch in ckpt_store.epochs(ckpt_key)
                      if 0 < epoch < reader.n_epochs]
                     if ckpt_store is not None else [])
        n_shards = shards or self.max_workers or os.cpu_count() or 1
        starts = _shard_starts(reader.n_epochs, available, n_shards)
        jobs = [(str(reader.path), organisation, scale, fraction, start,
                 stop, self.cache_dir)
                for start, stop in zip(starts, starts[1:] + [reader.n_epochs])]
        try:
            if self.max_workers == 1 or len(jobs) <= 1:
                outcomes = [_simulate_shard_job(job) for job in jobs]
            else:
                with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    futures = [pool.submit(_simulate_shard_job, job)
                               for job in jobs]
                    outcomes = [future.result()
                                for future in as_completed(futures)]
        except LookupError as exc:
            # A boundary checkpoint vanished or failed to load between
            # planning and execution; degrade to one serial shard.
            warnings.warn(f"epoch-sharded simulation fell back to serial "
                          f"({exc})", RuntimeWarning, stacklevel=2)
            outcomes = [_simulate_shard_job(
                (str(reader.path), organisation, scale, fraction, 0,
                 reader.n_epochs, self.cache_dir))]
        outcomes.sort(key=lambda outcome: outcome[0])
        contexts = ORGANISATION_CONTEXTS[organisation]
        merged = {context: MissTrace(context) for context in contexts}
        for _, deltas, instructions in outcomes:
            for context in contexts:
                merged[context].records.extend(deltas[context])
                merged[context].instructions = instructions
        return merged


def _shard_starts(n_epochs: int, available: Sequence[int],
                  n_shards: int) -> List[int]:
    """Choose shard starting epochs: 0 plus checkpoints nearest to even cuts.

    ``available`` holds the epochs with a stored checkpoint; the ideal cut
    points divide the trace evenly, and each is snapped to the closest
    available checkpoint (ties to the smaller epoch).  Duplicates collapse,
    so with no checkpoints the result is a single serial shard ``[0]``.
    """
    starts = {0}
    if available and n_shards > 1:
        candidates = sorted(available)
        for index in range(1, n_shards):
            ideal = index * n_epochs / n_shards
            nearest = min(candidates,
                          key=lambda epoch: (abs(epoch - ideal), epoch))
            starts.add(nearest)
    return sorted(starts)
