"""Figure 1: miss classification across system organisations.

Left plot: off-chip read misses per 1000 instructions, split into
Compulsory / I/O Coherence / Replacement / Coherence, for every workload in
the multi-chip and single-chip systems.

Right plot: intra-chip (L1) misses per 1000 instructions in the single-chip
system, split into Off-chip / Replacement:L2 / Coherence:L2 /
Coherence:Peer-L1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.registry import register_analysis
from ..core.classification import ClassificationBreakdown
from ..core.report import (format_intrachip_classification,
                           format_offchip_classification)
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP
from ..workloads.configs import WORKLOAD_NAMES
from .runner import DEFAULT_WARMUP_FRACTION, run_context


@dataclass
class Figure1Result:
    """Classification breakdowns for every bar of Figure 1."""

    #: workload -> {multi-chip, single-chip} -> off-chip breakdown (left plot).
    offchip: Dict[str, Dict[str, ClassificationBreakdown]]
    #: workload -> intra-chip breakdown (right plot).
    intrachip: Dict[str, ClassificationBreakdown]

    def render(self) -> str:
        lines = ["Figure 1 (left): off-chip miss classification "
                 "(misses per 1000 instructions)", ""]
        for workload, contexts in self.offchip.items():
            for context, breakdown in contexts.items():
                lines.append(format_offchip_classification(
                    f"{workload} / {context}", breakdown))
                lines.append("")
        lines.append("Figure 1 (right): intra-chip (L1) miss classification")
        lines.append("")
        for workload, breakdown in self.intrachip.items():
            lines.append(format_intrachip_classification(
                f"{workload} / intra-chip", breakdown))
            lines.append("")
        return "\n".join(lines)


def figure1(size: str = "small", seed: int = 42,
            workloads: Tuple[str, ...] = WORKLOAD_NAMES,
            scale: int = DEFAULT_SCALE,
            warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
            session=None) -> Figure1Result:
    """Regenerate Figure 1 for the given workloads."""
    offchip: Dict[str, Dict[str, ClassificationBreakdown]] = {}
    intrachip: Dict[str, ClassificationBreakdown] = {}
    for workload in workloads:
        offchip[workload] = {}
        for context in (MULTI_CHIP, SINGLE_CHIP):
            result = run_context(workload, context, size=size, seed=seed,
                                 scale=scale,
                                 warmup_fraction=warmup_fraction,
                                 session=session)
            offchip[workload][context] = result.classification
        intra = run_context(workload, INTRA_CHIP, size=size, seed=seed,
                            scale=scale, warmup_fraction=warmup_fraction,
                            session=session)
        intrachip[workload] = intra.classification
    return Figure1Result(offchip=offchip, intrachip=intrachip)


@register_analysis("figure1")
def _figure1_analysis(session, spec, scale: int,
                      warmup_fraction: float) -> Figure1Result:
    """Spec adapter: Figure 1 over one (scale, warmup) slice of the grid."""
    return figure1(size=spec.size, seed=spec.seed, workloads=spec.workloads,
                   scale=scale, warmup_fraction=warmup_fraction,
                   session=session)
