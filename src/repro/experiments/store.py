"""Versioned on-disk result store for simulation/analysis bundles.

Simulating a (workload, context) pair is by far the most expensive step of
regenerating the paper's figures and tables, and the result is fully
determined by the run parameters.  This module persists those results so a
second invocation — in the same process, a later process, or a parallel
worker — never re-simulates.

Layout::

    <root>/v<schema>-<package version>/<kind>/<param slug>-<digest>.pkl

``<root>`` defaults to ``~/.cache/repro`` and can be overridden with the
``REPRO_CACHE_DIR`` environment variable or per-store with the ``root``
argument.  Setting ``REPRO_DISABLE_DISK_CACHE=1`` disables the store
entirely (the in-memory memo in :mod:`repro.experiments.runner` still works).

Versioning rules: entries are namespaced by ``CACHE_SCHEMA`` (bump when the
pickled payload layout changes) *and* the ``repro`` package version (bumped
whenever simulation or analysis semantics change).  Either bump orphans old
entries rather than serving stale results; ``clear()`` removes every version
directory under the root.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import __version__
# Shared cache-root helpers live in repro.cachedir (also used by the trace
# store); re-exported here under their historical names.
from ..cachedir import (CACHE_DIR_ENV, CACHE_DISABLE_ENV, default_cache_root,
                        disk_cache_disabled, params_slug as _slug)

#: Bump when the on-disk payload layout changes incompatibly.
CACHE_SCHEMA = 1


class ResultStore:
    """Pickle-backed store of computed results, keyed by run parameters.

    Writes are atomic (write to a temp file, then ``os.replace``), so
    concurrent workers in the parallel suite runner may race on the same key
    without corrupting entries — last writer wins with identical content.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = f"{CACHE_SCHEMA}-{__version__}"

    # ------------------------------------------------------------------ #
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, kind: str, params: Dict[str, Any]) -> Path:
        """The file an entry of ``kind`` with ``params`` lives at."""
        return self.version_dir / kind / f"{_slug(params)}.pkl"

    # ------------------------------------------------------------------ #
    def load(self, kind: str, params: Dict[str, Any]) -> Optional[Any]:
        """Return the stored object, or None on miss or unreadable entry."""
        path = self.path_for(kind, params)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError,
                ImportError, IndexError, ValueError) as exc:
            # A corrupt, truncated, or stale entry is a miss, not an error:
            # drop it (so a fresh result overwrites it), warn so operators
            # notice recurring corruption, and let the caller re-simulate
            # instead of aborting a whole suite mid-run.
            warnings.warn(
                f"dropping unreadable cache entry {path} "
                f"({type(exc).__name__}: {exc}); it will be recomputed",
                RuntimeWarning, stacklevel=2)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def save(self, kind: str, params: Dict[str, Any], obj: Any) -> Path:
        """Atomically persist ``obj`` under its parameter key."""
        path = self.path_for(kind, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def contains(self, kind: str, params: Dict[str, Any]) -> bool:
        return self.path_for(kind, params).is_file()

    # ------------------------------------------------------------------ #
    def entries(self) -> List[Path]:
        """All entry files across every version directory under the root."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("v*/**/*.pkl") if p.is_file())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Remove every version directory under the root; returns #entries."""
        removed = len(self.entries())
        if self.root.is_dir():
            for child in self.root.glob("v*"):
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    def describe(self) -> str:
        n = len(self.entries())
        return (f"cache root {self.root} (current version v{self.version}): "
                f"{n} entr{'y' if n == 1 else 'ies'}, "
                f"{self.size_bytes() / 1024:.1f} KiB")
