"""Versioned on-disk result store for simulation/analysis bundles.

Simulating a (workload, context) pair is by far the most expensive step of
regenerating the paper's figures and tables, and the result is fully
determined by the run parameters.  This module persists those results so a
second invocation — in the same process, a later process, or a parallel
worker — never re-simulates.

Layout::

    <root>/v<schema>-<package version>/<kind>/<param slug>-<digest>.pkl

``<root>`` defaults to ``~/.cache/repro`` and can be overridden with the
``REPRO_CACHE_DIR`` environment variable or per-store with the ``root``
argument.  Setting ``REPRO_DISABLE_DISK_CACHE=1`` disables the store
entirely (the in-memory memo in :mod:`repro.experiments.runner` still works).

Versioning rules: entries are namespaced by ``CACHE_SCHEMA`` (bump when the
pickled payload layout changes) *and* the ``repro`` package version (bumped
whenever simulation or analysis semantics change).  Either bump orphans old
entries rather than serving stale results; ``clear()`` removes every version
directory under the root.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import __version__

#: Bump when the on-disk payload layout changes incompatibly.
CACHE_SCHEMA = 1

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk cache when set to a truthy value.
CACHE_DISABLE_ENV = "REPRO_DISABLE_DISK_CACHE"


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def disk_cache_disabled() -> bool:
    """True when ``REPRO_DISABLE_DISK_CACHE`` is set to a truthy value."""
    return os.environ.get(CACHE_DISABLE_ENV, "").lower() in ("1", "true",
                                                             "yes", "on")


def _slug(params: Dict[str, Any]) -> str:
    """A readable, filesystem-safe, collision-resistant file stem."""
    canonical = "&".join(f"{k}={params[k]!r}" for k in sorted(params))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    readable = "-".join(
        f"{k}={params[k]}" for k in sorted(params)
        if isinstance(params[k], (str, int, bool)))
    readable = "".join(c if c.isalnum() or c in "=.-_" else "_"
                       for c in readable)[:120]
    return f"{readable}-{digest}" if readable else digest


class ResultStore:
    """Pickle-backed store of computed results, keyed by run parameters.

    Writes are atomic (write to a temp file, then ``os.replace``), so
    concurrent workers in the parallel suite runner may race on the same key
    without corrupting entries — last writer wins with identical content.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = f"{CACHE_SCHEMA}-{__version__}"

    # ------------------------------------------------------------------ #
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, kind: str, params: Dict[str, Any]) -> Path:
        """The file an entry of ``kind`` with ``params`` lives at."""
        return self.version_dir / kind / f"{_slug(params)}.pkl"

    # ------------------------------------------------------------------ #
    def load(self, kind: str, params: Dict[str, Any]) -> Optional[Any]:
        """Return the stored object, or None on miss or unreadable entry."""
        path = self.path_for(kind, params)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError,
                ImportError):
            # A corrupt or stale entry is a miss, not an error; drop it so
            # the fresh result overwrites it.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def save(self, kind: str, params: Dict[str, Any], obj: Any) -> Path:
        """Atomically persist ``obj`` under its parameter key."""
        path = self.path_for(kind, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def contains(self, kind: str, params: Dict[str, Any]) -> bool:
        return self.path_for(kind, params).is_file()

    # ------------------------------------------------------------------ #
    def entries(self) -> List[Path]:
        """All entry files across every version directory under the root."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("v*/**/*.pkl") if p.is_file())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Remove every version directory under the root; returns #entries."""
        removed = len(self.entries())
        if self.root.is_dir():
            for child in self.root.glob("v*"):
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    def describe(self) -> str:
        n = len(self.entries())
        return (f"cache root {self.root} (current version v{self.version}): "
                f"{n} entr{'y' if n == 1 else 'ies'}, "
                f"{self.size_bytes() / 1024:.1f} KiB")
