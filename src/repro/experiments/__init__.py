"""Experiment drivers regenerating every figure and table of the paper.

Each module corresponds to one artifact of the evaluation:

=============  =========================================================
figure1        miss classification (off-chip and intra-chip)
figure2        fraction of misses in temporal streams
figure3        strided x repetitive joint breakdown
figure4        stream length CDF and reuse distance PDF
tables         Tables 1-5 (configs, categories, stream origins)
ablation       prefetcher coverage, stream-finder agreement, sensitivity
runner         shared workload/system/analysis pipeline with memoisation
=============  =========================================================
"""

from .ablation import (PrefetcherComparison, StreamFinderAgreement,
                       prefetcher_ablation, stream_finder_ablation,
                       stride_sensitivity)
from .figure1 import Figure1Result, figure1
from .figure2 import Figure2Result, figure2
from .figure3 import Figure3Result, figure3
from .figure4 import Figure4Result, figure4
from .parallel import ORGANISATION_CONTEXTS, ParallelSuiteRunner
from .runner import (ContextResult, DEFAULT_WARMUP_FRACTION,
                     clamp_warmup_fraction, clear_cache, get_store,
                     run_all_contexts, run_context, run_suite,
                     run_workload_context)
from .store import (CACHE_DIR_ENV, CACHE_DISABLE_ENV, CACHE_SCHEMA,
                    ResultStore, default_cache_root)
from .tables import (OriginsResult, render_table1, render_table2, table1,
                     table2, table3, table4, table5)

__all__ = [
    "CACHE_DIR_ENV", "CACHE_DISABLE_ENV", "CACHE_SCHEMA", "ContextResult",
    "DEFAULT_WARMUP_FRACTION", "Figure1Result", "Figure2Result",
    "Figure3Result", "Figure4Result", "ORGANISATION_CONTEXTS",
    "OriginsResult", "ParallelSuiteRunner", "PrefetcherComparison",
    "ResultStore", "StreamFinderAgreement", "clear_cache",
    "default_cache_root", "figure1", "figure2", "figure3", "figure4",
    "clamp_warmup_fraction", "get_store", "prefetcher_ablation",
    "render_table1", "render_table2",
    "run_all_contexts", "run_context", "run_suite", "run_workload_context",
    "stream_finder_ablation", "stride_sensitivity", "table1", "table2",
    "table3", "table4", "table5",
]
