"""Experiment runner: workload -> system model -> full analysis bundle.

Every figure and table of the paper is computed from the same per-(workload,
context) analysis bundle; this module builds those bundles and memoises them
so the benchmark harness can regenerate all artifacts without re-simulating
the same configuration repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.classification import (ClassificationBreakdown, classify_intrachip,
                                   classify_offchip)
from ..core.lengths import LengthDistribution, length_distribution
from ..core.modules import ModuleBreakdown, module_breakdown
from ..core.reuse import ReuseDistanceDistribution, reuse_distance_distribution
from ..core.streams import StreamAnalysis, analyze_trace
from ..core.stride import StrideStreamBreakdown, stride_stream_breakdown
from ..mem.config import DEFAULT_SCALE
from ..mem.multichip import MultiChipSystem
from ..mem.singlechip import SingleChipSystem
from ..mem.trace import (AccessTrace, INTRA_CHIP, MULTI_CHIP, MissTrace,
                         SINGLE_CHIP)
from ..mem.config import multichip_config, singlechip_config
from ..workloads import WORKLOAD_NAMES, create_workload

#: Fraction of the access trace used to warm the caches before recording,
#: mirroring the paper's warm-up of at least 5000 transactions before tracing.
DEFAULT_WARMUP_FRACTION = 0.25


@dataclass
class ContextResult:
    """Everything the figures/tables need for one (workload, context) pair."""

    workload: str
    context: str
    miss_trace: MissTrace
    stream_analysis: StreamAnalysis
    classification: ClassificationBreakdown
    modules: ModuleBreakdown
    stride: StrideStreamBreakdown
    lengths: LengthDistribution
    reuse: ReuseDistanceDistribution

    @property
    def n_misses(self) -> int:
        return len(self.miss_trace)


#: Memoised results keyed by (workload, context, size, seed, scale).
_CACHE: Dict[Tuple[str, str, str, int, int], ContextResult] = {}
#: Memoised (off-chip, intra-chip) miss traces keyed by the run parameters.
_TRACE_CACHE: Dict[Tuple[str, str, str, int, int], Dict[str, MissTrace]] = {}


def clear_cache() -> None:
    """Drop all memoised results (tests use this to force regeneration)."""
    _CACHE.clear()
    _TRACE_CACHE.clear()


def _simulate(workload: str, organisation: str, size: str, seed: int,
              scale: int, warmup_fraction: float) -> Dict[str, MissTrace]:
    """Generate the workload trace and run it through one system model."""
    key = (workload, organisation, size, seed, scale)
    if key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    if organisation == "multi-chip":
        config = multichip_config(scale=scale)
        system = MultiChipSystem(config)
    elif organisation == "single-chip":
        config = singlechip_config(scale=scale)
        system = SingleChipSystem(config)
    else:
        raise ValueError(f"unknown organisation {organisation!r}")
    access_trace = create_workload(workload, n_cpus=config.n_cpus,
                                   seed=seed, size=size).generate()
    warmup = int(len(access_trace) * max(0.0, min(warmup_fraction, 0.9)))
    system.set_recording(False)
    for i, access in enumerate(access_trace):
        if i == warmup:
            system.set_recording(True)
        system.process(access)
    if warmup >= len(access_trace):
        system.set_recording(True)
    if organisation == "multi-chip":
        traces = {MULTI_CHIP: system.finish()}
    else:
        offchip, intrachip = system.finish()
        traces = {SINGLE_CHIP: offchip, INTRA_CHIP: intrachip}
    _TRACE_CACHE[key] = traces
    return traces


def run_workload_context(workload: str, context: str, size: str = "small",
                         seed: int = 42, scale: int = DEFAULT_SCALE,
                         warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                         ) -> ContextResult:
    """Build the full analysis bundle for one workload in one system context.

    ``context`` is one of ``multi-chip``, ``single-chip``, or ``intra-chip``
    (the latter two come from the same single-chip simulation).
    """
    if context not in (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP):
        raise ValueError(f"unknown context {context!r}")
    cache_key = (workload, context, size, seed, scale)
    if cache_key in _CACHE:
        return _CACHE[cache_key]
    organisation = "multi-chip" if context == MULTI_CHIP else "single-chip"
    traces = _simulate(workload, organisation, size, seed, scale,
                       warmup_fraction)
    miss_trace = traces[context]
    analysis = analyze_trace(miss_trace)
    classification = (classify_intrachip(miss_trace) if context == INTRA_CHIP
                      else classify_offchip(miss_trace))
    result = ContextResult(
        workload=workload,
        context=context,
        miss_trace=miss_trace,
        stream_analysis=analysis,
        classification=classification,
        modules=module_breakdown(miss_trace, analysis),
        stride=stride_stream_breakdown(miss_trace, analysis),
        lengths=length_distribution(analysis.occurrences),
        reuse=reuse_distance_distribution(analysis, miss_trace),
    )
    _CACHE[cache_key] = result
    return result


def run_all_contexts(workload: str, size: str = "small", seed: int = 42,
                     scale: int = DEFAULT_SCALE) -> Dict[str, ContextResult]:
    """All three contexts for one workload."""
    return {context: run_workload_context(workload, context, size=size,
                                          seed=seed, scale=scale)
            for context in (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP)}


def run_suite(size: str = "small", seed: int = 42,
              scale: int = DEFAULT_SCALE,
              workloads: Tuple[str, ...] = WORKLOAD_NAMES,
              ) -> Dict[str, Dict[str, ContextResult]]:
    """All workloads in all contexts (the full evaluation sweep)."""
    return {name: run_all_contexts(name, size=size, seed=seed, scale=scale)
            for name in workloads}
