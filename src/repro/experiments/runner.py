"""Experiment runner: workload -> system model -> full analysis bundle.

Every figure and table of the paper is computed from the same per-(workload,
context) analysis bundle; this module builds those bundles through a
streaming pipeline and caches them at two levels:

* an **in-process memo** (dict), preserving object identity for repeated
  calls within one process, and
* a **versioned on-disk store** (:mod:`repro.experiments.store`), so figure
  and table regeneration across processes — including the parallel suite
  runner's workers — never re-simulates a configuration.

Simulation is *streaming* by default: accesses flow from the workload
generators into the system models chunk-wise, so peak memory is bounded by
one chunk instead of the whole access trace.  Because the warm-up boundary
is a fraction of the (not-known-in-advance) trace length, streaming mode
first makes a cheap counting pass over a fresh workload instance, then
simulates a second, identical instance; pass ``streaming=False`` to
materialise the trace in one pass instead (the historical behaviour, ~2x
the memory for ~half the generation work).

With ``replay=True`` (the default) the counting pass doubles as **trace
capture**: the generated stream is tee'd into the columnar
:class:`~repro.trace.store.TraceStore`, the simulation pass replays the
just-captured trace instead of generating a second time, and every later
simulation of the same ``(workload, n_cpus, seed, size)`` stream — any
warm-up fraction, any cache scale, either pass — replays from disk without
touching the generators at all.  Replayed epochs reach the system models as
columnar chunks, enabling the vectorised block-address fast path in
:meth:`repro.mem.stream.StreamingSystemMixin.process_chunk`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from ..api.registry import SYSTEMS
from ..api.session import Session, get_default_session
from ..checkpoint import (checkpoint_params, get_checkpoint_store,
                          simulate_replay)
from ..core.classification import (ClassificationBreakdown, classify_intrachip,
                                   classify_offchip)
from ..core.lengths import LengthDistribution, length_distribution
from ..core.modules import ModuleBreakdown, module_breakdown
from ..core.reuse import ReuseDistanceDistribution, reuse_distance_distribution
from ..core.streams import StreamAnalysis, analyze_trace
from ..core.stride import StrideStreamBreakdown, stride_stream_breakdown
from ..mem.config import DEFAULT_SCALE, multichip_config, singlechip_config
from ..mem.multichip import MultiChipSystem
from ..mem.singlechip import SingleChipSystem
from ..mem.trace import (DEFAULT_CHUNK_SIZE, INTRA_CHIP, MULTI_CHIP,
                         MissTrace, SINGLE_CHIP)
from ..trace import TraceCorruptError, get_trace_store, trace_params
from ..workloads import WORKLOAD_NAMES, create_workload
from .store import ResultStore

#: Fraction of the access trace used to warm the caches before recording,
#: mirroring the paper's warm-up of at least 5000 transactions before tracing.
DEFAULT_WARMUP_FRACTION = 0.25


def clamp_warmup_fraction(fraction: float) -> float:
    """The effective warm-up fraction for a requested one.

    Every site that turns a warm-up fraction into a warm-up access count —
    or into a checkpoint-store key — must clamp identically, or the serial
    pass, the shard workers, and the CLI would compute different keys for
    the same run.
    """
    return max(0.0, min(fraction, 0.9))


@dataclass
class ContextResult:
    """Everything the figures/tables need for one (workload, context) pair."""

    workload: str
    context: str
    miss_trace: MissTrace
    stream_analysis: StreamAnalysis
    classification: ClassificationBreakdown
    modules: ModuleBreakdown
    stride: StrideStreamBreakdown
    lengths: LengthDistribution
    reuse: ReuseDistanceDistribution

    @property
    def n_misses(self) -> int:
        return len(self.miss_trace)


#: Memoised results keyed by (workload, context, size, seed, scale, warmup).
_CACHE: Dict[Tuple[str, str, str, int, int, float], ContextResult] = {}
#: Memoised (off-chip, intra-chip) miss traces keyed by the run parameters.
_TRACE_CACHE: Dict[Tuple[str, str, str, int, int, float],
                   Dict[str, MissTrace]] = {}


def memo_key(workload: str, context: str, size: str, seed: int, scale: int,
             warmup_fraction: float) -> Tuple[str, str, str, int, int, float]:
    """In-process memo key; must cover every parameter that affects results."""
    return (workload, context, size, seed, scale, warmup_fraction)


def get_store(cache_dir: Optional[str] = None) -> Optional[ResultStore]:
    """The disk store the runner should use, or None when disabled.

    Thin delegate to the default :class:`~repro.api.session.Session`'s
    result store; ``cache_dir`` overrides the root for this store only.
    """
    session = get_default_session()
    if cache_dir:
        session = session.with_options(cache_dir=cache_dir)
    return session.result_store


def clear_cache(disk: bool = False) -> int:
    """Drop memoised results; with ``disk=True`` also empty the disk stores.

    Thin delegate to :meth:`repro.api.session.Session.clear_caches` on the
    default session, which covers all three persistent stores — analysis
    bundles, captured access traces, and epoch-boundary checkpoints.
    Returns the number of disk entries removed (0 for memory-only clears).
    """
    return get_default_session().clear_caches(disk=disk)


def _result_params(workload: str, context: str, size: str, seed: int,
                   scale: int, warmup_fraction: float) -> Dict[str, object]:
    """Disk-store key for one analysis bundle."""
    return {"workload": workload, "context": context, "size": size,
            "seed": seed, "scale": scale, "warmup": warmup_fraction}


def bundle_status(workload: str, context: str, size: str, seed: int,
                  scale: int, warmup_fraction: float,
                  store: Optional[ResultStore] = None) -> str:
    """``"cached"`` when the bundle already exists (memo or disk), else
    ``"ran"`` — the status a stage that builds it should report."""
    if memo_key(workload, context, size, seed, scale,
                warmup_fraction) in _CACHE:
        return "cached"
    if store is not None and store.contains("context", _result_params(
            workload, context, size, seed, scale, warmup_fraction)):
        return "cached"
    return "ran"


def _build_system(organisation: str, scale: int
                  ) -> Union[MultiChipSystem, SingleChipSystem]:
    """A fresh system model for one organisation at one cache scale."""
    try:
        factory = SYSTEMS.get(organisation)
    except KeyError as exc:
        raise ValueError(exc.args[0]) from None
    return factory(scale=scale)


def _simulate(workload: str, organisation: str, size: str, seed: int,
              scale: int, warmup_fraction: float, streaming: bool = True,
              chunk_size: int = DEFAULT_CHUNK_SIZE, replay: bool = True,
              cache_dir: Optional[str] = None, checkpoint: bool = True,
              resume: bool = True,
              warm_start: bool = True) -> Dict[str, MissTrace]:
    """Run the workload access stream through one system organisation.

    With ``replay`` enabled the stream comes from the columnar trace store
    whenever a capture exists; on a first run, the counting pass captures
    the stream as a side effect and the simulation pass replays it, so the
    generators run at most once per distinct stream.

    Replayed simulations additionally write epoch-boundary checkpoints
    (full system snapshots) and, with ``resume``, restore the latest one
    and simulate only the remaining epochs — an interrupted run costs only
    the epochs past its last checkpoint, bit-identically.  A trace whose
    segments turn out corrupt mid-replay is dropped with a warning and the
    run falls back to re-generating the stream (one retry).
    """
    warmup_fraction = clamp_warmup_fraction(warmup_fraction)
    key = memo_key(workload, organisation, size, seed, scale, warmup_fraction)
    if key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    try:
        traces = _simulate_once(
            workload, organisation, size, seed, scale, warmup_fraction,
            streaming=streaming, chunk_size=chunk_size, replay=replay,
            cache_dir=cache_dir, checkpoint=checkpoint, resume=resume,
            warm_start=warm_start)
    except TraceCorruptError as exc:
        warnings.warn(
            f"captured trace for {workload} is corrupt mid-replay ({exc}); "
            f"dropping it and re-generating the stream", RuntimeWarning,
            stacklevel=2)
        trace_store = get_trace_store(cache_dir)
        if trace_store is not None:
            config = (multichip_config(scale=scale)
                      if organisation == "multi-chip"
                      else singlechip_config(scale=scale))
            trace_store.drop(trace_params(workload, config.n_cpus, seed,
                                          size))
        traces = _simulate_once(
            workload, organisation, size, seed, scale, warmup_fraction,
            streaming=streaming, chunk_size=chunk_size, replay=False,
            cache_dir=cache_dir, checkpoint=checkpoint, resume=resume,
            warm_start=warm_start)
    _TRACE_CACHE[key] = traces
    return traces


def _simulate_once(workload: str, organisation: str, size: str, seed: int,
                   scale: int, warmup_fraction: float, streaming: bool,
                   chunk_size: int, replay: bool, cache_dir: Optional[str],
                   checkpoint: bool, resume: bool,
                   warm_start: bool = True) -> Dict[str, MissTrace]:
    """One simulation attempt (see :func:`_simulate` for the retry wrapper)."""
    system = _build_system(organisation, scale)
    config = system.config
    # The fraction was clamped by the caller (every key-building site goes
    # through clamp_warmup_fraction so serial, shard, and CLI keys agree).
    fraction = warmup_fraction

    trace_store = get_trace_store(cache_dir) if replay else None
    stream_key = trace_params(workload, config.n_cpus, seed, size)
    reader = trace_store.open(stream_key) if trace_store is not None else None

    accesses: Optional[Iterator] = None
    if reader is not None:
        # Replay: length and stream both come from disk; the generators are
        # never instantiated.  This supersedes both streaming and eager
        # generation — the replayed stream is identical by construction.
        n_accesses = reader.n_accesses
    elif streaming:
        # Counting pass over a fresh instance to place the warm-up boundary;
        # workloads are deterministic in (name, n_cpus, seed, size), so the
        # second pass replays the identical stream.  With a trace store the
        # counting pass is tee'd through a CaptureWriter, and the second
        # pass replays the capture instead of re-generating.
        counted = create_workload(workload, n_cpus=config.n_cpus, seed=seed,
                                  size=size).iter_accesses()
        if trace_store is not None:
            counted = trace_store.capture(counted, stream_key)
        n_accesses = sum(1 for _ in counted)
        reader = (trace_store.open(stream_key)
                  if trace_store is not None else None)
        if reader is None:
            accesses = create_workload(
                workload, n_cpus=config.n_cpus, seed=seed,
                size=size).iter_accesses()
    else:
        trace = create_workload(workload, n_cpus=config.n_cpus, seed=seed,
                                size=size).generate()
        n_accesses = len(trace)
        accesses = iter(trace)
        if trace_store is not None:
            # Eager mode generated the stream anyway; capture it for free so
            # later runs (streaming or eager) replay from disk.
            accesses = trace_store.capture(accesses, stream_key)
    warmup = int(n_accesses * fraction)
    if reader is not None:
        # Checkpointed replay: snapshots at epoch boundaries, resume from
        # the latest one when the same run left checkpoints behind.
        ckpt_store = get_checkpoint_store(cache_dir) if checkpoint else None
        ckpt_key = checkpoint_params(workload, config.n_cpus, seed, size,
                                     organisation, scale, fraction,
                                     epoch_size=reader.meta.epoch_size)
        # Warm start: a prefix chain published under the warmup-free key
        # covers every epoch boundary inside this cell's warm-up, so when
        # it reaches further than our own checkpoints, restore it instead.
        prefix_key = prefix_limit = None
        if warm_start and ckpt_store is not None and warmup > 0:
            from ..checkpoint.prefix import prefix_params
            from ..trace.epoch import boundary_at_or_before
            limit = boundary_at_or_before(reader.meta.segments, warmup)
            if limit >= 1:
                prefix_key = prefix_params(
                    workload, config.n_cpus, seed, size, organisation,
                    scale, epoch_size=reader.meta.epoch_size)
                prefix_limit = limit
        results = simulate_replay(system, reader, warmup=warmup,
                                  store=ckpt_store, params=ckpt_key,
                                  resume=resume, prefix_params=prefix_key,
                                  prefix_limit=prefix_limit)
    else:
        results = system.run_stream(accesses, warmup=warmup,
                                    chunk_size=chunk_size)
    if organisation == "multi-chip":
        return {MULTI_CHIP: results}
    offchip, intrachip = results
    return {SINGLE_CHIP: offchip, INTRA_CHIP: intrachip}


def _analyze(workload: str, context: str, miss_trace: MissTrace,
             ) -> ContextResult:
    """Build the analysis bundle for one already-simulated miss trace."""
    analysis = analyze_trace(miss_trace)
    classification = (classify_intrachip(miss_trace) if context == INTRA_CHIP
                      else classify_offchip(miss_trace))
    return ContextResult(
        workload=workload,
        context=context,
        miss_trace=miss_trace,
        stream_analysis=analysis,
        classification=classification,
        modules=module_breakdown(miss_trace, analysis),
        stride=stride_stream_breakdown(miss_trace, analysis),
        lengths=length_distribution(analysis.occurrences),
        reuse=reuse_distance_distribution(analysis, miss_trace),
    )


def run_context(workload: str, context: str, *, size: str = "small",
                seed: int = 42, scale: int = DEFAULT_SCALE,
                warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                session: Optional[Session] = None) -> ContextResult:
    """Build the full analysis bundle for one workload in one system context.

    ``context`` is one of ``multi-chip``, ``single-chip``, or ``intra-chip``
    (the latter two come from the same single-chip simulation).  Results are
    memoised in-process and persisted to the versioned disk store.  The
    ``session`` (default: the process-wide default session) supplies the
    cache root and the streaming/replay/checkpoint/resume policy — none of
    which affect the produced results (a resumed run is bit-identical by
    construction).  This is the engine behind
    :meth:`repro.api.session.Session.run`.
    """
    session = session if session is not None else get_default_session()
    # Route the context to the registered organisation that produces it, so
    # systems added via @register_system are runnable without edits here.
    organisation = next((name for name in SYSTEMS.names()
                         if context in SYSTEMS.get(name).contexts), None)
    if organisation is None:
        known = [ctx for name in SYSTEMS.names()
                 for ctx in SYSTEMS.get(name).contexts]
        raise ValueError(f"unknown context {context!r}; available: "
                         f"{', '.join(known)}")
    warmup_fraction = clamp_warmup_fraction(warmup_fraction)
    cache_key = memo_key(workload, context, size, seed, scale,
                         warmup_fraction)
    if cache_key in _CACHE:
        return _CACHE[cache_key]
    store = session.result_store
    params = _result_params(workload, context, size, seed, scale,
                            warmup_fraction)
    if store is not None:
        cached = store.load("context", params)
        if cached is not None:
            _CACHE[cache_key] = cached
            return cached
    traces = _simulate(workload, organisation, size, seed, scale,
                       warmup_fraction, streaming=session.streaming,
                       replay=session.replay, cache_dir=session.cache_dir,
                       checkpoint=session.checkpoint, resume=session.resume,
                       warm_start=getattr(session, "warm_start", True))
    result = _analyze(workload, context, traces[context])
    _CACHE[cache_key] = result
    if store is not None:
        store.save("context", params, result)
    return result


def _legacy_session(streaming: bool, cache_dir: Optional[str], replay: bool,
                    checkpoint: bool, resume: bool) -> Session:
    """A session carrying the historical per-call policy flags."""
    return get_default_session().with_options(
        cache_dir=cache_dir, streaming=streaming, replay=replay,
        checkpoint=checkpoint, resume=resume)


def run_workload_context(workload: str, context: str, size: str = "small",
                         seed: int = 42, scale: int = DEFAULT_SCALE,
                         warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                         streaming: bool = True,
                         cache_dir: Optional[str] = None,
                         replay: bool = True, checkpoint: bool = True,
                         resume: bool = True,
                         ) -> ContextResult:
    """Deprecated: use :meth:`repro.api.session.Session.run`.

    Kept as a back-compat shim delegating to the default session; results
    are identical to the new API by construction.
    """
    warnings.warn(
        "run_workload_context is deprecated; use repro.api.Session.run "
        "(or repro.experiments.runner.run_context)", DeprecationWarning,
        stacklevel=2)
    return run_context(
        workload, context, size=size, seed=seed, scale=scale,
        warmup_fraction=warmup_fraction,
        session=_legacy_session(streaming, cache_dir, replay, checkpoint,
                                resume))


def run_all_contexts(workload: str, size: str = "small", seed: int = 42,
                     scale: int = DEFAULT_SCALE, streaming: bool = True,
                     cache_dir: Optional[str] = None, replay: bool = True,
                     checkpoint: bool = True, resume: bool = True,
                     ) -> Dict[str, ContextResult]:
    """Deprecated: use :meth:`repro.api.session.Session.run_all`."""
    warnings.warn(
        "run_all_contexts is deprecated; use repro.api.Session.run_all",
        DeprecationWarning, stacklevel=2)
    session = _legacy_session(streaming, cache_dir, replay, checkpoint,
                              resume)
    return {context: run_context(workload, context, size=size, seed=seed,
                                 scale=scale, session=session)
            for context in (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP)}


def run_suite(size: str = "small", seed: int = 42,
              scale: int = DEFAULT_SCALE,
              workloads: Tuple[str, ...] = WORKLOAD_NAMES,
              streaming: bool = True, replay: bool = True,
              checkpoint: bool = True, resume: bool = True,
              ) -> Dict[str, Dict[str, ContextResult]]:
    """Deprecated: use :meth:`repro.api.session.Session.suite` (pooled) or
    loop :func:`run_context` for a serial sweep.

    See :class:`repro.experiments.parallel.ParallelSuiteRunner` for the
    process-pool version used by ``python -m repro suite``.
    """
    warnings.warn(
        "run_suite is deprecated; use repro.api.Session.suite",
        DeprecationWarning, stacklevel=2)
    session = _legacy_session(streaming, None, replay, checkpoint, resume)
    return {name: {context: run_context(name, context, size=size, seed=seed,
                                        scale=scale, session=session)
                   for context in (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP)}
            for name in workloads}
