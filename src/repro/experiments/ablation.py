"""Ablation experiments (our additions; called out in DESIGN.md).

* **A1 — prefetcher coverage**: replay the per-context miss traces against
  the temporal-streaming and stride prefetcher models and compare coverage.
  The paper's characterization predicts the outcome: temporal streaming wins
  for Web and OLTP (especially in the coherence-dominated multi-chip
  context), while for DSS the stride prefetcher captures the bulk-copy
  traffic and temporal streaming adds little.
* **A2 — stream-finder agreement**: compare the SEQUITUR-based stream
  fraction with an independent greedy longest-previous-match detector; the
  two should report similar repetitive fractions.
* **A3 — stride-detector sensitivity**: Figure 3's strided fraction as a
  function of the detector's confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api.registry import register_analysis
from ..core.stride import stride_stream_breakdown
from ..core.suffix import find_streams_greedy
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import MULTI_CHIP
from ..prefetch import (CoverageResult, StridePrefetcher, TemporalPrefetcher,
                        evaluate_coverage)
from .runner import DEFAULT_WARMUP_FRACTION, run_context


@dataclass
class PrefetcherComparison:
    """Coverage of the temporal vs. stride prefetchers on one miss trace."""

    workload: str
    context: str
    temporal: CoverageResult
    stride: CoverageResult

    @property
    def temporal_advantage(self) -> float:
        """Coverage difference (temporal minus stride)."""
        return self.temporal.coverage - self.stride.coverage


def prefetcher_ablation(workloads: Tuple[str, ...] = ("Apache", "OLTP", "Qry1"),
                        context: str = MULTI_CHIP, size: str = "small",
                        seed: int = 42, depth: int = 8,
                        degree: int = 4, scale: int = DEFAULT_SCALE,
                        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                        session=None) -> List[PrefetcherComparison]:
    """A1: temporal-streaming vs stride prefetcher coverage per workload."""
    comparisons: List[PrefetcherComparison] = []
    for workload in workloads:
        result = run_context(workload, context, size=size, seed=seed,
                             scale=scale, warmup_fraction=warmup_fraction,
                             session=session)
        temporal = evaluate_coverage(TemporalPrefetcher(depth=depth),
                                     result.miss_trace)
        stride = evaluate_coverage(StridePrefetcher(degree=degree),
                                   result.miss_trace)
        comparisons.append(PrefetcherComparison(workload=workload,
                                                context=context,
                                                temporal=temporal,
                                                stride=stride))
    return comparisons


@dataclass
class StreamFinderAgreement:
    """SEQUITUR vs greedy-matcher repetitive fractions for one trace."""

    workload: str
    context: str
    sequitur_fraction: float
    greedy_fraction: float

    @property
    def difference(self) -> float:
        return abs(self.sequitur_fraction - self.greedy_fraction)


def stream_finder_ablation(workloads: Tuple[str, ...] = ("Apache", "OLTP"),
                           context: str = MULTI_CHIP, size: str = "small",
                           seed: int = 42, scale: int = DEFAULT_SCALE,
                           warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                           session=None) -> List[StreamFinderAgreement]:
    """A2: cross-validate the SEQUITUR stream fraction with a greedy matcher."""
    results: List[StreamFinderAgreement] = []
    for workload in workloads:
        result = run_context(workload, context, size=size, seed=seed,
                             scale=scale, warmup_fraction=warmup_fraction,
                             session=session)
        greedy = find_streams_greedy(result.miss_trace.addresses())
        results.append(StreamFinderAgreement(
            workload=workload, context=context,
            sequitur_fraction=result.stream_analysis.fraction_recurring,
            greedy_fraction=greedy.fraction_recurring))
    return results


def stride_sensitivity(workload: str = "Qry1", context: str = MULTI_CHIP,
                       size: str = "small", seed: int = 42,
                       confidences: Tuple[int, ...] = (1, 2, 4),
                       scale: int = DEFAULT_SCALE,
                       warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                       session=None) -> Dict[int, float]:
    """A3: strided miss fraction vs stride-detector confidence threshold."""
    result = run_context(workload, context, size=size, seed=seed, scale=scale,
                         warmup_fraction=warmup_fraction, session=session)
    out: Dict[int, float] = {}
    for confidence in confidences:
        breakdown = stride_stream_breakdown(result.miss_trace,
                                            result.stream_analysis,
                                            min_confidence=confidence)
        out[confidence] = breakdown.fraction_strided
    return out


# --------------------------------------------------------------------------- #
# Spec adapters: the ablations join the registered-analysis grid alongside
# the paper's figures and tables.
# --------------------------------------------------------------------------- #
@register_analysis("ablation-prefetchers", aliases=("a1",))
def _prefetcher_ablation_analysis(session, spec, scale: int,
                                  warmup_fraction: float
                                  ) -> List[PrefetcherComparison]:
    return prefetcher_ablation(size=spec.size, seed=spec.seed, scale=scale,
                               warmup_fraction=warmup_fraction,
                               session=session)


@register_analysis("ablation-stream-finders", aliases=("a2",))
def _stream_finder_analysis(session, spec, scale: int,
                            warmup_fraction: float
                            ) -> List[StreamFinderAgreement]:
    return stream_finder_ablation(size=spec.size, seed=spec.seed, scale=scale,
                                  warmup_fraction=warmup_fraction,
                                  session=session)


@register_analysis("ablation-stride-sensitivity", aliases=("a3",))
def _stride_sensitivity_analysis(session, spec, scale: int,
                                 warmup_fraction: float) -> Dict[int, float]:
    return stride_sensitivity(size=spec.size, seed=spec.seed, scale=scale,
                              warmup_fraction=warmup_fraction,
                              session=session)
