"""Figure 3: joint breakdown of strided and repetitive miss sequences.

Whether a miss sequence forms a temporal stream is orthogonal to whether it
follows a constant stride; this experiment crosses the two classifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.registry import register_analysis
from ..core.report import format_stride_breakdown
from ..core.stride import StrideStreamBreakdown
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import ALL_CONTEXTS
from ..workloads.configs import WORKLOAD_NAMES
from .runner import DEFAULT_WARMUP_FRACTION, run_context


@dataclass
class Figure3Result:
    """Per-(workload, context) stride x repetition breakdowns."""

    #: workload -> context -> breakdown
    breakdowns: Dict[str, Dict[str, StrideStreamBreakdown]]

    def render(self) -> str:
        rows = {f"{w} / {c}": b
                for w, contexts in self.breakdowns.items()
                for c, b in contexts.items()}
        return ("Figure 3: strides and temporal streams\n\n"
                + format_stride_breakdown(rows))


def figure3(size: str = "small", seed: int = 42,
            workloads: Tuple[str, ...] = WORKLOAD_NAMES,
            contexts: Tuple[str, ...] = ALL_CONTEXTS,
            scale: int = DEFAULT_SCALE,
            warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
            session=None) -> Figure3Result:
    """Regenerate Figure 3 for the given workloads and contexts."""
    breakdowns: Dict[str, Dict[str, StrideStreamBreakdown]] = {}
    for workload in workloads:
        breakdowns[workload] = {}
        for context in contexts:
            result = run_context(workload, context, size=size, seed=seed,
                                 scale=scale,
                                 warmup_fraction=warmup_fraction,
                                 session=session)
            breakdowns[workload][context] = result.stride
    return Figure3Result(breakdowns=breakdowns)


@register_analysis("figure3")
def _figure3_analysis(session, spec, scale: int,
                      warmup_fraction: float) -> Figure3Result:
    """Spec adapter: Figure 3 over one (scale, warmup) slice of the grid."""
    from .parallel import spec_contexts
    return figure3(size=spec.size, seed=spec.seed, workloads=spec.workloads,
                   contexts=spec_contexts(spec), scale=scale,
                   warmup_fraction=warmup_fraction, session=session)
