"""Figure 4: temporal stream length CDF (left) and reuse-distance PDF (right).

The left plot is the cumulative distribution of stream lengths weighted by
each stream's contribution to stream misses (so the 50th percentile is the
median stream length).  The right plot is the distribution of reuse distances
between consecutive occurrences of a stream, measured in intervening misses
at the processor that saw the earlier occurrence, over logarithmic bins up to
10^7 misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.registry import register_analysis
from ..core.lengths import LengthDistribution
from ..core.report import format_length_cdf, format_reuse_pdf
from ..core.reuse import ReuseDistanceDistribution
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import ALL_CONTEXTS
from ..workloads.configs import WORKLOAD_NAMES
from .runner import DEFAULT_WARMUP_FRACTION, run_context


@dataclass
class Figure4Result:
    """Stream-length and reuse-distance distributions for every bar."""

    #: workload -> context -> length CDF
    lengths: Dict[str, Dict[str, LengthDistribution]]
    #: workload -> context -> reuse-distance PDF
    reuse: Dict[str, Dict[str, ReuseDistanceDistribution]]

    def median_length(self, workload: str, context: str) -> int:
        return self.lengths[workload][context].median

    def render(self) -> str:
        lines = ["Figure 4 (left): temporal stream length CDFs", ""]
        for workload, contexts in self.lengths.items():
            for context, dist in contexts.items():
                lines.append(format_length_cdf(f"{workload} / {context}", dist))
                lines.append("")
        lines.append("Figure 4 (right): stream reuse-distance distributions")
        lines.append("")
        for workload, contexts in self.reuse.items():
            for context, dist in contexts.items():
                lines.append(format_reuse_pdf(f"{workload} / {context}", dist))
                lines.append("")
        return "\n".join(lines)


def figure4(size: str = "small", seed: int = 42,
            workloads: Tuple[str, ...] = WORKLOAD_NAMES,
            contexts: Tuple[str, ...] = ALL_CONTEXTS,
            scale: int = DEFAULT_SCALE,
            warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
            session=None) -> Figure4Result:
    """Regenerate Figure 4 for the given workloads and contexts."""
    lengths: Dict[str, Dict[str, LengthDistribution]] = {}
    reuse: Dict[str, Dict[str, ReuseDistanceDistribution]] = {}
    for workload in workloads:
        lengths[workload] = {}
        reuse[workload] = {}
        for context in contexts:
            result = run_context(workload, context, size=size, seed=seed,
                                 scale=scale,
                                 warmup_fraction=warmup_fraction,
                                 session=session)
            lengths[workload][context] = result.lengths
            reuse[workload][context] = result.reuse
    return Figure4Result(lengths=lengths, reuse=reuse)


@register_analysis("figure4")
def _figure4_analysis(session, spec, scale: int,
                      warmup_fraction: float) -> Figure4Result:
    """Spec adapter: Figure 4 over one (scale, warmup) slice of the grid."""
    from .parallel import spec_contexts
    return figure4(size=spec.size, seed=spec.seed, workloads=spec.workloads,
                   contexts=spec_contexts(spec), scale=scale,
                   warmup_fraction=warmup_fraction, session=session)
