"""Tables 1-5 of the paper.

* Table 1 — application parameters (configuration; reproduced verbatim from
  :mod:`repro.workloads.configs` together with the model-scale parameters).
* Table 2 — miss-category definitions (the registry in
  :mod:`repro.core.modules`).
* Tables 3-5 — temporal-stream origins for the Web, OLTP, and DSS workloads:
  per category, the share of all misses and the share of misses that are both
  in that category and inside a temporal stream, for each system context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api.registry import register_analysis
from ..core.modules import CATEGORIES, Category, ModuleBreakdown
from ..core.report import _format_table, format_module_table, pct
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import ALL_CONTEXTS
from ..workloads.configs import TABLE1, ApplicationConfig, WORKLOAD_NAMES
from .runner import DEFAULT_WARMUP_FRACTION, run_context


# --------------------------------------------------------------------------- #
# Table 1 and Table 2 (static configuration artifacts)
# --------------------------------------------------------------------------- #
def table1() -> Tuple[ApplicationConfig, ...]:
    """Application parameters (Table 1)."""
    return TABLE1


def render_table1() -> str:
    rows = [[cfg.name, cfg.app_class, cfg.paper_parameters,
             ", ".join(f"{k}={v}" for k, v in sorted(cfg.model_parameters.items()))]
            for cfg in TABLE1]
    return ("Table 1: application parameters\n"
            + _format_table(["Workload", "Class", "Paper configuration",
                             "Model configuration"], rows))


def table2() -> Tuple[Category, ...]:
    """Miss-category definitions (Table 2)."""
    return CATEGORIES


def render_table2() -> str:
    rows = [[c.name, c.scope, c.description] for c in CATEGORIES]
    return ("Table 2: miss categories\n"
            + _format_table(["Category", "Scope", "Description"], rows))


# --------------------------------------------------------------------------- #
# Tables 3-5 (temporal stream origins)
# --------------------------------------------------------------------------- #
@dataclass
class OriginsResult:
    """Per-context module breakdowns for one application class."""

    title: str
    scope: str
    #: workload -> context -> ModuleBreakdown
    breakdowns: Dict[str, Dict[str, ModuleBreakdown]]

    def breakdown(self, workload: str, context: str) -> ModuleBreakdown:
        return self.breakdowns[workload][context]

    def merged(self, context: str) -> ModuleBreakdown:
        """Average the per-workload breakdowns for one context.

        The paper reports one table per application *class*; when a class has
        several workloads (Apache and Zeus; the three DSS queries), their
        per-category shares are averaged with equal weight.
        """
        rows: Dict[str, List[float]] = {}
        streams: Dict[str, List[float]] = {}
        counts: Dict[str, int] = {}
        overall: List[float] = []
        total = 0
        for per_context in self.breakdowns.values():
            breakdown = per_context[context]
            overall.append(breakdown.overall_in_streams)
            total += breakdown.total_misses
            for name, row in breakdown.rows.items():
                rows.setdefault(name, []).append(row.pct_misses)
                streams.setdefault(name, []).append(row.pct_in_streams)
                counts[name] = counts.get(name, 0) + row.n_misses
        n = max(1, len(self.breakdowns))
        from ..core.modules import CategoryRow
        merged_rows = {
            name: CategoryRow(category=name,
                              pct_misses=sum(values) / n,
                              pct_in_streams=sum(streams[name]) / n,
                              n_misses=counts[name])
            for name, values in rows.items()}
        return ModuleBreakdown(rows=merged_rows,
                               overall_in_streams=sum(overall) / n if overall else 0.0,
                               total_misses=total)

    def render(self) -> str:
        contexts = {context: self.merged(context) for context in ALL_CONTEXTS}
        return format_module_table(self.title, contexts, self.scope)


def _origins(title: str, scope: str, workloads: Tuple[str, ...], size: str,
             seed: int, scale: int = DEFAULT_SCALE,
             warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
             session=None) -> OriginsResult:
    breakdowns: Dict[str, Dict[str, ModuleBreakdown]] = {}
    for workload in workloads:
        breakdowns[workload] = {}
        for context in ALL_CONTEXTS:
            result = run_context(workload, context, size=size, seed=seed,
                                 scale=scale,
                                 warmup_fraction=warmup_fraction,
                                 session=session)
            breakdowns[workload][context] = result.modules
    return OriginsResult(title=title, scope=scope, breakdowns=breakdowns)


def table3(size: str = "small", seed: int = 42, scale: int = DEFAULT_SCALE,
           warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
           session=None) -> OriginsResult:
    """Table 3: temporal stream origins in the Web applications."""
    return _origins("Table 3: temporal stream origins in Web applications",
                    "web", ("Apache", "Zeus"), size, seed, scale=scale,
                    warmup_fraction=warmup_fraction, session=session)


def table4(size: str = "small", seed: int = 42, scale: int = DEFAULT_SCALE,
           warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
           session=None) -> OriginsResult:
    """Table 4: temporal stream origins in OLTP (DB2)."""
    return _origins("Table 4: temporal stream origins in OLTP (DB2)",
                    "db2", ("OLTP",), size, seed, scale=scale,
                    warmup_fraction=warmup_fraction, session=session)


def table5(size: str = "small", seed: int = 42, scale: int = DEFAULT_SCALE,
           warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
           session=None) -> OriginsResult:
    """Table 5: temporal stream origins in DSS (DB2)."""
    return _origins("Table 5: temporal stream origins in DSS (DB2)",
                    "db2", ("Qry1", "Qry2", "Qry17"), size, seed, scale=scale,
                    warmup_fraction=warmup_fraction, session=session)


# --------------------------------------------------------------------------- #
# Spec adapters.  Tables 1-2 are static configuration artifacts; Tables 3-5
# use the paper's fixed per-class workload sets (independent of the spec's
# workload axis) so their output matches the legacy ``report`` command.
# --------------------------------------------------------------------------- #
@register_analysis("table1")
def _table1_analysis(session, spec, scale: int, warmup_fraction: float) -> str:
    return render_table1()


@register_analysis("table2")
def _table2_analysis(session, spec, scale: int, warmup_fraction: float) -> str:
    return render_table2()


@register_analysis("table3")
def _table3_analysis(session, spec, scale: int,
                     warmup_fraction: float) -> OriginsResult:
    return table3(size=spec.size, seed=spec.seed, scale=scale,
                  warmup_fraction=warmup_fraction, session=session)


@register_analysis("table4")
def _table4_analysis(session, spec, scale: int,
                     warmup_fraction: float) -> OriginsResult:
    return table4(size=spec.size, seed=spec.seed, scale=scale,
                  warmup_fraction=warmup_fraction, session=session)


@register_analysis("table5")
def _table5_analysis(session, spec, scale: int,
                     warmup_fraction: float) -> OriginsResult:
    return table5(size=spec.size, seed=spec.seed, scale=scale,
                  warmup_fraction=warmup_fraction, session=session)
