"""Figure 2: fraction of misses in temporal streams.

For every workload and system context, the fraction of read misses that are
part of the first occurrence of a temporal stream (New stream), a subsequent
occurrence (Recurring stream), or no stream at all (Non-repetitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.registry import register_analysis
from ..core.report import format_stream_fractions
from ..core.streams import StreamAnalysis
from ..mem.config import DEFAULT_SCALE
from ..mem.trace import ALL_CONTEXTS
from ..workloads.configs import WORKLOAD_NAMES
from .runner import DEFAULT_WARMUP_FRACTION, run_context


@dataclass
class Figure2Result:
    """Per-(workload, context) stream-fraction analyses."""

    #: workload -> context -> StreamAnalysis
    analyses: Dict[str, Dict[str, StreamAnalysis]]

    def fraction_in_streams(self, workload: str, context: str) -> float:
        return self.analyses[workload][context].fraction_in_streams

    def render(self) -> str:
        rows = {f"{w} / {c}": analysis
                for w, contexts in self.analyses.items()
                for c, analysis in contexts.items()}
        return ("Figure 2: fraction of misses in temporal streams\n\n"
                + format_stream_fractions(rows))


def figure2(size: str = "small", seed: int = 42,
            workloads: Tuple[str, ...] = WORKLOAD_NAMES,
            contexts: Tuple[str, ...] = ALL_CONTEXTS,
            scale: int = DEFAULT_SCALE,
            warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
            session=None) -> Figure2Result:
    """Regenerate Figure 2 for the given workloads and contexts."""
    analyses: Dict[str, Dict[str, StreamAnalysis]] = {}
    for workload in workloads:
        analyses[workload] = {}
        for context in contexts:
            result = run_context(workload, context, size=size, seed=seed,
                                 scale=scale,
                                 warmup_fraction=warmup_fraction,
                                 session=session)
            analyses[workload][context] = result.stream_analysis
    return Figure2Result(analyses=analyses)


@register_analysis("figure2")
def _figure2_analysis(session, spec, scale: int,
                      warmup_fraction: float) -> Figure2Result:
    """Spec adapter: Figure 2 over one (scale, warmup) slice of the grid."""
    from .parallel import spec_contexts
    return figure2(size=spec.size, seed=spec.seed, workloads=spec.workloads,
                   contexts=spec_contexts(spec), scale=scale,
                   warmup_fraction=warmup_fraction, session=session)
