"""System configuration for the multi-chip and single-chip models.

The paper's systems (Section 3, "System contexts"):

* multi-chip: 16-node distributed shared memory machine; each node has split
  2-way 64KB L1 I/D caches and a private unified 16-way 8MB L2; MSI protocol.
* single-chip: 4-core CMP; split 64KB L1 I/D per core; shared 16-way 8MB L2;
  MOSI protocol modelled on Piranha; non-inclusive hierarchy.

Because the substrate here is a pure-Python trace-driven simulator fed by
*synthetic scaled-down workloads*, the default configuration scales the cache
capacities down by ``DEFAULT_SCALE`` while preserving the capacity ratios
(L2/L1 and footprint/L2) that determine the miss classification mix.  Use
:func:`paper_config` for the full-size parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Cache block (line) size in bytes, matching typical SPARC systems.
BLOCK_SIZE = 64

#: OS page size (Solaris on SPARC), relevant for bulk-copy stream lengths.
PAGE_SIZE = 4096

#: Default linear scale-down factor applied to cache capacities.
DEFAULT_SCALE = 64


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    assoc: int
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.block_size):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*block ({self.assoc}*{self.block_size})")

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.assoc


@dataclass(frozen=True)
class SystemConfig:
    """Parameters shared by both system organisations."""

    #: Number of processors (16 nodes multi-chip, 4 cores single-chip).
    n_cpus: int
    l1: CacheConfig
    l2: CacheConfig
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError("n_cpus must be positive")
        if self.l1.block_size != self.block_size or self.l2.block_size != self.block_size:
            raise ValueError("cache block sizes must match system block size")


def scaled_config(n_cpus: int, scale: int = DEFAULT_SCALE) -> SystemConfig:
    """Build a configuration with the paper's geometry scaled down.

    The paper uses 64KB 2-way L1s and 8MB 16-way L2s.  With the default
    scale of 64 this yields a 1KB L1 (16 blocks) and a 128KB L2 (2048
    blocks); associativities are preserved.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    l1_bytes = max(64 * 1024 // scale, 2 * BLOCK_SIZE)
    l2_bytes = max(8 * 1024 * 1024 // scale, 16 * BLOCK_SIZE)
    # Round to a multiple of assoc * block so geometry stays valid.
    l1_bytes -= l1_bytes % (2 * BLOCK_SIZE)
    l2_bytes -= l2_bytes % (16 * BLOCK_SIZE)
    return SystemConfig(
        n_cpus=n_cpus,
        l1=CacheConfig(size_bytes=l1_bytes, assoc=2),
        l2=CacheConfig(size_bytes=l2_bytes, assoc=16),
    )


def paper_config(n_cpus: int) -> SystemConfig:
    """The unscaled configuration used in the paper."""
    return scaled_config(n_cpus=n_cpus, scale=1)


def multichip_config(scale: int = DEFAULT_SCALE) -> SystemConfig:
    """16-node multi-chip system (scaled)."""
    return scaled_config(n_cpus=16, scale=scale)


def singlechip_config(scale: int = DEFAULT_SCALE) -> SystemConfig:
    """4-core single-chip system (scaled)."""
    return scaled_config(n_cpus=4, scale=scale)
