"""Trace record types shared by the workload generators and cache models.

The workload generators (:mod:`repro.workloads`) produce sequences of
:class:`Access` records.  The system models (:mod:`repro.mem.multichip`,
:mod:`repro.mem.singlechip`) consume those accesses and emit
:class:`MissRecord` sequences for each *system context* the paper studies
(multi-chip off-chip misses, single-chip off-chip misses, intra-chip misses).

All addresses are byte addresses; the cache models convert them to block
addresses using the configured block size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class AccessKind(enum.IntEnum):
    """Kind of memory operation appearing in a workload trace."""

    READ = 0
    WRITE = 1
    #: Device (DMA) write into main memory.  Invalidate cached copies and
    #: mark the block as I/O-written for miss classification.
    DMA_WRITE = 2
    #: Kernel-to-user bulk copy destination store (Solaris ``default_copyout``
    #: family).  These use non-allocating stores: the block is written in
    #: memory, cached copies are invalidated, and nothing is allocated in the
    #: writer's cache hierarchy.
    COPYOUT_WRITE = 3
    #: Instruction fetch.  Traced like a read; tagged so analyses can
    #: separate I-side behaviour if desired.
    IFETCH = 4


class MissClass(enum.IntEnum):
    """Miss classification used for Figure 1 (an extended "4 C's" model)."""

    #: Block written by another processor since this processor last read it.
    COHERENCE = 0
    #: Block written by a DMA transfer or OS-to-user bulk copy since this
    #: processor (or chip) last accessed it.
    IO_COHERENCE = 1
    #: Block never previously accessed by any processor.
    COMPULSORY = 2
    #: Everything else (capacity or conflict).
    REPLACEMENT = 3


class IntraChipClass(enum.IntEnum):
    """Classification of L1 misses in the single-chip system (Figure 1 right)."""

    #: Coherence miss satisfied by a peer L1 (dirty copy in another core).
    COHERENCE_PEER_L1 = 0
    #: Coherence miss satisfied by the shared L2.
    COHERENCE_L2 = 1
    #: L1 replacement miss satisfied by the shared L2.
    REPLACEMENT_L2 = 2
    #: The L1 miss also missed in the shared L2 (off-chip).
    OFF_CHIP = 3


@dataclass(frozen=True)
class FunctionRef:
    """A symbol-table entry attached to every access.

    The paper attributes misses to code modules by walking the call stack at
    each miss and matching function names against module naming conventions
    (Section 3, "Code module analysis").  Our synthetic workloads attach the
    enclosing function directly, which plays the role of the resolved stack.
    """

    name: str
    module: str
    category: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.module}:{self.name}"


#: Function reference used when a trace record has no attribution.
UNKNOWN_FUNCTION = FunctionRef(name="<unknown>", module="unknown",
                               category="Uncategorized / Unknown")


@dataclass
class Access:
    """A single memory operation emitted by a workload generator.

    Attributes
    ----------
    cpu:
        Logical processor issuing the access.  ``-1`` for device (DMA)
        operations that are not issued by any processor.
    addr:
        Byte address.
    size:
        Size in bytes.  The cache models split multi-block accesses into
        one operation per cache block.
    kind:
        Operation kind (read, write, DMA write, copyout store, ifetch).
    fn:
        Function attribution for code-module analysis.
    thread:
        Software thread identifier (used by the scheduler model and for
        debugging; not needed by the cache models).
    icount:
        Number of instructions executed since the previous access on this
        CPU.  Summed to obtain total instruction counts for the
        misses-per-kilo-instruction metrics of Figure 1.
    """

    __slots__ = ("cpu", "addr", "size", "kind", "fn", "thread", "icount")

    cpu: int
    addr: int
    size: int
    kind: AccessKind
    fn: FunctionRef
    thread: int
    icount: int

    def __init__(self, cpu: int, addr: int, size: int = 8,
                 kind: AccessKind = AccessKind.READ,
                 fn: FunctionRef = UNKNOWN_FUNCTION,
                 thread: int = 0, icount: int = 4) -> None:
        self.cpu = cpu
        self.addr = addr
        self.size = size
        self.kind = kind
        self.fn = fn
        self.thread = thread
        self.icount = icount

    @property
    def is_read(self) -> bool:
        return self.kind in (AccessKind.READ, AccessKind.IFETCH)

    @property
    def is_io_write(self) -> bool:
        return self.kind in (AccessKind.DMA_WRITE, AccessKind.COPYOUT_WRITE)


@dataclass
class MissRecord:
    """A classified read miss in one of the three system contexts.

    The analysis layer (:mod:`repro.core`) operates on sequences of these.
    """

    __slots__ = ("seq", "cpu", "block", "miss_class", "fn", "supplier")

    #: Position of this miss within its context's miss trace (0-based).
    seq: int
    #: Processor (node or core) that incurred the miss.
    cpu: int
    #: Cache-block address (byte address of the block base).
    block: int
    #: Classification (MissClass for off-chip traces, IntraChipClass for the
    #: intra-chip trace).
    miss_class: int
    #: Function attribution copied from the triggering access.
    fn: FunctionRef
    #: For intra-chip misses: which level supplied the data (informational).
    supplier: Optional[int]

    def __init__(self, seq: int, cpu: int, block: int, miss_class: int,
                 fn: FunctionRef = UNKNOWN_FUNCTION,
                 supplier: Optional[int] = None) -> None:
        self.seq = seq
        self.cpu = cpu
        self.block = block
        self.miss_class = miss_class
        self.fn = fn
        self.supplier = supplier

    def key(self) -> Tuple[int, int]:
        """(cpu, block) pair, convenient for grouping."""
        return (self.cpu, self.block)
