"""Chunk-wise streaming consumption shared by both system models.

:class:`StreamingSystemMixin` adds ``run_stream``/``run_chunks``/
``process_chunk`` on top of the per-access ``process``/``set_recording``/
``finish`` interface that :class:`~repro.mem.multichip.MultiChipSystem` and
:class:`~repro.mem.singlechip.SingleChipSystem` both implement, so the
warm-up boundary arithmetic lives in exactly one place.

Chunks are normally plain lists of :class:`~repro.mem.records.Access`, but
``process_chunk`` also accepts *columnar* chunks (duck-typed on the
``block_spans``/``recorded_instructions`` interface of
:class:`repro.trace.format.ColumnarChunk`): for those, the per-access block
arithmetic and instruction counting are lifted out of the inner loop into
vectorised whole-column numpy operations.  The fast path leans on two
internals both system models share — ``self._instructions`` and
``self._process_block`` — and is regression-tested to be access-for-access
identical to the scalar path.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized

from .records import Access
from .trace import DEFAULT_CHUNK_SIZE, iter_chunks


class StreamingSystemMixin:
    """Consume an access iterator chunk-wise with optional warm-up."""

    def run_stream(self, accesses: Iterable[Access], warmup: int = 0,
                   chunk_size: int = DEFAULT_CHUNK_SIZE) -> Any:
        """Process ``accesses`` lazily; returns whatever ``finish`` returns.

        The first ``warmup`` accesses update cache and classification state
        without producing miss records (recording off), exactly as the eager
        runner's warm-up slice did.  Memory stays bounded by ``chunk_size``.
        """
        return self.run_chunks(iter_chunks(accesses, chunk_size),
                               warmup=warmup)

    def run_chunks(self, chunks: Iterable[Sized], warmup: int = 0) -> Any:
        """Process pre-chunked accesses (lists or columnar epoch chunks).

        This is the replay entry point: feeding it
        ``TraceReader.iter_epochs()`` simulates a captured trace without
        materialising ``Access`` lists, splitting the warm-up boundary
        inside an epoch by (zero-copy) chunk slicing.
        """
        self.set_recording(warmup <= 0)
        seen = 0
        for chunk in chunks:
            if not self.recording and seen + len(chunk) > warmup:
                head = warmup - seen
                self.process_chunk(chunk[:head])
                self.set_recording(True)
                self.process_chunk(chunk[head:])
            else:
                self.process_chunk(chunk)
            seen += len(chunk)
        self.set_recording(True)
        return self.finish()

    def process_chunk(self, accesses: Iterable[Access]) -> None:
        """Process a batch of accesses in order.

        Columnar chunks take the vectorised path: block spans for the whole
        chunk come from one shifted-compare over the address column, and
        instruction counting is a single masked sum instead of a per-access
        branch.
        """
        spans = getattr(accesses, "block_spans", None)
        if spans is None:
            for access in accesses:
                self.process(access)
            return
        if self.recording:
            self._instructions += accesses.recorded_instructions()
        block_size = self.block_size
        first, last = spans(block_size)
        process_block = self._process_block
        for access, block, stop in zip(accesses, first.tolist(),
                                       last.tolist()):
            while True:
                process_block(access, block)
                if block >= stop:
                    break
                block += block_size
