"""Chunk-wise streaming consumption shared by both system models.

:class:`StreamingSystemMixin` adds ``run_stream``/``process_chunk`` on top
of the per-access ``process``/``set_recording``/``finish`` interface that
:class:`~repro.mem.multichip.MultiChipSystem` and
:class:`~repro.mem.singlechip.SingleChipSystem` both implement, so the
warm-up boundary arithmetic lives in exactly one place.
"""

from __future__ import annotations

from typing import Any, Iterable

from .records import Access
from .trace import DEFAULT_CHUNK_SIZE, iter_chunks


class StreamingSystemMixin:
    """Consume an access iterator chunk-wise with optional warm-up."""

    def run_stream(self, accesses: Iterable[Access], warmup: int = 0,
                   chunk_size: int = DEFAULT_CHUNK_SIZE) -> Any:
        """Process ``accesses`` lazily; returns whatever ``finish`` returns.

        The first ``warmup`` accesses update cache and classification state
        without producing miss records (recording off), exactly as the eager
        runner's warm-up slice did.  Memory stays bounded by ``chunk_size``.
        """
        self.set_recording(warmup <= 0)
        seen = 0
        for chunk in iter_chunks(accesses, chunk_size):
            if not self.recording and seen + len(chunk) > warmup:
                head = warmup - seen
                self.process_chunk(chunk[:head])
                self.set_recording(True)
                self.process_chunk(chunk[head:])
            else:
                self.process_chunk(chunk)
            seen += len(chunk)
        self.set_recording(True)
        return self.finish()

    def process_chunk(self, accesses: Iterable[Access]) -> None:
        """Process a batch of accesses in order."""
        for access in accesses:
            self.process(access)
