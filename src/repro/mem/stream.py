"""Chunk-wise streaming consumption shared by both system models.

:class:`StreamingSystemMixin` adds ``run_stream``/``run_chunks``/
``process_chunk`` on top of the per-access ``process``/``set_recording``/
``finish`` interface that :class:`~repro.mem.multichip.MultiChipSystem` and
:class:`~repro.mem.singlechip.SingleChipSystem` both implement, so the
warm-up boundary arithmetic lives in exactly one place.

Chunks are normally plain lists of :class:`~repro.mem.records.Access`, but
``process_chunk`` also accepts *columnar* chunks (duck-typed on the
``block_spans``/``recorded_instructions`` interface of
:class:`repro.trace.format.ColumnarChunk`): for those, the per-access block
arithmetic and instruction counting are lifted out of the inner loop into
vectorised whole-column numpy operations, and consecutive single-block reads
of the same block by the same CPU — ubiquitous in pointer-chasing workloads —
are collapsed into one protocol action plus a batched hit count
(``_process_read_hits``), so the per-access Python loop only runs once per
*distinct* (cpu, block) run.  The fast path leans on internals both system
models share — ``self._instructions``, ``self._process_block``, and
``self._process_read_hits`` — and is regression-tested to be
access-for-access identical to the scalar path.

``run_chunks`` also accepts a starting offset (``seen``) and a per-chunk
callback (``on_chunk``); together these are what the checkpoint subsystem
builds on — a resumed run continues the warm-up bookkeeping mid-stream, and
the callback saves an epoch-boundary snapshot after each replayed chunk.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sized

import numpy as np

from .records import Access, AccessKind
from .trace import DEFAULT_CHUNK_SIZE, iter_chunks

_READ = int(AccessKind.READ)
_IFETCH = int(AccessKind.IFETCH)


class StreamingSystemMixin:
    """Consume an access iterator chunk-wise with optional warm-up."""

    def run_stream(self, accesses: Iterable[Access], warmup: int = 0,
                   chunk_size: int = DEFAULT_CHUNK_SIZE) -> Any:
        """Process ``accesses`` lazily; returns whatever ``finish`` returns.

        The first ``warmup`` accesses update cache and classification state
        without producing miss records (recording off), exactly as the eager
        runner's warm-up slice did.  Memory stays bounded by ``chunk_size``.
        """
        return self.run_chunks(iter_chunks(accesses, chunk_size),
                               warmup=warmup)

    def run_chunks(self, chunks: Iterable[Sized], warmup: int = 0,
                   seen: int = 0,
                   on_chunk: Optional[Callable[[Any, int], None]] = None
                   ) -> Any:
        """Process pre-chunked accesses (lists or columnar epoch chunks).

        This is the replay entry point: feeding it
        ``TraceReader.iter_epochs()`` simulates a captured trace without
        materialising ``Access`` lists, splitting the warm-up boundary
        inside an epoch by (zero-copy) chunk slicing.

        ``seen`` is the number of accesses already processed before the
        first chunk (non-zero when resuming from a checkpoint mid-trace);
        the warm-up boundary is honoured relative to the whole stream.
        ``on_chunk(chunk, seen_after)`` is invoked after each chunk is fully
        processed — the checkpoint writer hooks in here to snapshot system
        state at epoch boundaries.
        """
        self.set_recording(warmup <= seen)
        for chunk in chunks:
            if not self.recording and seen + len(chunk) > warmup:
                head = warmup - seen
                self.process_chunk(chunk[:head])
                self.set_recording(True)
                self.process_chunk(chunk[head:])
            else:
                self.process_chunk(chunk)
            seen += len(chunk)
            if on_chunk is not None:
                on_chunk(chunk, seen)
        self.set_recording(True)
        return self.finish()

    def process_chunk(self, accesses: Iterable[Access]) -> None:
        """Process a batch of accesses in order.

        Columnar chunks take the vectorised path: block spans for the whole
        chunk come from one shifted-compare over the address column,
        instruction counting is a single masked sum, and runs of same-block
        single-block reads by one CPU are batched — the first access of a
        run goes through the full protocol (after which the block is
        guaranteed resident and MRU in that CPU's L1) and the tail becomes
        one ``_process_read_hits`` call.
        """
        spans = getattr(accesses, "block_spans", None)
        if spans is None:
            for access in accesses:
                self.process(access)
            return
        if len(accesses) == 0:
            return
        if self.recording:
            self._instructions += accesses.recorded_instructions()
        block_size = self.block_size
        first, last = spans(block_size)
        cpu = accesses.columns["cpu"]
        kind = accesses.columns["kind"]
        # A run tail is batchable when every access is a single-block CPU
        # read of the same block by the same CPU as its predecessor.
        batchable = (((kind == _READ) | (kind == _IFETCH))
                     & (first == last) & (cpu >= 0))
        continues = np.zeros(len(accesses), dtype=bool)
        continues[1:] = (batchable[1:] & batchable[:-1]
                         & (first[1:] == first[:-1]) & (cpu[1:] == cpu[:-1]))
        starts = np.flatnonzero(~continues)
        run_firsts = accesses.accesses_at(starts)
        first_l = first[starts].tolist()
        last_l = last[starts].tolist()
        cpu_l = cpu[starts].tolist()
        starts_l = starts.tolist()
        ends_l = starts_l[1:] + [len(accesses)]
        process_block = self._process_block
        for access, block, stop, start, end, core in zip(
                run_firsts, first_l, last_l, starts_l, ends_l, cpu_l):
            while True:
                process_block(access, block)
                if block >= stop:
                    break
                block += block_size
            if end - start > 1:
                self._process_read_hits(core, stop, end - start - 1)
