"""Set-associative cache with true-LRU replacement and per-block state.

Used as the building block for both system models.  A cache stores
*coherence state* per block (MOSI superset; MSI models simply never use the
OWNED state).  Lookups and fills operate on block addresses (byte address of
the block base); callers are responsible for converting byte addresses using
:meth:`Cache.block_of`.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from .config import CacheConfig


class State(enum.IntEnum):
    """Coherence state of a cached block (MOSI superset)."""

    INVALID = 0
    SHARED = 1
    OWNED = 2
    MODIFIED = 3

    @property
    def is_dirty(self) -> bool:
        return self in (State.OWNED, State.MODIFIED)

    @property
    def is_valid(self) -> bool:
        return self is not State.INVALID


class Cache:
    """A set-associative, write-allocate cache with true-LRU replacement.

    Each set is an ``OrderedDict`` mapping block address to coherence state;
    the ordering encodes recency (last item = most recently used).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.block_size = config.block_size
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._sets: List["OrderedDict[int, State]"] = [
            OrderedDict() for _ in range(self.n_sets)]
        # Statistics (informational; the system models keep their own).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def block_of(self, addr: int) -> int:
        """Block base address containing byte address ``addr``."""
        return addr - (addr % self.block_size)

    def _set_index(self, block: int) -> int:
        return (block // self.block_size) % self.n_sets

    # ------------------------------------------------------------------ #
    # Lookup / fill / invalidate
    # ------------------------------------------------------------------ #
    def lookup(self, block: int, touch: bool = True) -> State:
        """Return the state of ``block`` (INVALID if absent).

        When ``touch`` is true and the block is present, it is promoted to
        most-recently-used.
        """
        cache_set = self._sets[self._set_index(block)]
        state = cache_set.get(block)
        if state is None:
            self.misses += 1
            return State.INVALID
        self.hits += 1
        if touch:
            cache_set.move_to_end(block)
        return state

    def peek(self, block: int) -> State:
        """Like :meth:`lookup` but without updating LRU or statistics."""
        cache_set = self._sets[self._set_index(block)]
        return cache_set.get(block, State.INVALID)

    def fill(self, block: int, state: State) -> Optional[Tuple[int, State]]:
        """Insert ``block`` with ``state``, evicting the LRU victim if needed.

        Returns ``(victim_block, victim_state)`` if an eviction occurred,
        otherwise ``None``.  Filling a block already present simply updates
        its state and recency.
        """
        if not state.is_valid:
            raise ValueError("cannot fill a block in INVALID state")
        cache_set = self._sets[self._set_index(block)]
        if block in cache_set:
            cache_set[block] = state
            cache_set.move_to_end(block)
            return None
        victim: Optional[Tuple[int, State]] = None
        if len(cache_set) >= self.assoc:
            victim_block, victim_state = cache_set.popitem(last=False)
            victim = (victim_block, victim_state)
            self.evictions += 1
        cache_set[block] = state
        return victim

    def record_hits(self, block: int, count: int) -> None:
        """Account ``count`` consecutive hits on a resident block at once.

        Equivalent to calling :meth:`lookup` ``count`` times on a block that
        is already most-recently-used: the hit counter advances by ``count``
        and the block ends up MRU.  Raises ``KeyError`` when the block is not
        resident (callers must have established residency first).
        """
        cache_set = self._sets[self._set_index(block)]
        cache_set.move_to_end(block)
        self.hits += count

    def set_state(self, block: int, state: State) -> None:
        """Change the state of a resident block (or drop it if INVALID)."""
        cache_set = self._sets[self._set_index(block)]
        if block not in cache_set:
            if state.is_valid:
                raise KeyError(f"block {block:#x} not resident in {self.name}")
            return
        if state.is_valid:
            cache_set[block] = state
        else:
            del cache_set[block]

    def invalidate(self, block: int) -> State:
        """Remove ``block`` and return its previous state."""
        cache_set = self._sets[self._set_index(block)]
        return cache_set.pop(block, State.INVALID)

    def downgrade(self, block: int) -> State:
        """Downgrade a dirty block to SHARED (remote read).  Returns the old state."""
        cache_set = self._sets[self._set_index(block)]
        old = cache_set.get(block, State.INVALID)
        if old.is_valid:
            cache_set[block] = State.SHARED
        return old

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __contains__(self, block: int) -> bool:
        return self.peek(block).is_valid

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> Iterator[Tuple[int, State]]:
        for cache_set in self._sets:
            yield from cache_set.items()

    def occupancy(self) -> float:
        """Fraction of cache frames currently holding a valid block."""
        return len(self) / (self.n_sets * self.assoc)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Full cache state as plain (picklable, version-stable) structures.

        Resident blocks are one flat ``frames`` table of
        ``[set, position, block, state]`` rows sorted by (set, position),
        where position is the block's LRU rank within its set (0 = least
        recently used) — so :meth:`restore` reconstructs recency exactly,
        and the table's sorted-unique-rows shape lets delta checkpoints
        store just the frames an epoch actually touched
        (:func:`repro.checkpoint.delta.encode_rows`).  Geometry and the
        hit/miss/eviction counters ride along so restored statistics
        continue seamlessly.
        """
        return {
            "frames": [[index, position, int(block), int(state)]
                       for index, cache_set in enumerate(self._sets)
                       for position, (block, state)
                       in enumerate(cache_set.items())],
            "n_sets": self.n_sets,
            "assoc": self.assoc,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the cache contents with a :meth:`snapshot` state dict.

        The snapshot must match this cache's geometry (set count and
        associativity) and its ``frames`` rows must arrive sorted by
        (set, position) with contiguous positions — exactly what
        :meth:`snapshot` and a delta-chain fold produce; any mismatch
        raises ``ValueError`` before any state is mutated.
        """
        if int(state["n_sets"]) != self.n_sets:
            raise ValueError(
                f"snapshot has {state['n_sets']} sets, {self.name} has "
                f"{self.n_sets}")
        if int(state["assoc"]) != self.assoc:
            raise ValueError(
                f"snapshot is {state['assoc']}-way, {self.name} is "
                f"{self.assoc}-way")
        new_sets: List["OrderedDict[int, State]"] = [
            OrderedDict() for _ in range(self.n_sets)]
        for index, position, block, value in state["frames"]:
            if not 0 <= index < self.n_sets:
                raise ValueError(
                    f"snapshot frame names set {index}, {self.name} has "
                    f"{self.n_sets}")
            cache_set = new_sets[index]
            if position >= self.assoc:
                raise ValueError(
                    f"snapshot set {index} holds more than {self.assoc} "
                    f"blocks, {self.name} is {self.assoc}-way")
            if position != len(cache_set) or int(block) in cache_set:
                raise ValueError(
                    f"snapshot frames for set {index} are not contiguous "
                    f"unique (set, position) rows")
            cache_set[int(block)] = State(int(value))
        self._sets = new_sets
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
