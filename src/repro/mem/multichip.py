"""Multi-chip distributed-shared-memory system model (MSI protocol).

The paper's multi-chip context is a 16-node DSM machine: each node holds one
processor with private L1 and L2 caches; an MSI invalidation protocol keeps
them coherent.  The trace of interest is the sequence of **off-chip read
misses** — reads that miss in a node's L2 — classified with the extended
4C model (:mod:`repro.mem.classify`).

Like the paper's trace-collection mode, the model is functional and
timing-free: accesses are processed in program order with no stalls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .cache import Cache, State
from .classify import BlockHistory
from .config import SystemConfig
from .records import Access, AccessKind, MissRecord
from .stream import StreamingSystemMixin
from .trace import AccessTrace, MissTrace, MULTI_CHIP


class MultiChipSystem(StreamingSystemMixin):
    """Trace-driven model of the 16-node multi-chip DSM system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.block_size = config.block_size
        self.n_nodes = config.n_cpus
        self.l1s: List[Cache] = [Cache(config.l1, name=f"node{i}.l1")
                                 for i in range(self.n_nodes)]
        self.l2s: List[Cache] = [Cache(config.l2, name=f"node{i}.l2")
                                 for i in range(self.n_nodes)]
        self.history = BlockHistory()
        self._offchip = MissTrace(MULTI_CHIP)
        self._instructions = 0
        #: When False, accesses still update cache and classification state
        #: but produce no miss records and no instruction counts (used for
        #: cache warm-up, mirroring the paper's warming phase).
        self.recording = True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, trace: Iterable[Access]) -> MissTrace:
        """Process an access trace and return the off-chip read-miss trace."""
        for access in trace:
            self.process(access)
        return self.finish()

    def set_recording(self, recording: bool) -> None:
        """Enable or disable miss recording (warm-up support)."""
        self.recording = recording

    def process(self, access: Access) -> None:
        """Process one access (possibly spanning several cache blocks)."""
        if access.cpu >= 0 and self.recording:
            self._instructions += access.icount
        first = access.addr - (access.addr % self.block_size)
        last = (access.addr + max(access.size, 1) - 1)
        last -= last % self.block_size
        block = first
        while True:
            self._process_block(access, block)
            if block >= last:
                break
            block += self.block_size

    def finish(self) -> MissTrace:
        """Finalize and return the off-chip miss trace."""
        self._offchip.instructions = self._instructions
        return self._offchip

    @property
    def offchip(self) -> MissTrace:
        self._offchip.instructions = self._instructions
        return self._offchip

    def miss_traces(self) -> Dict[str, MissTrace]:
        """The accumulated miss traces keyed by context name."""
        return {MULTI_CHIP: self.offchip}

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Full system state as plain structures (see checkpoint subsystem).

        Captures every cache (per-block MSI state in LRU order), the
        classification history, the accumulated off-chip miss trace, and the
        instruction/recording bookkeeping: restoring it and continuing the
        run is bit-identical to never having stopped.
        """
        return {
            "model": MULTI_CHIP,
            "n_cpus": self.n_nodes,
            "block_size": self.block_size,
            "l1s": [cache.snapshot() for cache in self.l1s],
            "l2s": [cache.snapshot() for cache in self.l2s],
            "history": self.history.snapshot(),
            "offchip": self._offchip.state_dict(),
            "instructions": self._instructions,
            "recording": self.recording,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the system state with a :meth:`snapshot` state dict.

        The snapshot must come from the same organisation and geometry;
        mismatches raise ``ValueError``.
        """
        if state.get("model") != MULTI_CHIP:
            raise ValueError(f"snapshot is for model {state.get('model')!r}, "
                             f"not {MULTI_CHIP!r}")
        if (int(state["n_cpus"]) != self.n_nodes
                or int(state["block_size"]) != self.block_size):
            raise ValueError(
                f"snapshot geometry ({state['n_cpus']} cpus, "
                f"{state['block_size']}B blocks) does not match this system "
                f"({self.n_nodes} cpus, {self.block_size}B blocks)")
        for cache, cache_state in zip(self.l1s, state["l1s"]):
            cache.restore(cache_state)
        for cache, cache_state in zip(self.l2s, state["l2s"]):
            cache.restore(cache_state)
        self.history.restore(state["history"])
        self._offchip = MissTrace.from_state_dict(state["offchip"])
        self._instructions = int(state["instructions"])
        self.recording = bool(state["recording"])

    # ------------------------------------------------------------------ #
    # Per-block protocol actions
    # ------------------------------------------------------------------ #
    def _process_block(self, access: Access, block: int) -> None:
        kind = access.kind
        if kind in (AccessKind.DMA_WRITE, AccessKind.COPYOUT_WRITE):
            self._io_write(access, block)
        elif kind == AccessKind.WRITE:
            self._cpu_write(access.cpu, block)
        else:  # READ or IFETCH
            self._cpu_read(access, block)

    def _cpu_read(self, access: Access, block: int) -> None:
        node = access.cpu
        l1, l2 = self.l1s[node], self.l2s[node]
        if l1.lookup(block).is_valid:
            self.history.record_access(node, block)
            return
        if l2.lookup(block).is_valid:
            # L2 hit: refill L1 in SHARED (or keep M state at L2 only; the
            # trace analyses only need hit/miss behaviour).
            self._fill(l1, block, State.SHARED)
            self.history.record_access(node, block)
            return
        # Off-chip miss: classify before updating history.
        if self.recording:
            miss_class = self.history.classify_read_miss(node, block)
            self._offchip.append(MissRecord(seq=len(self._offchip), cpu=node,
                                            block=block, miss_class=miss_class,
                                            fn=access.fn))
        # Remote dirty copies are downgraded to SHARED by the MSI protocol.
        for other in range(self.n_nodes):
            if other == node:
                continue
            if self.l1s[other].peek(block) == State.MODIFIED:
                self.l1s[other].downgrade(block)
            if self.l2s[other].peek(block) == State.MODIFIED:
                self.l2s[other].downgrade(block)
        self._fill(l2, block, State.SHARED)
        self._fill(l1, block, State.SHARED)
        self.history.record_access(node, block)

    def _cpu_write(self, node: int, block: int) -> None:
        # Invalidate every other node's copies (MSI upgrade/invalidate).
        for other in range(self.n_nodes):
            if other == node:
                continue
            self.l1s[other].invalidate(block)
            self.l2s[other].invalidate(block)
        self._fill(self.l2s[node], block, State.MODIFIED)
        self._fill(self.l1s[node], block, State.MODIFIED)
        self.history.record_cpu_write(node, block)

    def _io_write(self, access: Access, block: int) -> None:
        # DMA and copyout stores write memory without allocating anywhere
        # and invalidate all cached copies.
        for node in range(self.n_nodes):
            self.l1s[node].invalidate(block)
            self.l2s[node].invalidate(block)
        self.history.record_io_write(block)

    def _process_read_hits(self, node: int, block: int, count: int) -> None:
        """Batched tail of a same-block read run that is guaranteed to hit.

        Equivalent to ``count`` further :meth:`_cpu_read` calls on a block
        already resident (and MRU) in ``node``'s L1: the hit counter and the
        history clock advance by ``count`` with no per-access Python loop.
        """
        self.l1s[node].record_hits(block, count)
        self.history.record_accesses(node, block, count)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _fill(cache: Cache, block: int, state: State) -> None:
        cache.fill(block, state)
