"""Containers for access traces and classified miss traces.

A :class:`MissTrace` is the unit of input to the analysis layer: an ordered
list of :class:`~repro.mem.records.MissRecord` plus the instruction count of
the run that produced it (needed for Figure 1's misses-per-kilo-instruction
axis).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import islice
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, TypeVar)

from .records import (Access, FunctionRef, IntraChipClass, MissClass,
                      MissRecord, UNKNOWN_FUNCTION)

_T = TypeVar("_T")

#: Default number of accesses a streaming consumer pulls per batch.
DEFAULT_CHUNK_SIZE = 4096


def iter_chunks(items: Iterable[_T],
                chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[List[_T]]:
    """Yield successive lists of up to ``chunk_size`` items from ``items``.

    The building block of the streaming pipeline: workload generators hand
    accesses to the system models through this, so peak memory is bounded by
    one chunk instead of the whole trace.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


@dataclass
class AccessTrace:
    """An ordered sequence of workload accesses plus bookkeeping totals."""

    accesses: List[Access] = field(default_factory=list)

    def append(self, access: Access) -> None:
        self.accesses.append(access)

    def extend(self, accesses: Iterable[Access]) -> None:
        self.accesses.extend(accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accesses)

    def __getitem__(self, idx):
        return self.accesses[idx]

    @property
    def instructions(self) -> int:
        """Total instructions represented by the trace."""
        return sum(a.icount for a in self.accesses)

    def cpus(self) -> List[int]:
        """Sorted list of CPUs appearing in the trace (excluding DMA)."""
        return sorted({a.cpu for a in self.accesses if a.cpu >= 0})


class MissTrace:
    """An ordered sequence of classified read misses for one system context."""

    def __init__(self, context: str, instructions: int = 0,
                 records: Optional[List[MissRecord]] = None) -> None:
        self.context = context
        self.instructions = instructions
        self.records: List[MissRecord] = records if records is not None else []

    # -- construction ---------------------------------------------------- #
    def append(self, record: MissRecord) -> None:
        self.records.append(record)

    # -- sequence protocol ------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[MissRecord]:
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    # -- derived views ----------------------------------------------------- #
    def addresses(self) -> List[int]:
        """Block addresses in trace order (input to SEQUITUR)."""
        return [r.block for r in self.records]

    def per_cpu_positions(self) -> Dict[int, List[int]]:
        """Map cpu -> list of global positions of that cpu's misses."""
        out: Dict[int, List[int]] = {}
        for i, r in enumerate(self.records):
            out.setdefault(r.cpu, []).append(i)
        return out

    def misses_per_kilo_instruction(self) -> float:
        """Read misses per 1000 instructions (Figure 1 vertical axis)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * len(self.records) / self.instructions

    def class_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self.records:
            counts[r.miss_class] = counts.get(r.miss_class, 0) + 1
        return counts

    def filter(self, predicate: Callable[[MissRecord], bool]) -> "MissTrace":
        """Return a new trace containing only records matching ``predicate``.

        The filtered records keep their original relative order but are
        renumbered from zero.
        """
        filtered = MissTrace(self.context, self.instructions)
        for r in self.records:
            if predicate(r):
                filtered.append(MissRecord(seq=len(filtered.records), cpu=r.cpu,
                                           block=r.block,
                                           miss_class=r.miss_class, fn=r.fn,
                                           supplier=r.supplier))
        return filtered

    # -- snapshot / restore ------------------------------------------------- #
    def state_dict(self) -> Dict[str, object]:
        """The trace as plain structures (for system checkpoints).

        Function attribution is interned — each distinct
        :class:`FunctionRef` appears once — so the state stays compact even
        for long miss traces.
        """
        fn_ids: Dict[FunctionRef, int] = {}
        functions: List[List[str]] = []
        records: List[List] = []
        for r in self.records:
            fn_id = fn_ids.get(r.fn)
            if fn_id is None:
                fn_id = fn_ids[r.fn] = len(functions)
                functions.append([r.fn.name, r.fn.module, r.fn.category])
            records.append([r.seq, r.cpu, r.block, int(r.miss_class), fn_id,
                            r.supplier])
        return {"context": self.context, "instructions": self.instructions,
                "functions": functions, "records": records}

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "MissTrace":
        """Rebuild a trace from :meth:`state_dict` output.

        Miss classes are restored to the enum matching the context, so a
        restored trace is field-identical to the one that was snapshotted.
        """
        context = str(state["context"])
        class_type = IntraChipClass if context == INTRA_CHIP else MissClass
        functions = [FunctionRef(name=name, module=module, category=category)
                     for name, module, category in state["functions"]]
        trace = cls(context, instructions=int(state["instructions"]))
        for seq, cpu, block, miss_class, fn_id, supplier in state["records"]:
            trace.append(MissRecord(seq=seq, cpu=cpu, block=block,
                                    miss_class=class_type(miss_class),
                                    fn=functions[fn_id], supplier=supplier))
        return trace

    # -- serialization ------------------------------------------------------ #
    def to_jsonl(self, path: str) -> None:
        """Write the trace as JSON-lines (one record per line)."""
        with open(path, "w") as fh:
            header = {"context": self.context,
                      "instructions": self.instructions,
                      "n_records": len(self.records)}
            fh.write(json.dumps(header) + "\n")
            for r in self.records:
                fh.write(json.dumps({
                    "seq": r.seq, "cpu": r.cpu, "block": r.block,
                    "class": int(r.miss_class),
                    "fn": r.fn.name, "module": r.fn.module,
                    "category": r.fn.category,
                    "supplier": r.supplier}) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "MissTrace":
        """Read a trace previously written by :meth:`to_jsonl`."""
        with open(path) as fh:
            header = json.loads(fh.readline())
            trace = cls(context=header["context"],
                        instructions=header["instructions"])
            for line in fh:
                d = json.loads(line)
                fn = FunctionRef(name=d["fn"], module=d["module"],
                                 category=d["category"])
                trace.append(MissRecord(seq=d["seq"], cpu=d["cpu"],
                                        block=d["block"],
                                        miss_class=d["class"], fn=fn,
                                        supplier=d.get("supplier")))
        return trace


#: Context name constants used throughout the experiments.
MULTI_CHIP = "multi-chip"
SINGLE_CHIP = "single-chip"
INTRA_CHIP = "intra-chip"
ALL_CONTEXTS = (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP)
