"""Single-chip CMP system model (MOSI, Piranha-like, non-inclusive).

The paper's single-chip context is a 4-core CMP with private split L1s and a
shared 16-way L2.  Two miss traces come out of it:

* **single-chip (off-chip)** — L1 misses that also miss in the shared L2,
  classified with the extended 4C model at chip granularity.  Because all
  cores share the chip, there is no (non-I/O) off-chip coherence.
* **intra-chip** — L1 read misses that are satisfied on-chip, classified as
  ``Coherence:Peer-L1`` (dirty copy supplied by another core's L1),
  ``Coherence:L2`` (coherence miss satisfied by the shared L2), or
  ``Replacement:L2`` (plain L1 replacement miss hitting in L2), following
  Figure 1 (right).

The hierarchy is non-inclusive: a block may live in an L1 without being in
the L2 (the L2 is filled on L1 refills but L2 evictions do not back-
invalidate the L1s).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .cache import Cache, State
from .classify import BlockHistory
from .config import SystemConfig
from .records import Access, AccessKind, IntraChipClass, MissClass, MissRecord
from .stream import StreamingSystemMixin
from .trace import AccessTrace, MissTrace, INTRA_CHIP, SINGLE_CHIP

#: Observer id used for chip-level classification (the whole chip acts as a
#: single observer for off-chip misses).
_CHIP = 0


class SingleChipSystem(StreamingSystemMixin):
    """Trace-driven model of the 4-core single-chip CMP."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.block_size = config.block_size
        self.n_cores = config.n_cpus
        self.l1s: List[Cache] = [Cache(config.l1, name=f"core{i}.l1")
                                 for i in range(self.n_cores)]
        self.l2 = Cache(config.l2, name="shared.l2")
        #: Chip-level history for off-chip classification.
        self.chip_history = BlockHistory()
        #: Per-core history for intra-chip coherence-vs-replacement decisions.
        self.core_history = BlockHistory()
        self._offchip = MissTrace(SINGLE_CHIP)
        self._intrachip = MissTrace(INTRA_CHIP)
        self._instructions = 0
        #: When False, accesses still update cache and classification state
        #: but produce no miss records and no instruction counts (used for
        #: cache warm-up, mirroring the paper's warming phase).
        self.recording = True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, trace: Iterable[Access]) -> Tuple[MissTrace, MissTrace]:
        """Process a trace; return ``(offchip_trace, intrachip_trace)``."""
        for access in trace:
            self.process(access)
        return self.finish()

    def set_recording(self, recording: bool) -> None:
        """Enable or disable miss recording (warm-up support)."""
        self.recording = recording

    def process(self, access: Access) -> None:
        if access.cpu >= 0 and self.recording:
            self._instructions += access.icount
        first = access.addr - (access.addr % self.block_size)
        last = (access.addr + max(access.size, 1) - 1)
        last -= last % self.block_size
        block = first
        while True:
            self._process_block(access, block)
            if block >= last:
                break
            block += self.block_size

    def finish(self) -> Tuple[MissTrace, MissTrace]:
        self._offchip.instructions = self._instructions
        self._intrachip.instructions = self._instructions
        return self._offchip, self._intrachip

    @property
    def offchip(self) -> MissTrace:
        self._offchip.instructions = self._instructions
        return self._offchip

    @property
    def intrachip(self) -> MissTrace:
        self._intrachip.instructions = self._instructions
        return self._intrachip

    def miss_traces(self) -> Dict[str, MissTrace]:
        """The accumulated miss traces keyed by context name."""
        return {SINGLE_CHIP: self.offchip, INTRA_CHIP: self.intrachip}

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Full system state as plain structures (see checkpoint subsystem).

        Captures the per-core L1s and shared L2 (per-block MOSI state in LRU
        order), both classification histories, both accumulated miss traces,
        and the instruction/recording bookkeeping: restoring it and
        continuing the run is bit-identical to never having stopped.
        """
        return {
            "model": SINGLE_CHIP,
            "n_cpus": self.n_cores,
            "block_size": self.block_size,
            "l1s": [cache.snapshot() for cache in self.l1s],
            "l2": self.l2.snapshot(),
            "chip_history": self.chip_history.snapshot(),
            "core_history": self.core_history.snapshot(),
            "offchip": self._offchip.state_dict(),
            "intrachip": self._intrachip.state_dict(),
            "instructions": self._instructions,
            "recording": self.recording,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the system state with a :meth:`snapshot` state dict.

        The snapshot must come from the same organisation and geometry;
        mismatches raise ``ValueError``.
        """
        if state.get("model") != SINGLE_CHIP:
            raise ValueError(f"snapshot is for model {state.get('model')!r}, "
                             f"not {SINGLE_CHIP!r}")
        if (int(state["n_cpus"]) != self.n_cores
                or int(state["block_size"]) != self.block_size):
            raise ValueError(
                f"snapshot geometry ({state['n_cpus']} cpus, "
                f"{state['block_size']}B blocks) does not match this system "
                f"({self.n_cores} cpus, {self.block_size}B blocks)")
        for cache, cache_state in zip(self.l1s, state["l1s"]):
            cache.restore(cache_state)
        self.l2.restore(state["l2"])
        self.chip_history.restore(state["chip_history"])
        self.core_history.restore(state["core_history"])
        self._offchip = MissTrace.from_state_dict(state["offchip"])
        self._intrachip = MissTrace.from_state_dict(state["intrachip"])
        self._instructions = int(state["instructions"])
        self.recording = bool(state["recording"])

    # ------------------------------------------------------------------ #
    # Per-block protocol actions
    # ------------------------------------------------------------------ #
    def _process_block(self, access: Access, block: int) -> None:
        kind = access.kind
        if kind in (AccessKind.DMA_WRITE, AccessKind.COPYOUT_WRITE):
            self._io_write(block)
        elif kind == AccessKind.WRITE:
            self._cpu_write(access.cpu, block)
        else:
            self._cpu_read(access, block)

    def _cpu_read(self, access: Access, block: int) -> None:
        core = access.cpu
        l1 = self.l1s[core]
        if l1.lookup(block).is_valid:
            self.core_history.record_access(core, block)
            self.chip_history.record_access(_CHIP, block)
            return

        # L1 miss.  Determine whether it is a coherence miss (another core
        # wrote the block since this core last read it).
        core_class = self.core_history.classify_read_miss(core, block)
        is_coherence = core_class == MissClass.COHERENCE

        # Find a dirty peer copy (MOSI: M or O states can supply data).
        peer_supplier = None
        for other in range(self.n_cores):
            if other != core and self.l1s[other].peek(block).is_dirty:
                peer_supplier = other
                break

        l2_state = self.l2.lookup(block)
        if peer_supplier is not None:
            # Peer L1 supplies the data; the supplier transitions M -> O
            # (Piranha keeps the dirty copy as owner).
            if self.l1s[peer_supplier].peek(block) == State.MODIFIED:
                self.l1s[peer_supplier].set_state(block, State.OWNED)
            if self.recording:
                cls = (IntraChipClass.COHERENCE_PEER_L1 if is_coherence
                       else IntraChipClass.REPLACEMENT_L2)
                self._intrachip.append(MissRecord(
                    seq=len(self._intrachip), cpu=core, block=block,
                    miss_class=cls, fn=access.fn, supplier=peer_supplier))
            self._fill_l1(core, block, State.SHARED)
        elif l2_state.is_valid:
            if self.recording:
                cls = (IntraChipClass.COHERENCE_L2 if is_coherence
                       else IntraChipClass.REPLACEMENT_L2)
                self._intrachip.append(MissRecord(
                    seq=len(self._intrachip), cpu=core, block=block,
                    miss_class=cls, fn=access.fn, supplier=-1))
            self._fill_l1(core, block, State.SHARED)
        else:
            # Off-chip miss; classify at chip granularity.
            if self.recording:
                chip_class = self.chip_history.classify_read_miss(_CHIP, block)
                self._offchip.append(MissRecord(
                    seq=len(self._offchip), cpu=core, block=block,
                    miss_class=chip_class, fn=access.fn))
            self.l2.fill(block, State.SHARED)
            self._fill_l1(core, block, State.SHARED)

        self.core_history.record_access(core, block)
        self.chip_history.record_access(_CHIP, block)

    def _cpu_write(self, core: int, block: int) -> None:
        # Invalidate peer copies; write-allocate into this core's L1 and the
        # shared L2 (write-back, write-allocate).
        for other in range(self.n_cores):
            if other != core:
                self.l1s[other].invalidate(block)
        self._fill_l1(core, block, State.MODIFIED)
        if self.l2.peek(block).is_valid:
            self.l2.set_state(block, State.MODIFIED)
        self.core_history.record_cpu_write(core, block)
        self.chip_history.record_access(_CHIP, block)
        # A CPU write inside the chip never creates off-chip coherence, so
        # the chip-level history records it as a plain access, not a write.

    def _io_write(self, block: int) -> None:
        for core in range(self.n_cores):
            self.l1s[core].invalidate(block)
        self.l2.invalidate(block)
        self.core_history.record_io_write(block)
        self.chip_history.record_io_write(block)

    def _process_read_hits(self, core: int, block: int, count: int) -> None:
        """Batched tail of a same-block read run that is guaranteed to hit.

        Equivalent to ``count`` further :meth:`_cpu_read` calls on a block
        already resident (and MRU) in ``core``'s L1: the hit counter and
        both history clocks advance by ``count`` with no per-access loop.
        """
        self.l1s[core].record_hits(block, count)
        self.core_history.record_accesses(core, block, count)
        self.chip_history.record_accesses(_CHIP, block, count)

    # ------------------------------------------------------------------ #
    def _fill_l1(self, core: int, block: int, state: State) -> None:
        victim = self.l1s[core].fill(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            # Non-inclusive hierarchy: dirty L1 victims are written back to
            # the shared L2 so their data is not lost.
            if victim_state.is_dirty and not self.l2.peek(victim_block).is_valid:
                self.l2.fill(victim_block, State.MODIFIED)
