"""A simple virtual address space and region allocator for synthetic workloads.

The workload generators need realistic-looking addresses: data structures
occupy distinct, non-contiguous regions; B+-tree nodes are scattered; buffer
pool pages are page-aligned; kernel structures live far from user heaps.
This module provides a bump allocator with named regions so the generated
traces have the address diversity the analyses expect, while remaining
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import BLOCK_SIZE, PAGE_SIZE


@dataclass
class Region:
    """A contiguous, named range of the synthetic address space."""

    name: str
    base: int
    size: int
    _cursor: int = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def allocated(self) -> int:
        return self._cursor

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes aligned to ``align`` within the region."""
        if align <= 0 or (align & (align - 1)):
            raise ValueError(f"alignment must be a power of two, got {align}")
        cursor = (self._cursor + align - 1) & ~(align - 1)
        if cursor + size > self.size:
            raise MemoryError(
                f"region {self.name!r} exhausted: need {size} bytes, "
                f"{self.size - cursor} remain")
        self._cursor = cursor + size
        return self.base + cursor


class AddressSpace:
    """A collection of named regions carved out of one synthetic address space.

    Regions are laid out sequentially with a guard gap between them so that
    addresses from different structures never collide and never appear
    adjacent (which would create artificial strided patterns across
    structures).
    """

    #: Gap inserted between regions (1 MB in synthetic address units).
    GUARD = 1 << 20

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next_base = base
        self._regions: Dict[str, Region] = {}

    def add_region(self, name: str, size: int) -> Region:
        """Create a new region of ``size`` bytes and return it."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if size <= 0:
            raise ValueError("region size must be positive")
        # Page-align region bases.
        base = (self._next_base + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        region = Region(name=name, base=base, size=size)
        self._regions[name] = region
        self._next_base = base + size + self.GUARD
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> List[Region]:
        return list(self._regions.values())

    def find(self, addr: int) -> Optional[Region]:
        """Return the region containing ``addr`` (linear scan; debug aid)."""
        for region in self._regions.values():
            if region.contains(addr):
                return region
        return None

    def alloc(self, name: str, size: int, align: int = 8) -> int:
        """Allocate from a named region (creating nothing implicitly)."""
        return self.region(name).alloc(size, align=align)

    def alloc_blocks(self, name: str, n_blocks: int) -> int:
        """Allocate ``n_blocks`` cache blocks, block-aligned."""
        return self.alloc(name, n_blocks * BLOCK_SIZE, align=BLOCK_SIZE)

    def alloc_page(self, name: str) -> int:
        """Allocate one page, page-aligned."""
        return self.alloc(name, PAGE_SIZE, align=PAGE_SIZE)
