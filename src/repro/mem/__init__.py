"""Memory-system substrate: caches, coherence, miss classification, traces.

Public API
----------
* :class:`~repro.mem.records.Access`, :class:`~repro.mem.records.MissRecord`,
  :class:`~repro.mem.records.AccessKind`, :class:`~repro.mem.records.MissClass`,
  :class:`~repro.mem.records.IntraChipClass`, :class:`~repro.mem.records.FunctionRef`
* :class:`~repro.mem.trace.AccessTrace`, :class:`~repro.mem.trace.MissTrace`
* :class:`~repro.mem.cache.Cache`, :class:`~repro.mem.cache.State`
* :class:`~repro.mem.multichip.MultiChipSystem`,
  :class:`~repro.mem.singlechip.SingleChipSystem`
* configuration helpers in :mod:`repro.mem.config`
"""

from ..api.registry import register_system
from .addrspace import AddressSpace, Region
from .cache import Cache, State
from .classify import BlockHistory
from .config import (BLOCK_SIZE, DEFAULT_SCALE, PAGE_SIZE, CacheConfig,
                     SystemConfig, multichip_config, paper_config,
                     scaled_config, singlechip_config)
from .multichip import MultiChipSystem
from .records import (Access, AccessKind, FunctionRef, IntraChipClass,
                      MissClass, MissRecord, UNKNOWN_FUNCTION)
from .singlechip import SingleChipSystem
from .stream import StreamingSystemMixin
from .trace import (ALL_CONTEXTS, DEFAULT_CHUNK_SIZE, INTRA_CHIP, MULTI_CHIP,
                    SINGLE_CHIP, AccessTrace, MissTrace, iter_chunks)

# --------------------------------------------------------------------------- #
# Registry entries: the paper's two system organisations.  The attributes on
# each factory describe the organisation to planners (CPU count determines
# the access stream; contexts are the analysis bundles one simulation yields).
# --------------------------------------------------------------------------- #
@register_system("multi-chip", aliases=("multichip", "dsm"))
def build_multichip(scale: int = DEFAULT_SCALE) -> MultiChipSystem:
    """16-node distributed shared memory system (MSI protocol)."""
    return MultiChipSystem(multichip_config(scale=scale))


build_multichip.n_cpus = 16
build_multichip.contexts = (MULTI_CHIP,)


@register_system("single-chip", aliases=("singlechip", "cmp"))
def build_singlechip(scale: int = DEFAULT_SCALE) -> SingleChipSystem:
    """4-core CMP with a shared L2 (MOSI protocol, Piranha-style)."""
    return SingleChipSystem(singlechip_config(scale=scale))


build_singlechip.n_cpus = 4
build_singlechip.contexts = (SINGLE_CHIP, INTRA_CHIP)


__all__ = [
    "Access", "AccessKind", "AccessTrace", "AddressSpace", "BlockHistory",
    "build_multichip", "build_singlechip",
    "BLOCK_SIZE", "Cache", "CacheConfig", "DEFAULT_SCALE", "FunctionRef",
    "IntraChipClass", "MissClass", "MissRecord", "MissTrace",
    "MultiChipSystem", "PAGE_SIZE", "Region", "SingleChipSystem", "State",
    "SystemConfig", "UNKNOWN_FUNCTION", "multichip_config", "paper_config",
    "scaled_config", "singlechip_config", "ALL_CONTEXTS", "INTRA_CHIP",
    "MULTI_CHIP", "SINGLE_CHIP", "DEFAULT_CHUNK_SIZE", "StreamingSystemMixin", "iter_chunks",
]
