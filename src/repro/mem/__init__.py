"""Memory-system substrate: caches, coherence, miss classification, traces.

Public API
----------
* :class:`~repro.mem.records.Access`, :class:`~repro.mem.records.MissRecord`,
  :class:`~repro.mem.records.AccessKind`, :class:`~repro.mem.records.MissClass`,
  :class:`~repro.mem.records.IntraChipClass`, :class:`~repro.mem.records.FunctionRef`
* :class:`~repro.mem.trace.AccessTrace`, :class:`~repro.mem.trace.MissTrace`
* :class:`~repro.mem.cache.Cache`, :class:`~repro.mem.cache.State`
* :class:`~repro.mem.multichip.MultiChipSystem`,
  :class:`~repro.mem.singlechip.SingleChipSystem`
* configuration helpers in :mod:`repro.mem.config`
"""

from .addrspace import AddressSpace, Region
from .cache import Cache, State
from .classify import BlockHistory
from .config import (BLOCK_SIZE, DEFAULT_SCALE, PAGE_SIZE, CacheConfig,
                     SystemConfig, multichip_config, paper_config,
                     scaled_config, singlechip_config)
from .multichip import MultiChipSystem
from .records import (Access, AccessKind, FunctionRef, IntraChipClass,
                      MissClass, MissRecord, UNKNOWN_FUNCTION)
from .singlechip import SingleChipSystem
from .stream import StreamingSystemMixin
from .trace import (ALL_CONTEXTS, DEFAULT_CHUNK_SIZE, INTRA_CHIP, MULTI_CHIP,
                    SINGLE_CHIP, AccessTrace, MissTrace, iter_chunks)

__all__ = [
    "Access", "AccessKind", "AccessTrace", "AddressSpace", "BlockHistory",
    "BLOCK_SIZE", "Cache", "CacheConfig", "DEFAULT_SCALE", "FunctionRef",
    "IntraChipClass", "MissClass", "MissRecord", "MissTrace",
    "MultiChipSystem", "PAGE_SIZE", "Region", "SingleChipSystem", "State",
    "SystemConfig", "UNKNOWN_FUNCTION", "multichip_config", "paper_config",
    "scaled_config", "singlechip_config", "ALL_CONTEXTS", "INTRA_CHIP",
    "MULTI_CHIP", "SINGLE_CHIP", "DEFAULT_CHUNK_SIZE", "StreamingSystemMixin", "iter_chunks",
]
