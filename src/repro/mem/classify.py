"""Global block-history bookkeeping for miss classification.

The paper classifies off-chip read misses (Section 4.1) as:

* **Coherence** — the block was written by another processor since this
  processor last read it.
* **I/O Coherence** — the block was written by a DMA transfer or an
  OS-to-user bulk copy (the Solaris ``default_copyout`` family, which uses
  non-allocating stores) since this processor last accessed it.
* **Compulsory** — the block has never previously been accessed.
* **Replacement** — everything else (capacity or conflict; with 16-way L2s
  almost all are capacity).

:class:`BlockHistory` tracks, per cache block, the global sequence numbers of
the last CPU write (and its writer) and the last I/O write, plus the last
access sequence number per (observer, block) pair, where an *observer* is a
node in the multi-chip system or the whole chip in the single-chip system.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .records import MissClass


class BlockHistory:
    """Tracks write/access history per block for the 4C+I/O classifier."""

    def __init__(self) -> None:
        #: Monotonic event counter; every recorded access/write bumps it.
        self._clock = 0
        #: block -> (sequence of last CPU write, writer id)
        self._last_cpu_write: Dict[int, Tuple[int, int]] = {}
        #: block -> sequence of last DMA/copyout write
        self._last_io_write: Dict[int, int] = {}
        #: (observer, block) -> sequence of the observer's last access
        self._last_access: Dict[Tuple[int, int], int] = {}
        #: blocks ever touched (by CPU, DMA or copyout)
        self._touched: set = set()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def record_access(self, observer: int, block: int) -> None:
        """Record that ``observer`` read or wrote ``block`` (for recency)."""
        seq = self._tick()
        self._last_access[(observer, block)] = seq
        self._touched.add(block)

    def record_cpu_write(self, observer: int, block: int) -> None:
        """Record a CPU store to ``block`` by ``observer``."""
        seq = self._tick()
        self._last_cpu_write[block] = (seq, observer)
        self._last_access[(observer, block)] = seq
        self._touched.add(block)

    def record_accesses(self, observer: int, block: int, count: int) -> None:
        """Record ``count`` consecutive accesses by ``observer`` to ``block``.

        Equivalent to calling :meth:`record_access` ``count`` times: the
        clock advances by ``count`` and the (observer, block) recency lands
        on the final tick (intermediate values are unobservable).  Used by
        the batched same-block fast path in the system models.
        """
        self._clock += count
        self._last_access[(observer, block)] = self._clock
        self._touched.add(block)

    def record_io_write(self, block: int) -> None:
        """Record a DMA or copyout (non-allocating) store to ``block``."""
        seq = self._tick()
        self._last_io_write[block] = seq
        self._touched.add(block)

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def classify_read_miss(self, observer: int, block: int) -> MissClass:
        """Classify a read miss by ``observer`` on ``block``.

        Must be called *before* :meth:`record_access` for the same event.
        """
        if block not in self._touched:
            return MissClass.COMPULSORY
        since = self._last_access.get((observer, block), 0)
        cpu_write = self._last_cpu_write.get(block)
        if cpu_write is not None:
            write_seq, writer = cpu_write
            if write_seq > since and writer != observer:
                return MissClass.COHERENCE
        io_seq = self._last_io_write.get(block, 0)
        if io_seq > since:
            return MissClass.IO_COHERENCE
        return MissClass.REPLACEMENT

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Full history state as plain, deterministic structures.

        Entries are sorted so two histories that would classify every future
        miss identically produce byte-identical snapshots regardless of the
        insertion order their dicts happened to accumulate.
        """
        return {
            "clock": self._clock,
            "cpu_writes": sorted([block, seq, writer] for block, (seq, writer)
                                 in self._last_cpu_write.items()),
            "io_writes": sorted([block, seq] for block, seq
                                in self._last_io_write.items()),
            "accesses": sorted([observer, block, seq] for (observer, block),
                               seq in self._last_access.items()),
            "touched": sorted(self._touched),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the history with a :meth:`snapshot` state dict."""
        self._clock = int(state["clock"])
        self._last_cpu_write = {int(block): (int(seq), int(writer))
                                for block, seq, writer in state["cpu_writes"]}
        self._last_io_write = {int(block): int(seq)
                               for block, seq in state["io_writes"]}
        self._last_access = {(int(observer), int(block)): int(seq)
                             for observer, block, seq in state["accesses"]}
        self._touched = set(state["touched"])

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------ #
    def touched(self, block: int) -> bool:
        return block in self._touched

    def last_writer(self, block: int) -> Optional[int]:
        entry = self._last_cpu_write.get(block)
        return entry[1] if entry else None
