"""Prefetcher models built on the temporal-stream characterization.

Public API
----------
* :class:`~repro.prefetch.base.Prefetcher`,
  :func:`~repro.prefetch.base.evaluate_coverage`,
  :class:`~repro.prefetch.base.CoverageResult`
* :class:`~repro.prefetch.stride_prefetcher.StridePrefetcher`
* :class:`~repro.prefetch.temporal_prefetcher.TemporalPrefetcher`
"""

from .base import (CoverageResult, Prefetcher, coverage_params,
                   evaluate_coverage)
from .stride_prefetcher import StridePrefetcher
from .temporal_prefetcher import TemporalPrefetcher

__all__ = ["CoverageResult", "Prefetcher", "StridePrefetcher",
           "TemporalPrefetcher", "coverage_params", "evaluate_coverage"]
