"""Prefetcher modelling framework (extension of the paper's analysis).

The paper characterises temporal streams independently of any prefetcher
implementation, but its motivation is the family of prefetchers that exploit
them.  This package provides simple models of the two prefetcher families the
paper contrasts — temporal-stream (address-correlating) prefetchers and
stride prefetchers — and a coverage evaluator, used by the ablation
benchmarks to confirm the expected win/loss pattern per workload class.

The model is deliberately idealised: prefetches complete instantly and live
in an unbounded prefetch buffer until used or until ``buffer_capacity`` newer
prefetches evict them.  Coverage numbers are therefore upper bounds, which is
the right comparison for a characterization study.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..mem.records import MissRecord
from ..mem.trace import MissTrace


class Prefetcher:
    """Interface: observe misses in order, predict future miss addresses."""

    name = "base"

    def observe(self, record: MissRecord) -> List[int]:
        """Consume one miss and return the block addresses to prefetch."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """Full predictor state as plain, deterministic structures.

        Implementations must tag the state with their ``name`` so
        :meth:`restore` can reject a snapshot from a different prefetcher
        family; the checkpoint subsystem persists these dicts alongside the
        system-model state.
        """
        raise NotImplementedError

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the predictor state with a :meth:`snapshot` state dict."""
        raise NotImplementedError

    def _check_snapshot_name(self, state: Dict[str, object]) -> None:
        if state.get("name") != self.name:
            raise ValueError(f"snapshot is for prefetcher "
                             f"{state.get('name')!r}, not {self.name!r}")


@dataclass
class CoverageResult:
    """Outcome of replaying a miss trace against a prefetcher."""

    prefetcher: str
    context: str
    total_misses: int
    covered_misses: int
    issued_prefetches: int

    @property
    def coverage(self) -> float:
        """Fraction of misses whose block had been prefetched beforehand."""
        if not self.total_misses:
            return 0.0
        return self.covered_misses / self.total_misses

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that covered a later miss."""
        if not self.issued_prefetches:
            return 0.0
        return self.covered_misses / self.issued_prefetches


def evaluate_coverage(prefetcher: Prefetcher, trace: MissTrace,
                      buffer_capacity: int = 4096) -> CoverageResult:
    """Replay ``trace`` against ``prefetcher`` and measure miss coverage.

    A miss is *covered* if its block address sits in the prefetch buffer when
    the miss occurs.  The buffer holds the most recent ``buffer_capacity``
    prefetched blocks (FIFO by issue order, refreshed on re-issue).
    """
    buffer: "OrderedDict[int, bool]" = OrderedDict()
    covered = 0
    issued = 0
    for record in trace:
        if record.block in buffer:
            covered += 1
            del buffer[record.block]
        predictions = prefetcher.observe(record)
        for block in predictions:
            issued += 1
            if block in buffer:
                buffer.move_to_end(block)
                continue
            buffer[block] = True
            if len(buffer) > buffer_capacity:
                buffer.popitem(last=False)
    return CoverageResult(prefetcher=prefetcher.name, context=trace.context,
                          total_misses=len(trace), covered_misses=covered,
                          issued_prefetches=issued)
