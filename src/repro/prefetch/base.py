"""Prefetcher modelling framework (extension of the paper's analysis).

The paper characterises temporal streams independently of any prefetcher
implementation, but its motivation is the family of prefetchers that exploit
them.  This package provides simple models of the two prefetcher families the
paper contrasts — temporal-stream (address-correlating) prefetchers and
stride prefetchers — and a coverage evaluator, used by the ablation
benchmarks to confirm the expected win/loss pattern per workload class.

The model is deliberately idealised: prefetches complete instantly and live
in an unbounded prefetch buffer until used or until ``buffer_capacity`` newer
prefetches evict them.  Coverage numbers are therefore upper bounds, which is
the right comparison for a characterization study.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..mem.records import MissRecord
from ..mem.trace import MissTrace


class Prefetcher:
    """Interface: observe misses in order, predict future miss addresses."""

    name = "base"

    def observe(self, record: MissRecord) -> List[int]:
        """Consume one miss and return the block addresses to prefetch."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """Full predictor state as plain, deterministic structures.

        Implementations must tag the state with their ``name`` so
        :meth:`restore` can reject a snapshot from a different prefetcher
        family; the checkpoint subsystem persists these dicts alongside the
        system-model state.
        """
        raise NotImplementedError

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the predictor state with a :meth:`snapshot` state dict."""
        raise NotImplementedError

    def _check_snapshot_name(self, state: Dict[str, object]) -> None:
        if state.get("name") != self.name:
            raise ValueError(f"snapshot is for prefetcher "
                             f"{state.get('name')!r}, not {self.name!r}")


@dataclass
class CoverageResult:
    """Outcome of replaying a miss trace against a prefetcher."""

    prefetcher: str
    context: str
    total_misses: int
    covered_misses: int
    issued_prefetches: int

    @property
    def coverage(self) -> float:
        """Fraction of misses whose block had been prefetched beforehand."""
        if not self.total_misses:
            return 0.0
        return self.covered_misses / self.total_misses

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that covered a later miss."""
        if not self.issued_prefetches:
            return 0.0
        return self.covered_misses / self.issued_prefetches


#: Default number of coverage checkpoints per trace when a store is given.
COVERAGE_CHECKPOINT_TARGET = 12


def coverage_params(prefetcher: str, workload: str, context: str, size: str,
                    seed: int, scale: int, warmup: float,
                    buffer_capacity: int = 4096) -> Dict[str, object]:
    """The checkpoint-store key of one coverage evaluation.

    Every replay-relevant input is part of the key — a resumed evaluation
    must only ever fold onto state produced by an identical one.  The
    ``coverage`` marker keeps these chains from colliding with simulation
    checkpoints over the same trace.
    """
    return {"coverage": True, "prefetcher": prefetcher, "workload": workload,
            "context": context, "size": size, "seed": seed, "scale": scale,
            "warmup": warmup, "buffer_capacity": buffer_capacity}


def evaluate_coverage(prefetcher: Prefetcher, trace: MissTrace,
                      buffer_capacity: int = 4096, *,
                      store=None, params: Optional[Dict[str, object]] = None,
                      resume: bool = True,
                      checkpoint_every: Optional[int] = None,
                      stop_after: Optional[int] = None) -> CoverageResult:
    """Replay ``trace`` against ``prefetcher`` and measure miss coverage.

    A miss is *covered* if its block address sits in the prefetch buffer when
    the miss occurs.  The buffer holds the most recent ``buffer_capacity``
    prefetched blocks (FIFO by issue order, refreshed on re-issue).

    With a ``store`` and ``params`` key, evaluator state (predictor snapshot,
    buffer order, counters) is checkpointed as a delta chain every
    ``checkpoint_every`` records (default: the trace split into
    ``COVERAGE_CHECKPOINT_TARGET`` strides), keyed by records consumed; an
    interrupted evaluation resumes bit-identically from the furthest
    checkpoint at or before ``stop_after``.  ``stop_after`` caps how many
    records are consumed, returning the partial result.
    """
    buffer: "OrderedDict[int, bool]" = OrderedDict()
    covered = 0
    issued = 0
    start = 0
    n = len(trace)
    stop = n if stop_after is None else min(n, stop_after)
    writer = None
    if store is not None and params is not None:
        from ..checkpoint.delta import DeltaChainWriter
        from ..checkpoint.store import STATS
        if checkpoint_every is None:
            checkpoint_every = max(1, n // COVERAGE_CHECKPOINT_TARGET)
        writer = DeltaChainWriter(store, params)
        if resume:
            found = store.latest(params, max_epoch=stop)
            if found is not None:
                start, state = found
                prefetcher.restore(state["prefetcher"])
                buffer = OrderedDict(
                    (block, True) for block in state["buffer"])
                covered = state["covered"]
                issued = state["issued"]
                STATS.resumes += 1

    def save(position: int) -> None:
        writer.save(position, {
            "name": prefetcher.name,
            "prefetcher": prefetcher.snapshot(),
            "buffer": list(buffer.keys()),
            "covered": covered, "issued": issued, "position": position})

    for offset, record in enumerate(trace.records[start:stop], start=start):
        if record.block in buffer:
            covered += 1
            del buffer[record.block]
        predictions = prefetcher.observe(record)
        for block in predictions:
            issued += 1
            if block in buffer:
                buffer.move_to_end(block)
                continue
            buffer[block] = True
            if len(buffer) > buffer_capacity:
                buffer.popitem(last=False)
        position = offset + 1
        if (writer is not None and position < stop
                and position % checkpoint_every == 0):
            save(position)
    if writer is not None and stop > start:
        save(stop)
    return CoverageResult(prefetcher=prefetcher.name, context=trace.context,
                          total_misses=stop, covered_misses=covered,
                          issued_prefetches=issued)
