"""Temporal streaming prefetcher model (global-history-buffer style).

This is the prefetcher family the paper's characterization underpins
(Section 2): record the miss-address sequence in a history buffer, locate the
previous occurrence of the current miss address via an index table, and
stream out the addresses that followed it last time.

The model follows the global history buffer organisation [Nesbit & Smith,
HPCA 2004] with per-miss lookup and a configurable streaming depth; an
adaptive variant streams until the replayed history diverges from the new
miss sequence (an idealisation of the throttling the paper argues variable
stream lengths require).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..api.registry import register_prefetcher
from ..mem.records import MissRecord
from .base import Prefetcher


@register_prefetcher("temporal", aliases=("tms", "temporal-streaming"))
class TemporalPrefetcher(Prefetcher):
    """Global-history-buffer temporal streaming prefetcher."""

    name = "temporal"

    def __init__(self, depth: int = 8, history_capacity: int = 1 << 16,
                 per_cpu: bool = False) -> None:
        """
        Parameters
        ----------
        depth:
            Number of successor addresses streamed per lookup (the fixed
            prefetch depth of early proposals; the paper's Section 4.4 shows
            why a fixed depth is a compromise).
        history_capacity:
            Number of miss addresses retained in the history buffer — the
            storage budget the reuse-distance analysis (Section 4.5) sizes.
        per_cpu:
            Keep one history per processor instead of a single global one.
        """
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.history_capacity = history_capacity
        self.per_cpu = per_cpu
        self._history: Dict[int, List[int]] = {}
        #: address -> most recent position in the owning history buffer
        self._index: Dict[int, Dict[int, int]] = {}

    def _key(self, record: MissRecord) -> int:
        return record.cpu if self.per_cpu else 0

    def observe(self, record: MissRecord) -> List[int]:
        key = self._key(record)
        history = self._history.setdefault(key, [])
        index = self._index.setdefault(key, {})
        predictions: List[int] = []
        previous = index.get(record.block)
        if previous is not None:
            start = previous + 1
            predictions = history[start:start + self.depth]
        index[record.block] = len(history)
        history.append(record.block)
        # Bound the history buffer (and keep the index consistent enough:
        # stale index entries simply fail to produce a match).
        if len(history) > self.history_capacity * 2:
            cut = len(history) - self.history_capacity
            del history[:cut]
            self._index[key] = {addr: pos - cut
                                for addr, pos in index.items()
                                if pos >= cut}
        return predictions

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """History buffers and index tables as plain, sorted structures.

        History order *is* predictor state (successors are streamed from
        it), so each buffer is stored verbatim; the index tables are sorted
        by address purely for snapshot determinism.
        """
        return {
            "name": self.name,
            "history": [[key, list(history)] for key, history
                        in sorted(self._history.items())],
            "index": [[key, sorted([addr, pos] for addr, pos in idx.items())]
                      for key, idx in sorted(self._index.items())],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the predictor state with a :meth:`snapshot` state dict."""
        self._check_snapshot_name(state)
        self._history = {key: list(history)
                         for key, history in state["history"]}
        self._index = {key: {addr: pos for addr, pos in entries}
                       for key, entries in state["index"]}
