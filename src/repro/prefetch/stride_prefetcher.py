"""Stride prefetcher model (the baseline widely deployed in real systems).

A table indexed by (cpu, function) — a stand-in for the PC — tracks the last
miss address and stride; once the same stride repeats, the prefetcher issues
``degree`` blocks ahead along that stride.  Section 1 of the paper notes that
such prefetchers provide only limited benefit for commercial server
applications because their access patterns are dominated by pointer chasing;
Section 4.3 shows DSS is the exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api.registry import register_prefetcher
from ..mem.config import BLOCK_SIZE
from ..mem.records import MissRecord
from .base import Prefetcher


@dataclass
class _StrideState:
    last_addr: Optional[int] = None
    stride: Optional[int] = None
    confidence: int = 0


@register_prefetcher("stride", aliases=("pc-stride",))
class StridePrefetcher(Prefetcher):
    """Classic PC-indexed stride prefetcher with a confidence counter."""

    name = "stride"

    def __init__(self, degree: int = 4, min_confidence: int = 1,
                 max_stride: int = 4096) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.min_confidence = min_confidence
        self.max_stride = max_stride
        self._table: Dict[Tuple[int, str], _StrideState] = {}

    def observe(self, record: MissRecord) -> List[int]:
        key = (record.cpu, record.fn.name)
        state = self._table.setdefault(key, _StrideState())
        predictions: List[int] = []
        if state.last_addr is not None:
            stride = record.block - state.last_addr
            if (stride != 0 and abs(stride) <= self.max_stride
                    and stride == state.stride):
                state.confidence += 1
                if state.confidence >= self.min_confidence:
                    predictions = [record.block + stride * (i + 1)
                                   for i in range(self.degree)]
            else:
                state.confidence = 0
            state.stride = stride
        state.last_addr = record.block
        return predictions

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """The stride table as plain structures, sorted for determinism."""
        return {
            "name": self.name,
            "table": sorted([cpu, fn, entry.last_addr, entry.stride,
                             entry.confidence]
                            for (cpu, fn), entry in self._table.items()),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the stride table with a :meth:`snapshot` state dict."""
        self._check_snapshot_name(state)
        self._table = {
            (cpu, fn): _StrideState(last_addr=last_addr, stride=stride,
                                    confidence=confidence)
            for cpu, fn, last_addr, stride, confidence in state["table"]}
