"""Setuptools shim (environment has no `wheel`, so PEP 660 editable installs
are unavailable; this enables legacy `pip install -e .`)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Temporal Streams in Commercial Server "
                 "Applications' (IISWC 2008)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
