"""Generate-vs-replay wall-time benchmark for the trace subsystem.

Measures, per workload, how long one full pass over the access stream takes
when (a) generated live by the workload models, (b) generated while being
captured into the columnar trace store (the tee'd first run), and
(c) replayed from the captured trace — both as columnar epoch chunks (what
the system models' fast path consumes) and as reconstructed ``Access``
records.  Emits ``BENCH_trace_replay.json`` so the performance trajectory of
the replay path is tracked as data, not anecdotes.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py \
        [--size small] [--seed 42] [--cpus 16] [--repeats 3] \
        [--workloads Apache OLTP ...] [--out BENCH_trace_replay.json]

The script is standalone on purpose (not pytest-collected): CI runs it after
the test suite and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.trace import (DEFAULT_EPOCH_SIZE, TRACE_FORMAT_VERSION, TraceStore,
                         trace_params)
from repro.workloads import WORKLOAD_NAMES, create_workload


def _timed(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(store: TraceStore, name: str, n_cpus: int, seed: int,
                   size: str, repeats: int) -> dict:
    params = trace_params(name, n_cpus, seed, size)

    def generate():
        return sum(1 for _ in create_workload(
            name, n_cpus=n_cpus, seed=seed, size=size).iter_accesses())

    generate_s = _timed(generate, repeats)

    # Capture pass: generation + tee into the store (the first-run cost).
    start = time.perf_counter()
    n_accesses = sum(1 for _ in store.capture(
        create_workload(name, n_cpus=n_cpus, seed=seed,
                        size=size).iter_accesses(), params))
    capture_s = time.perf_counter() - start

    reader = store.open(params)
    assert reader is not None and reader.n_accesses == n_accesses

    def replay_columnar():
        return sum(len(chunk) for chunk in reader.iter_epochs())

    def replay_accesses():
        return sum(1 for _ in reader.iter_accesses())

    replay_columnar_s = _timed(replay_columnar, repeats)
    replay_accesses_s = _timed(replay_accesses, repeats)

    return {
        "workload": name,
        "n_accesses": n_accesses,
        "n_epochs": reader.n_epochs,
        "trace_kib": round(reader.size_bytes() / 1024, 1),
        "generate_s": round(generate_s, 4),
        "capture_s": round(capture_s, 4),
        "replay_columnar_s": round(replay_columnar_s, 4),
        "replay_accesses_s": round(replay_accesses_s, 4),
        "speedup_columnar": round(generate_s / max(replay_columnar_s, 1e-9), 2),
        "speedup_accesses": round(generate_s / max(replay_accesses_s, 1e-9), 2),
        "capture_overhead": round(capture_s / max(generate_s, 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="small",
                        choices=("tiny", "small", "default", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cpus", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default: 3)")
    parser.add_argument("--workloads", nargs="+",
                        default=list(WORKLOAD_NAMES), metavar="NAME")
    parser.add_argument("--out", default="BENCH_trace_replay.json")
    args = parser.parse_args(argv)

    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2

    results = []
    with tempfile.TemporaryDirectory(prefix="bench-trace-") as root:
        store = TraceStore(root)
        for name in args.workloads:
            row = bench_workload(store, name, args.cpus, args.seed,
                                 args.size, args.repeats)
            results.append(row)
            print(f"{name:<8} {row['n_accesses']:>9,} accesses  "
                  f"generate {row['generate_s']:.3f}s  "
                  f"replay {row['replay_accesses_s']:.3f}s "
                  f"({row['speedup_accesses']:.1f}x; columnar "
                  f"{row['speedup_columnar']:.1f}x)  "
                  f"trace {row['trace_kib']:.0f} KiB")

    payload = {
        "benchmark": "trace_replay",
        "repro_version": __version__,
        "trace_format_version": TRACE_FORMAT_VERSION,
        "epoch_size": DEFAULT_EPOCH_SIZE,
        "python": platform.python_version(),
        "params": {"size": args.size, "seed": args.seed, "cpus": args.cpus,
                   "repeats": args.repeats},
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(results)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
