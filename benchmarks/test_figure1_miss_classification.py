"""Benchmark F1: regenerate Figure 1 (miss classification).

Expected shape (paper): coherence dominates multi-chip off-chip misses for
the Web and OLTP workloads; the single-chip system has no (non-I/O) off-chip
coherence; DSS is dominated by compulsory + I/O misses; the intra-chip
breakdown shows substantial coherence between cores.
"""

from repro.experiments import figure1
from repro.mem import IntraChipClass, MissClass
from repro.mem.trace import MULTI_CHIP, SINGLE_CHIP


def test_figure1_miss_classification(run_once, repro_size):
    result = run_once(figure1, size=repro_size)
    print()
    print(result.render())

    # No off-chip CPU coherence in the single-chip system (all cores on chip).
    for workload, contexts in result.offchip.items():
        assert contexts[SINGLE_CHIP].fraction(MissClass.COHERENCE) == 0.0

    # Coherence is a major component of multi-chip off-chip misses for the
    # coherence-bound workloads.
    for workload in ("Apache", "Zeus", "OLTP"):
        assert result.offchip[workload][MULTI_CHIP].fraction(
            MissClass.COHERENCE) > 0.25

    # DSS off-chip misses are dominated by compulsory + I/O coherence.
    for workload in ("Qry1", "Qry2", "Qry17"):
        for context in (MULTI_CHIP, SINGLE_CHIP):
            breakdown = result.offchip[workload][context]
            assert (breakdown.fraction(MissClass.COMPULSORY)
                    + breakdown.fraction(MissClass.IO_COHERENCE)) > 0.4

    # Intra-chip misses include coherence supplied by peer L1s or the L2.
    for workload in ("Apache", "OLTP"):
        intra = result.intrachip[workload]
        coherence = (intra.fraction(IntraChipClass.COHERENCE_PEER_L1)
                     + intra.fraction(IntraChipClass.COHERENCE_L2))
        assert coherence > 0.1
