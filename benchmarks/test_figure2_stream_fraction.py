"""Benchmark F2: regenerate Figure 2 (fraction of misses in temporal streams).

Expected shape (paper): a substantial fraction of misses (35-90%) falls in
temporal streams; Web and OLTP are highly repetitive in the coherence-
dominated multi-chip and intra-chip contexts; OLTP repetition drops sharply
in the single-chip context; DSS shows the smallest stream fractions.
"""

from repro.experiments import figure2
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP


def test_figure2_stream_fractions(run_once, repro_size):
    result = run_once(figure2, size=repro_size)
    print()
    print(result.render())

    # Web and OLTP multi-chip misses are mostly repetitive.
    for workload in ("Apache", "Zeus", "OLTP"):
        assert result.fraction_in_streams(workload, MULTI_CHIP) > 0.55

    # Intra-chip misses are highly repetitive for Web and OLTP.
    for workload in ("Apache", "Zeus", "OLTP"):
        assert result.fraction_in_streams(workload, INTRA_CHIP) > 0.6

    # OLTP repetition collapses when coherence is absorbed on chip.
    assert (result.fraction_in_streams("OLTP", MULTI_CHIP)
            > result.fraction_in_streams("OLTP", SINGLE_CHIP) + 0.2)

    # DSS is the least repetitive application class in the multi-chip
    # context.  (In the paper this also holds for single-chip; in the scaled
    # model the web single-chip stream fraction is under-reproduced — see
    # EXPERIMENTS.md — so the single-chip comparison is not asserted here.)
    assert (result.fraction_in_streams("Qry1", MULTI_CHIP)
            < result.fraction_in_streams("Apache", MULTI_CHIP))
