"""Import-throughput and imported-replay benchmark for the ingest subsystem.

Measures, per bundled fixture format, (a) import throughput — parsing an
external dump and committing it into the columnar trace store, in
accesses/second — and (b) how imported-trace replay compares against live
workload generation for a stream of comparable length (the economics of
importing: parse once, replay at columnar speed thereafter).  Also times one
seeded fuzz-recipe generation pass.  Emits ``BENCH_trace_ingest.json`` so the
ingest path's performance trajectory is tracked as data, not anecdotes.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_ingest.py \
        [--cpus 16] [--seed 42] [--repeats 3] \
        [--fuzz-recipe fuzz:Apache+OLTP,drift=0.3,burst=0.1] \
        [--out BENCH_trace_ingest.json]

The script is standalone on purpose (not pytest-collected): CI's
ingest-smoke job runs it after the test suite and uploads the JSON as a
workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.ingest import IMPORTERS, import_trace
from repro.trace import TRACE_FORMAT_VERSION, TraceStore, trace_params
from repro.workloads import create_workload

FIXTURES = Path(__file__).resolve().parent.parent / "tests/ingest/fixtures"

#: (format, fixture file) pairs benchmarked by default — one per importer.
FIXTURE_FORMATS = (
    ("valgrind", "fixture.lackey"),
    ("champsim", "fixture.champsim.bin"),
    ("csv", "fixture.csv"),
    ("jsonl", "fixture.jsonl"),
)

#: Live-generation reference workload for the replay comparison.
REFERENCE_WORKLOAD = "Apache"


def _timed(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_import(store: TraceStore, fmt: str, source: Path, n_cpus: int,
                 seed: int, repeats: int) -> dict:
    def do_import():
        return import_trace(store, source, fmt, name=f"bench-{fmt}",
                            n_cpus=n_cpus, seed=seed, size="bench",
                            force=True)

    import_s = _timed(do_import, repeats)
    result = store.open(trace_params(f"import:bench-{fmt}", n_cpus, seed,
                                     "bench"))
    assert result is not None

    def replay_accesses():
        return sum(1 for _ in result.iter_accesses())

    replay_s = _timed(replay_accesses, repeats)
    n = result.n_accesses
    return {
        "format": fmt,
        "source": source.name,
        "source_kib": round(source.stat().st_size / 1024, 1),
        "n_accesses": n,
        "import_s": round(import_s, 4),
        "import_accesses_per_s": round(n / max(import_s, 1e-9)),
        "replay_s": round(replay_s, 4),
        "replay_accesses_per_s": round(n / max(replay_s, 1e-9)),
    }


def bench_replay_vs_generation(store: TraceStore, n_cpus: int, seed: int,
                               size: str, repeats: int) -> dict:
    """Imported-replay vs live-generation wall time, same stream."""
    params = trace_params(REFERENCE_WORKLOAD, n_cpus, seed, size)

    def generate():
        return sum(1 for _ in create_workload(
            REFERENCE_WORKLOAD, n_cpus=n_cpus, seed=seed,
            size=size).iter_accesses())

    generate_s = _timed(generate, repeats)
    n_accesses = sum(1 for _ in store.capture(
        create_workload(REFERENCE_WORKLOAD, n_cpus=n_cpus, seed=seed,
                        size=size).iter_accesses(), params))
    reader = store.open(params)
    assert reader is not None
    replay_s = _timed(lambda: sum(1 for _ in reader.iter_accesses()),
                      repeats)
    return {
        "workload": REFERENCE_WORKLOAD,
        "n_accesses": n_accesses,
        "generate_s": round(generate_s, 4),
        "replay_s": round(replay_s, 4),
        "replay_speedup": round(generate_s / max(replay_s, 1e-9), 2),
    }


def bench_fuzz(recipe: str, n_cpus: int, seed: int, size: str,
               repeats: int) -> dict:
    def generate():
        return sum(1 for _ in create_workload(
            recipe, n_cpus=n_cpus, seed=seed, size=size).iter_accesses())

    n_accesses = generate()
    fuzz_s = _timed(generate, repeats)
    return {
        "recipe": recipe,
        "n_accesses": n_accesses,
        "generate_s": round(fuzz_s, 4),
        "accesses_per_s": round(n_accesses / max(fuzz_s, 1e-9)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cpus", type=int, default=16)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--size", default="tiny",
                        choices=("tiny", "small", "default", "large"),
                        help="size for the generation/fuzz comparisons")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default: 3)")
    parser.add_argument("--fuzz-recipe",
                        default="fuzz:Apache+OLTP,drift=0.3,burst=0.1")
    parser.add_argument("--out", default="BENCH_trace_ingest.json")
    args = parser.parse_args(argv)

    imports = []
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as root:
        store = TraceStore(root)
        for fmt, filename in FIXTURE_FORMATS:
            source = FIXTURES / filename
            if not source.is_file():
                print(f"missing fixture {source}, skipping", file=sys.stderr)
                continue
            row = bench_import(store, fmt, source, args.cpus, args.seed,
                               args.repeats)
            imports.append(row)
            print(f"{fmt:<9} {row['n_accesses']:>7,} accesses  "
                  f"import {row['import_s']:.3f}s "
                  f"({row['import_accesses_per_s']:,}/s)  "
                  f"replay {row['replay_accesses_per_s']:,}/s")

        comparison = bench_replay_vs_generation(store, args.cpus, args.seed,
                                                args.size, args.repeats)
        print(f"replay-vs-gen ({comparison['workload']}, {args.size}): "
              f"{comparison['replay_speedup']:.1f}x over live generation")

    fuzz = bench_fuzz(args.fuzz_recipe, args.cpus, args.seed, args.size,
                      args.repeats)
    print(f"fuzz {fuzz['recipe']}: {fuzz['n_accesses']:,} accesses in "
          f"{fuzz['generate_s']:.3f}s ({fuzz['accesses_per_s']:,}/s)")

    payload = {
        "benchmark": "trace_ingest",
        "repro_version": __version__,
        "trace_format_version": TRACE_FORMAT_VERSION,
        "importers": sorted(IMPORTERS.names()),
        "python": platform.python_version(),
        "params": {"cpus": args.cpus, "seed": args.seed, "size": args.size,
                   "repeats": args.repeats},
        "imports": imports,
        "replay_vs_generation": comparison,
        "fuzz": fuzz,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(imports)} formats)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
