"""Ablation A2/A3: stream-finder agreement and stride-detector sensitivity.

A2: the SEQUITUR grammar analysis and an independent greedy
longest-previous-match detector should report similar recurring-miss
fractions on the same traces (the paper's conclusions do not hinge on the
specific detector).

A3: Figure 3's strided fraction as a function of the stride detector's
confidence threshold — the DSS result (mostly strided) must be robust to the
threshold choice.
"""

from repro.experiments import stream_finder_ablation, stride_sensitivity
from repro.mem.trace import MULTI_CHIP


def test_ablation_stream_finder_agreement(run_once, repro_size):
    agreements = run_once(stream_finder_ablation,
                          workloads=("Apache", "OLTP", "Qry1"),
                          context=MULTI_CHIP, size=repro_size)
    print()
    for agreement in agreements:
        print(f"{agreement.workload:>8s}  sequitur={agreement.sequitur_fraction:6.1%}  "
              f"greedy={agreement.greedy_fraction:6.1%}  "
              f"diff={agreement.difference:6.1%}")
    for agreement in agreements:
        assert agreement.difference < 0.35

    # Both detectors agree on the ordering: Web/OLTP more repetitive than DSS.
    by_name = {a.workload: a for a in agreements}
    assert by_name["Apache"].greedy_fraction > by_name["Qry1"].greedy_fraction


def test_ablation_stride_confidence_sensitivity(run_once, repro_size):
    sweep = run_once(stride_sensitivity, workload="Qry1", context=MULTI_CHIP,
                     size=repro_size, confidences=(1, 2, 4))
    print()
    for confidence, fraction in sorted(sweep.items()):
        print(f"  min_confidence={confidence}: strided fraction {fraction:6.1%}")
    # Monotone non-increasing in the confidence threshold...
    assert sweep[1] >= sweep[2] >= sweep[4]
    # ...and the DSS "mostly strided" conclusion is robust to the threshold.
    assert sweep[4] > 0.4
