"""Delta-chain checkpoint and shared-prefix warm-start benchmark.

Quantifies, per workload, what the delta layer buys over legacy full
snapshots, and what shared-prefix warm starts buy over cold sweeps:

* ``full_kib_per_epoch`` vs ``delta_kib_per_epoch`` — bytes the store
  grows per epoch boundary when checkpointing *every* boundary with legacy
  full snapshots vs delta chains.  The dominant snapshot component (the
  accumulated miss trace) grows linearly with the run, so full snapshots
  cost O(trace) per boundary while append-encoded delta links cost
  O(epoch); ``bytes_ratio`` is asserted >= 2 — this gate is deterministic
  (byte counts, not timings).
* ``full_ckpt_s`` vs ``delta_ckpt_s`` — wall time of the same two passes
  (reported, not gated: timings are noisy in CI).
* ``cold_sweep_s`` vs ``warm_sweep_s`` — a two-cell sweep differing only in
  warm-up fraction, run cold (each cell simulates from access zero,
  checkpointing as the runner always does) vs warm (the shared prefix is
  published once, both cells restore it and simulate just their tails);
  miss traces are verified identical before the speedup is reported.

Emits ``BENCH_checkpoint_delta.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint_delta.py \
        [--size default] [--seed 42] [--workloads Apache ...] \
        [--organisation multi-chip] [--out BENCH_checkpoint_delta.json]

Standalone on purpose (not pytest-collected): CI runs it after the test
suite and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.checkpoint import (CHECKPOINT_FORMAT_VERSION, STATS,
                              CheckpointStore, chain_stats,
                              checkpoint_params, prefix_params,
                              simulate_replay)
from repro.checkpoint.delta import collect_garbage
from repro.experiments.runner import _build_system
from repro.trace import TraceStore, trace_params
from repro.trace.epoch import boundary_at_or_before
from repro.workloads import WORKLOAD_NAMES, create_workload

#: The sweep's two warm-up fractions; the smaller one is the shared prefix.
WARMUPS = (0.5, 0.75)


def _trace_checksum(trace) -> tuple:
    """A cheap, order-sensitive fingerprint of one miss trace."""
    return (len(trace), trace.instructions,
            sum((record.seq + 1) * record.block for record in trace),
            sum(record.cpu for record in trace))


def _checksums(system) -> dict:
    return {context: _trace_checksum(trace)
            for context, trace in system.miss_traces().items()}


def bench_workload(root: str, name: str, organisation: str, seed: int,
                   size: str, scale: int) -> dict:
    system = _build_system(organisation, scale)
    n_cpus = system.config.n_cpus
    stream_key = trace_params(name, n_cpus, seed, size)
    traces = TraceStore(root)

    n_accesses = sum(1 for _ in traces.capture(
        create_workload(name, n_cpus=n_cpus, seed=seed,
                        size=size).iter_accesses(), stream_key))
    reader = traces.open(stream_key)
    assert reader is not None and reader.n_accesses == n_accesses
    warmup = int(n_accesses * WARMUPS[0])
    key = checkpoint_params(name, n_cpus, seed, size, organisation, scale,
                            WARMUPS[0], epoch_size=reader.meta.epoch_size)

    # ---- per-epoch checkpoint overhead: legacy full vs delta chains ---- #
    full_store = CheckpointStore(Path(root) / "full")
    start = time.perf_counter()
    full_system = _build_system(organisation, scale)
    simulate_replay(full_system, reader, warmup=warmup, store=full_store,
                    params=key, resume=False, checkpoint_every=1,
                    delta=False)
    full_ckpt_s = time.perf_counter() - start
    reference = _checksums(full_system)

    delta_store = CheckpointStore(Path(root) / "delta")
    start = time.perf_counter()
    delta_system = _build_system(organisation, scale)
    simulate_replay(delta_system, reader, warmup=warmup, store=delta_store,
                    params=key, resume=False, checkpoint_every=1, delta=True)
    delta_ckpt_s = time.perf_counter() - start
    assert _checksums(delta_system) == reference

    # The delta chain restores the final boundary to the exact full state.
    full_latest = full_store.latest(key)
    delta_latest = delta_store.latest(key)
    assert full_latest is not None and delta_latest is not None
    assert full_latest[0] == delta_latest[0]
    assert full_latest[1] == delta_latest[1], "delta restore diverged"

    n_epochs = reader.n_epochs
    full_bytes = full_store.size_bytes()
    delta_bytes = delta_store.size_bytes()
    bytes_ratio = full_bytes / max(delta_bytes, 1)
    assert bytes_ratio >= 2.0, (
        f"{name}: delta checkpoints only {bytes_ratio:.2f}x smaller per "
        f"epoch than full snapshots (expected >= 2x; full "
        f"{full_bytes} B vs delta {delta_bytes} B over {n_epochs} epochs)")
    gc_removed, gc_freed = collect_garbage(delta_store)
    assert gc_removed == 0, "live chains must not lose chunks to gc"

    # ---- shared-prefix warm start: cold sweep vs publish + warm cells --- #
    def cell_key(fraction):
        return checkpoint_params(name, n_cpus, seed, size, organisation,
                                 scale, fraction,
                                 epoch_size=reader.meta.epoch_size)

    cold_store = CheckpointStore(Path(root) / "cold")
    start = time.perf_counter()
    cold = {}
    for fraction in WARMUPS:
        cell = _build_system(organisation, scale)
        simulate_replay(cell, reader, warmup=int(n_accesses * fraction),
                        store=cold_store, params=cell_key(fraction),
                        resume=False)
        cold[fraction] = _checksums(cell)
    cold_sweep_s = time.perf_counter() - start

    warm_store = CheckpointStore(Path(root) / "warm")
    p_key = prefix_params(name, n_cpus, seed, size, organisation, scale,
                          epoch_size=reader.meta.epoch_size)
    stop = boundary_at_or_before(reader.meta.segments,
                                 int(n_accesses * WARMUPS[0]))
    assert stop >= 1, f"{name}: no epoch boundary inside the shared prefix"
    start = time.perf_counter()
    publisher = _build_system(organisation, scale)
    simulate_replay(publisher, reader, warmup=n_accesses, store=warm_store,
                    params=p_key, stop_epoch=stop)
    warm = {}
    for fraction in WARMUPS:
        limit = boundary_at_or_before(reader.meta.segments,
                                      int(n_accesses * fraction))
        cell = _build_system(organisation, scale)
        simulate_replay(cell, reader, warmup=int(n_accesses * fraction),
                        store=warm_store, params=cell_key(fraction),
                        prefix_params=p_key, prefix_limit=limit)
        warm[fraction] = _checksums(cell)
    warm_sweep_s = time.perf_counter() - start
    assert warm == cold, "warm-started sweep diverged from cold sweep"
    assert STATS.warm_starts >= 2, "both cells should have warm-started"

    stats = chain_stats(delta_store)
    return {
        "workload": name,
        "organisation": organisation,
        "n_accesses": n_accesses,
        "n_epochs": n_epochs,
        "full_kib_per_epoch": round(full_bytes / n_epochs / 1024, 2),
        "delta_kib_per_epoch": round(delta_bytes / n_epochs / 1024, 2),
        "bytes_ratio": round(bytes_ratio, 2),
        "full_ckpt_s": round(full_ckpt_s, 4),
        "delta_ckpt_s": round(delta_ckpt_s, 4),
        "ckpt_time_ratio": round(full_ckpt_s / max(delta_ckpt_s, 1e-9), 2),
        "chunk_dedupe_ratio": round(stats["dedupe_ratio"], 2),
        "gc_freed_bytes": gc_freed,
        "cold_sweep_s": round(cold_sweep_s, 4),
        "warm_sweep_s": round(warm_sweep_s, 4),
        "warm_speedup": round(cold_sweep_s / max(warm_sweep_s, 1e-9), 2),
        "warm_matches_cold": True,  # asserted above
        "delta_restore_matches_full": True,  # asserted above
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="default",
                        choices=("tiny", "small", "default", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--organisation", default="multi-chip",
                        choices=("multi-chip", "single-chip"))
    parser.add_argument("--scale", type=int, default=64)
    parser.add_argument("--workloads", nargs="+", default=["Apache"],
                        metavar="NAME")
    parser.add_argument("--out", default="BENCH_checkpoint_delta.json")
    args = parser.parse_args(argv)

    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2

    results = []
    for name in args.workloads:
        with tempfile.TemporaryDirectory(prefix="bench-delta-") as root:
            row = bench_workload(root, name, args.organisation, args.seed,
                                 args.size, args.scale)
        results.append(row)
        print(f"{name:<8} {row['n_accesses']:>9,} accesses "
              f"{row['n_epochs']:>4} epochs  "
              f"bytes/epoch {row['full_kib_per_epoch']:.1f} -> "
              f"{row['delta_kib_per_epoch']:.1f} KiB "
              f"({row['bytes_ratio']:.1f}x)  "
              f"ckpt pass {row['full_ckpt_s']:.2f}s -> "
              f"{row['delta_ckpt_s']:.2f}s  "
              f"warm sweep {row['cold_sweep_s']:.2f}s -> "
              f"{row['warm_sweep_s']:.2f}s "
              f"({row['warm_speedup']:.2f}x)")

    payload = {
        "benchmark": "checkpoint_delta",
        "repro_version": __version__,
        "checkpoint_format_version": CHECKPOINT_FORMAT_VERSION,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "params": {"size": args.size, "seed": args.seed,
                   "organisation": args.organisation, "scale": args.scale,
                   "warmups": list(WARMUPS)},
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(results)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
