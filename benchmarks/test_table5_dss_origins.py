"""Benchmark T5: regenerate Table 5 (temporal stream origins, DSS).

Expected shape (paper): bulk memory copies are the dominant category (half or
more of single-chip misses) and are non-repetitive because DSS does not reuse
its I/O buffers; index/tuple accesses are the second contributor and are not
repetitive off-chip (data scanned once); overall stream fractions are the
lowest of the three application classes.
"""

from repro.experiments import table3, table5
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP


def test_table5_dss_stream_origins(run_once, repro_size):
    result = run_once(table5, size=repro_size)
    print()
    print(result.render())

    merged_single = result.merged(SINGLE_CHIP)
    merged_multi = result.merged(MULTI_CHIP)
    copies_single = merged_single.row("Bulk memory copies")
    copies_multi = merged_multi.row("Bulk memory copies")

    # Bulk copies dominate DSS misses and are largely non-repetitive.
    assert copies_single.pct_misses > 0.25
    assert copies_multi.repetition_rate < 0.3

    # Index/tuple accesses are the other major contributor.
    assert merged_multi.row("DB2 index, page & tuple accesses").pct_misses > 0.1

    # DSS off-chip repetition is lower than Web repetition (cross-check with
    # Table 3 at the same size, reusing the memoised simulations).
    web = table3(size="small")
    assert (merged_multi.overall_in_streams
            < web.merged(MULTI_CHIP).overall_in_streams)

    # Intra-chip repetition is higher than off-chip (nested-loop joins loop
    # over data that exceeds the L1 but stays on chip).
    assert (result.breakdown("Qry2", INTRA_CHIP).overall_in_streams
            > result.breakdown("Qry2", SINGLE_CHIP).overall_in_streams)
