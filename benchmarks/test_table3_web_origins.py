"""Benchmark T3: regenerate Table 3 (temporal stream origins, Web).

Expected shape (paper): the web server's own code is a minor contributor;
OS activity (STREAMS, IP assembly, scheduler, syscalls, copies) plus the
perl CGI processes dominate; perl input parsing is almost fully repetitive;
no single category exceeds ~25% of misses; overall 75-85% of misses are in
streams across contexts.
"""

from repro.experiments import table3
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP


def test_table3_web_stream_origins(run_once, repro_size):
    result = run_once(table3, size=repro_size)
    print()
    print(result.render())

    for workload in ("Apache", "Zeus"):
        multi = result.breakdown(workload, MULTI_CHIP)
        multi.check_consistency()

        # The web server software itself is a small share of misses.
        assert multi.row("Web server worker thread pool").pct_misses < 0.15

        # The kernel and CGI categories the paper highlights are all present.
        for category in ("Kernel STREAMS subsystem", "Kernel task scheduler",
                         "Bulk memory copies", "CGI - perl execution engine",
                         "System call implementation"):
            assert multi.row(category).pct_misses > 0.0, category

        # Perl execution-engine misses are highly repetitive (the same script
        # op-tree is walked for every request).
        perl_engine = multi.row("CGI - perl execution engine")
        assert perl_engine.repetition_rate > 0.6

        # Multi-chip and intra-chip web misses are mostly in streams.
        assert multi.overall_in_streams > 0.55
        assert result.breakdown(workload, INTRA_CHIP).overall_in_streams > 0.6
