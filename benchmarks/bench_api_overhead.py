"""Facade-overhead benchmark: Session/plan API vs direct runner calls.

The declarative API is a composition layer — it must not tax the pipeline it
composes.  This benchmark measures three comparisons per workload cell:

* ``cold_direct_s`` vs ``cold_session_s`` — a full cold simulation (fresh
  cache root each) through the engine function
  (:func:`repro.experiments.runner.run_context` with an explicit session)
  and through :meth:`repro.api.session.Session.run`.
* ``warm_direct_s`` vs ``warm_session_s`` — a fresh-process-equivalent rerun
  (in-process memo dropped, disk store warm): the steady-state cost of
  re-asking for a bundle, where facade overhead would actually be felt.
* ``memo_direct_us`` vs ``memo_session_us`` — microseconds per memo-hit
  call, reported for visibility (not asserted: both are sub-microsecond-ish
  dictionary lookups where timer noise dominates).

The script **asserts** that the facade adds less than ``--threshold`` (default
5%) on the warm-path median and exits non-zero otherwise, and emits
``BENCH_api_overhead.json`` so the trajectory is tracked as data.

Usage::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py \
        [--size tiny] [--workloads Apache ...] [--repeats 7] \
        [--out BENCH_api_overhead.json]

The script is standalone on purpose (not pytest-collected): CI runs it after
the test suite and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.api import Session
from repro.experiments import runner
from repro.mem.trace import MULTI_CHIP
from repro.workloads import WORKLOAD_NAMES

CONTEXT = MULTI_CHIP


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _drop_memo() -> None:
    runner._CACHE.clear()
    runner._TRACE_CACHE.clear()


def _interleaved_warm(calls, repeats: int) -> list:
    """Best (min) duration per call, sampled alternately.

    Alternating the candidates inside one loop exposes both to the same
    page-cache and scheduler conditions; the minimum of many samples is the
    standard noise-cancelling estimator for a deterministic operation.
    """
    samples = [[] for _ in calls]
    for _ in range(repeats):
        for index, call in enumerate(calls):
            _drop_memo()
            samples[index].append(_timed(call))
    return [min(times) for times in samples]


def _memo_us(call, loops: int = 2000) -> float:
    """Microseconds per call when the in-process memo is warm."""
    call()  # warm
    start = time.perf_counter()
    for _ in range(loops):
        call()
    return (time.perf_counter() - start) / loops * 1e6


def bench_workload(name: str, size: str, seed: int,
                   repeats: int) -> dict:
    kwargs = dict(size=size, seed=seed)

    with tempfile.TemporaryDirectory(prefix="bench-api-") as base:
        direct_session = Session(cache_dir=os.path.join(base, "direct"))
        facade_session = Session(cache_dir=os.path.join(base, "facade"))

        def direct():
            return runner.run_context(name, CONTEXT, session=direct_session,
                                      **kwargs)

        def facade():
            return facade_session.run(name, CONTEXT, **kwargs)

        cold_direct_s = _timed(direct)
        _drop_memo()
        cold_session_s = _timed(facade)
        warm_direct_s, warm_session_s = _interleaved_warm(
            (direct, facade), repeats)
        memo_direct_us = _memo_us(direct)
        memo_session_us = _memo_us(facade)

    _drop_memo()
    return {
        "workload": name,
        "context": CONTEXT,
        "cold_direct_s": round(cold_direct_s, 4),
        "cold_session_s": round(cold_session_s, 4),
        "cold_overhead": round(
            cold_session_s / max(cold_direct_s, 1e-9) - 1.0, 4),
        "warm_direct_s": round(warm_direct_s, 5),
        "warm_session_s": round(warm_session_s, 5),
        "warm_overhead": round(
            warm_session_s / max(warm_direct_s, 1e-9) - 1.0, 4),
        "memo_direct_us": round(memo_direct_us, 2),
        "memo_session_us": round(memo_session_us, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="tiny",
                        choices=("tiny", "small", "default", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=7,
                        help="warm-path samples per cell (median is used)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="maximum allowed warm-path facade overhead "
                             "(default: 0.05 = 5%%)")
    parser.add_argument("--workloads", nargs="+", default=["Apache", "OLTP"],
                        metavar="NAME")
    parser.add_argument("--out", default="BENCH_api_overhead.json")
    args = parser.parse_args(argv)

    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2

    results = []
    for name in args.workloads:
        row = bench_workload(name, args.size, args.seed, args.repeats)
        results.append(row)
        print(f"{name:<8} cold {row['cold_direct_s']:.3f}s -> "
              f"{row['cold_session_s']:.3f}s "
              f"({row['cold_overhead']:+.1%})  "
              f"warm {row['warm_direct_s'] * 1e3:.2f}ms -> "
              f"{row['warm_session_s'] * 1e3:.2f}ms "
              f"({row['warm_overhead']:+.1%})  "
              f"memo {row['memo_direct_us']:.1f}us -> "
              f"{row['memo_session_us']:.1f}us")

    # The asserted number: the median warm-path overhead across cells.  A
    # single cell can catch a scheduler hiccup; the median cannot be saved
    # by one lucky cell either.
    overhead = statistics.median(row["warm_overhead"] for row in results)
    passed = overhead < args.threshold

    payload = {
        "benchmark": "api_overhead",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "params": {"size": args.size, "seed": args.seed,
                   "repeats": args.repeats, "threshold": args.threshold},
        "median_warm_overhead": round(overhead, 4),
        "passed": passed,
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(results)} workloads); "
          f"median warm overhead {overhead:+.2%} "
          f"(threshold {args.threshold:.0%}) -> "
          f"{'OK' if passed else 'FAIL'}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
