"""Executor-scaling benchmark: one grid, every backend, cold wall-clock.

The pluggable executor layer exists so independent grid cells overlap; this
benchmark checks that the overlap is real.  It executes the same
multi-combo experiment spec (several workloads x organisations x warmups,
so the stage DAG has genuinely independent branches) under every registered
backend, each starting from its own cold cache root, and records the
end-to-end wall-clock plus the per-stage status mix.

The script **asserts** that the ``process`` backend beats ``serial`` on the
multi-combo grid (by at least ``--min-speedup``, default 1.05x) and exits
non-zero otherwise; ``thread`` and ``dispatch`` are reported but not
asserted (the thread backend is GIL-bound on this pure-Python simulator,
and dispatch pays a JSON/receipt round trip per stage by design).  On a
machine without real parallel capacity (fewer than two cores, or
``--jobs 1``) the assertion is skipped and recorded as such — overlap
cannot beat serial without a second core.  Results land in
``BENCH_executor_scaling.json`` so CI tracks the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor_scaling.py \
        [--size tiny] [--jobs 4] [--repeats 1] \
        [--out BENCH_executor_scaling.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.api import EXECUTOR_NAMES, ExperimentSpec, Session
from repro.experiments import runner
from repro.experiments.store import CACHE_DIR_ENV


def grid_spec(size: str, seed: int) -> ExperimentSpec:
    """A grid with independent (scale, warmup) combos to overlap."""
    return ExperimentSpec(
        name="executor-scaling", size=size, seed=seed,
        workloads=("Apache", "OLTP"),
        organisations=("multi-chip", "single-chip"),
        scales=(64,), warmups=(0.25, 0.5),
        analyses=("figure2",))


def bench_backend(name: str, spec: ExperimentSpec, jobs: int,
                  repeats: int) -> dict:
    """Cold plan execution under one backend; best of ``repeats`` runs."""
    durations = []
    statuses: dict = {}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix=f"bench-exec-{name}-") as root:
            os.environ[CACHE_DIR_ENV] = root
            runner.clear_cache()
            session = Session(max_workers=jobs, executor=name)
            start = time.perf_counter()
            outcome = session.execute(spec)
            durations.append(time.perf_counter() - start)
            statuses = {}
            for status in outcome.statuses.values():
                statuses[status] = statuses.get(status, 0) + 1
            runner.clear_cache()
    return {"executor": name,
            "cold_s": round(min(durations), 3),
            "runs": [round(d, 3) for d in durations],
            "stages": statuses}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="tiny",
                        choices=("tiny", "small", "default", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker budget per backend (default: "
                             "min(4, cpu count))")
    parser.add_argument("--repeats", type=int, default=1,
                        help="cold executions per backend (best is kept)")
    parser.add_argument("--min-speedup", type=float, default=1.05,
                        help="required serial/process wall-clock ratio "
                             "(default: 1.05)")
    parser.add_argument("--out", default="BENCH_executor_scaling.json")
    args = parser.parse_args(argv)

    previous_cache = os.environ.get(CACHE_DIR_ENV)
    spec = grid_spec(args.size, args.seed)
    n_cells = len(spec.cells())
    print(f"grid: {n_cells} cells "
          f"({len(spec.resolved().warmups)} independent combos), "
          f"size={args.size}, jobs={args.jobs}")

    results = []
    try:
        for name in EXECUTOR_NAMES:
            row = bench_backend(name, spec, args.jobs, args.repeats)
            results.append(row)
            print(f"{name:<9} cold {row['cold_s']:.2f}s  "
                  f"stages {row['stages']}")
    finally:
        if previous_cache is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous_cache

    by_name = {row["executor"]: row for row in results}
    speedup = by_name["serial"]["cold_s"] / max(by_name["process"]["cold_s"],
                                                1e-9)
    can_overlap = args.jobs >= 2 and (os.cpu_count() or 1) >= 2
    passed = speedup >= args.min_speedup if can_overlap else True

    payload = {
        "benchmark": "executor_scaling",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "params": {"size": args.size, "seed": args.seed, "jobs": args.jobs,
                   "repeats": args.repeats,
                   "min_speedup": args.min_speedup,
                   "n_cells": n_cells},
        "serial_over_process_speedup": round(speedup, 3),
        "asserted": can_overlap,
        "passed": passed,
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    verdict = ("OK" if passed else "FAIL") if can_overlap \
        else "SKIPPED (needs >=2 cores and --jobs >= 2)"
    print(f"wrote {out} ({len(results)} backends); process backend is "
          f"{speedup:.2f}x serial on the multi-combo grid "
          f"(need >= {args.min_speedup:.2f}x) -> {verdict}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
