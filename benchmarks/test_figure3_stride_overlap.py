"""Benchmark F3: regenerate Figure 3 (strides vs temporal streams).

Expected shape (paper): DSS shows a large strided share (especially
single-chip, where bulk copies dominate); Web and OLTP are mostly
non-strided; repetitive and strided behaviour are largely distinct outside
DSS.
"""

from repro.experiments import figure3
from repro.mem.trace import MULTI_CHIP, SINGLE_CHIP


def test_figure3_strides_and_streams(run_once, repro_size):
    result = run_once(figure3, size=repro_size)
    print()
    print(result.render())

    # DSS is heavily stride-predictable.
    for workload in ("Qry1", "Qry17"):
        assert result.breakdowns[workload][SINGLE_CHIP].fraction_strided > 0.5

    # OLTP misses are mostly non-strided (pointer chasing).
    assert result.breakdowns["OLTP"][MULTI_CHIP].fraction_strided < 0.4

    # Every joint breakdown is a proper partition of the misses.
    for contexts in result.breakdowns.values():
        for breakdown in contexts.values():
            assert abs(breakdown.total() - 1.0) < 1e-9
