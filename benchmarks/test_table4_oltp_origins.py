"""Benchmark T4: regenerate Table 4 (temporal stream origins, OLTP).

Expected shape (paper): buffer-pool index/page/tuple accesses are the largest
single category; scheduler and synchronization activity contribute in the
coherence-dominated contexts but fade from the single-chip off-chip profile;
MMU trap handling produces many repetitive misses; overall repetition is high
in the multi-chip and intra-chip contexts and much lower in single-chip.
"""

from repro.experiments import table4
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP


def test_table4_oltp_stream_origins(run_once, repro_size):
    result = run_once(table4, size=repro_size)
    print()
    print(result.render())

    multi = result.breakdown("OLTP", MULTI_CHIP)
    single = result.breakdown("OLTP", SINGLE_CHIP)
    intra = result.breakdown("OLTP", INTRA_CHIP)
    for breakdown in (multi, single, intra):
        breakdown.check_consistency()

    # Index/page/tuple accesses are a leading contributor everywhere.
    top_multi = {row.category for row in multi.top_categories(4)}
    assert "DB2 index, page & tuple accesses" in top_multi

    # Scheduler activity is visible in multi-chip but shrinks off-chip on the
    # single chip (the hot dispatcher structures stay on chip).
    assert (multi.row("Kernel task scheduler").pct_misses
            > single.row("Kernel task scheduler").pct_misses)

    # MMU/trap handling contributes repetitive misses in multi-chip.
    mmu = multi.row("Kernel MMU & trap handlers")
    assert mmu.pct_misses > 0.02 and mmu.repetition_rate > 0.4

    # Repetition ordering across contexts: intra-chip and multi-chip are far
    # more repetitive than single-chip off-chip.
    assert multi.overall_in_streams > single.overall_in_streams + 0.2
    assert intra.overall_in_streams > single.overall_in_streams + 0.2
