"""Benchmark F4 (right): regenerate the stream reuse-distance distributions.

Expected shape (paper): coherence-dominated contexts (multi-chip) have short
stream reuse distances, while the capacity-dominated single-chip context
shifts the mass toward much longer distances — implying larger storage
requirements for temporal-stream prefetchers on single-chip systems.
"""

from repro.experiments import figure4
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP


def _mean_distance(dist):
    """Weight-averaged bin lower edge (coarse centre of mass)."""
    total = sum(dist.weights)
    if not total:
        return 0.0
    return sum(edge * weight for edge, weight
               in zip(dist.bin_edges, dist.weights)) / total


def test_figure4_reuse_distance_pdf(run_once, repro_size):
    result = run_once(figure4, size=repro_size)
    print()
    for workload, contexts in result.reuse.items():
        for context, dist in contexts.items():
            print(f"{workload:>6s} {context:<12s} "
                  f"stream-miss mass {dist.total_fraction:6.1%}  "
                  f"dominant bin >= {dist.dominant_bin()}")

    # Every distribution with repetition has some mass and valid bins.
    web_oltp = ("Apache", "Zeus", "OLTP")
    for workload in web_oltp:
        for context in (MULTI_CHIP, INTRA_CHIP):
            dist = result.reuse[workload][context]
            assert dist.total_fraction > 0.2
            assert len(dist.bin_edges) == 8

    # Multi-chip (coherence) reuse distances are short: most stream mass sits
    # below 10^4 intervening misses for the coherence-bound workloads.
    for workload in web_oltp:
        dist = result.reuse[workload][MULTI_CHIP]
        assert dist.mass_below(10_000) > 0.5 * dist.total_fraction
