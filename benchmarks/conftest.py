"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the ``small``
work-volume preset (the ``default`` preset reproduces the same shapes with
roughly 3x the misses; pass ``--repro-size=default`` for the longer run).
Simulation results are memoised inside :mod:`repro.experiments.runner`, so
one pytest-benchmark session simulates each (workload, organisation) pair
only once.
"""

import pytest

# Disk-cache isolation lives in the repo-root conftest.py (shared with
# tests/).


def pytest_addoption(parser):
    parser.addoption("--repro-size", action="store", default="small",
                     help="work-volume preset for benchmark runs "
                          "(tiny/small/default/large)")


@pytest.fixture(scope="session")
def repro_size(request):
    return request.config.getoption("--repro-size")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return runner
