"""Ablation A1: temporal-streaming vs stride prefetcher coverage.

The paper motivates temporal-stream prefetchers by showing that commercial
server misses are repetitive but not strided; this ablation closes the loop
by replaying the generated miss traces against idealised prefetcher models.
Expected: temporal streaming clearly beats stride prefetching on the
coherence-bound workloads (Web, OLTP) in the multi-chip context, while for
the scan-dominated DSS query the stride prefetcher is competitive or better.
"""

from repro.experiments import prefetcher_ablation
from repro.mem.trace import MULTI_CHIP


def test_ablation_temporal_vs_stride_coverage(run_once, repro_size):
    comparisons = run_once(prefetcher_ablation,
                           workloads=("Apache", "OLTP", "Qry1"),
                           context=MULTI_CHIP, size=repro_size)
    print()
    by_workload = {}
    for comparison in comparisons:
        by_workload[comparison.workload] = comparison
        print(f"{comparison.workload:>8s}  temporal={comparison.temporal.coverage:6.1%} "
              f"(acc {comparison.temporal.accuracy:5.1%})   "
              f"stride={comparison.stride.coverage:6.1%} "
              f"(acc {comparison.stride.accuracy:5.1%})")

    # Temporal streaming wins clearly on the coherence-bound workloads.
    for workload in ("Apache", "OLTP"):
        assert by_workload[workload].temporal_advantage > 0.1

    # On the scan-dominated DSS query the stride prefetcher is competitive:
    # temporal streaming's advantage largely disappears.
    assert (by_workload["Qry1"].temporal_advantage
            < by_workload["Apache"].temporal_advantage)
    assert by_workload["Qry1"].stride.coverage > 0.3
