"""Checkpoint/resume and epoch-sharded parallel-simulation benchmark.

Measures, per workload, what the checkpoint subsystem buys on a captured
trace:

* ``serial_s`` — one full serial simulation pass (replay, no checkpoints):
  the baseline every other number is compared against.
* ``serial_ckpt_s`` — the same pass while writing snapshots at the default
  adaptive stride (~12 evenly-spaced epoch boundaries — the first-run cost;
  the checkpoints it leaves behind power everything below).
* ``resume_latest_s`` — rerunning the finished configuration: the run
  restores the final checkpoint and simulates zero epochs.
* ``resume_half_s`` — resuming a run interrupted at the halfway boundary:
  only the second half is simulated.
* ``parallel_s`` — epoch-sharded parallel simulation over the stored
  checkpoints (``ParallelSuiteRunner.simulate_trace``): every shard restores
  its boundary snapshot and simulates only its own epoch range; the merge is
  verified bit-identical to the serial pass before the time is reported.

Emits ``BENCH_checkpoint_resume.json`` so the trajectory of the resume and
parallel paths is tracked as data, not anecdotes.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint_resume.py \
        [--size large] [--seed 42] [--workloads Apache ...] \
        [--organisation multi-chip] [--shards N] \
        [--out BENCH_checkpoint_resume.json]

The script is standalone on purpose (not pytest-collected): CI runs it after
the test suite and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.checkpoint import (CHECKPOINT_FORMAT_VERSION, CheckpointStore,
                              checkpoint_params, simulate_replay)
from repro.experiments import ParallelSuiteRunner
from repro.experiments.runner import _build_system
from repro.trace import TraceStore, trace_params
from repro.workloads import WORKLOAD_NAMES, create_workload

WARMUP_FRACTION = 0.25


def _trace_checksum(trace) -> tuple:
    """A cheap, order-sensitive fingerprint of one miss trace."""
    return (len(trace), trace.instructions,
            sum((record.seq + 1) * record.block for record in trace),
            sum(record.cpu for record in trace))


def bench_workload(root: str, name: str, organisation: str, seed: int,
                   size: str, scale: int, shards: int) -> dict:
    system = _build_system(organisation, scale)
    n_cpus = system.config.n_cpus
    stream_key = trace_params(name, n_cpus, seed, size)
    traces = TraceStore(root)
    checkpoints = CheckpointStore(root)

    # Capture once; every measured pass below replays from disk.
    start = time.perf_counter()
    n_accesses = sum(1 for _ in traces.capture(
        create_workload(name, n_cpus=n_cpus, seed=seed,
                        size=size).iter_accesses(), stream_key))
    capture_s = time.perf_counter() - start
    reader = traces.open(stream_key)
    assert reader is not None and reader.n_accesses == n_accesses
    warmup = int(n_accesses * WARMUP_FRACTION)
    ckpt_key = checkpoint_params(name, n_cpus, seed, size, organisation,
                                 scale, WARMUP_FRACTION,
                                 epoch_size=reader.meta.epoch_size)

    # Baseline: serial replay without checkpoints.
    serial_system = _build_system(organisation, scale)
    start = time.perf_counter()
    simulate_replay(serial_system, reader, warmup=warmup)
    serial_s = time.perf_counter() - start
    reference = {context: _trace_checksum(trace)
                 for context, trace in serial_system.miss_traces().items()}

    # Serial replay writing snapshots at the default adaptive stride.
    start = time.perf_counter()
    simulate_replay(_build_system(organisation, scale), reader,
                    warmup=warmup, store=checkpoints, params=ckpt_key,
                    resume=False)
    serial_ckpt_s = time.perf_counter() - start

    # Rerun of the finished configuration: restore the final checkpoint.
    start = time.perf_counter()
    resumed = _build_system(organisation, scale)
    simulate_replay(resumed, reader, warmup=warmup, store=checkpoints,
                    params=ckpt_key)
    resume_latest_s = time.perf_counter() - start
    assert {context: _trace_checksum(trace) for context, trace
            in resumed.miss_traces().items()} == reference

    # Interrupted at the halfway boundary, then resumed to completion (a
    # sibling store keeps the half-run's checkpoints apart from the full
    # run's, which already cover every boundary).
    half_store = CheckpointStore(Path(root) / "half-bench")
    half = max(1, reader.n_epochs // 2)
    simulate_replay(_build_system(organisation, scale), reader,
                    warmup=warmup, store=half_store, params=ckpt_key,
                    stop_epoch=half)
    start = time.perf_counter()
    half_resumed = _build_system(organisation, scale)
    simulate_replay(half_resumed, reader, warmup=warmup, store=half_store,
                    params=ckpt_key)
    resume_half_s = time.perf_counter() - start
    assert {context: _trace_checksum(trace) for context, trace
            in half_resumed.miss_traces().items()} == reference

    # Epoch-sharded parallel simulation over the stored checkpoints.
    runner = ParallelSuiteRunner(max_workers=shards, cache_dir=root)
    start = time.perf_counter()
    sharded = runner.simulate_trace(name, organisation, size=size, seed=seed,
                                    scale=scale,
                                    warmup_fraction=WARMUP_FRACTION,
                                    shards=shards)
    parallel_s = time.perf_counter() - start
    merged = {context: _trace_checksum(trace)
              for context, trace in sharded.items()}
    assert merged == reference, (
        f"parallel merge diverged from serial: {merged} != {reference}")

    return {
        "workload": name,
        "organisation": organisation,
        "n_accesses": n_accesses,
        "n_epochs": reader.n_epochs,
        "checkpoint_kib": round(checkpoints.size_bytes() / 1024, 1),
        "capture_s": round(capture_s, 4),
        "serial_s": round(serial_s, 4),
        "serial_ckpt_s": round(serial_ckpt_s, 4),
        "checkpoint_overhead": round(serial_ckpt_s / max(serial_s, 1e-9), 2),
        "resume_latest_s": round(resume_latest_s, 4),
        "resume_half_s": round(resume_half_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_shards": shards,
        "speedup_parallel": round(serial_s / max(parallel_s, 1e-9), 2),
        "speedup_resume_latest": round(
            serial_s / max(resume_latest_s, 1e-9), 2),
        "speedup_resume_half": round(serial_s / max(resume_half_s, 1e-9), 2),
        "parallel_matches_serial": True,  # asserted above
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="large",
                        choices=("tiny", "small", "default", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--organisation", default="multi-chip",
                        choices=("multi-chip", "single-chip"))
    parser.add_argument("--scale", type=int, default=64)
    parser.add_argument("--shards", type=int, default=None,
                        help="parallel shard count (default: cpu count, "
                             "capped at 8)")
    parser.add_argument("--workloads", nargs="+", default=["Apache"],
                        metavar="NAME")
    parser.add_argument("--out", default="BENCH_checkpoint_resume.json")
    args = parser.parse_args(argv)

    unknown = [w for w in args.workloads if w not in WORKLOAD_NAMES]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    shards = args.shards or min(os.cpu_count() or 2, 8)

    results = []
    for name in args.workloads:
        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as root:
            row = bench_workload(root, name, args.organisation, args.seed,
                                 args.size, args.scale, shards)
        results.append(row)
        print(f"{name:<8} {row['n_accesses']:>9,} accesses "
              f"{row['n_epochs']:>4} epochs  "
              f"serial {row['serial_s']:.2f}s  "
              f"ckpt-overhead {row['checkpoint_overhead']:.2f}x  "
              f"resume {row['resume_latest_s']:.2f}s "
              f"({row['speedup_resume_latest']:.1f}x)  "
              f"parallel[{shards}] {row['parallel_s']:.2f}s "
              f"({row['speedup_parallel']:.1f}x)")

    payload = {
        "benchmark": "checkpoint_resume",
        "repro_version": __version__,
        "checkpoint_format_version": CHECKPOINT_FORMAT_VERSION,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "params": {"size": args.size, "seed": args.seed,
                   "organisation": args.organisation, "scale": args.scale,
                   "shards": shards, "warmup": WARMUP_FRACTION},
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(results)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
