"""Benchmark F4 (left): regenerate the temporal stream length CDFs.

Expected shape (paper): streams are long — the median stream length is
several misses (paper: 8-10) and exceeds typical fixed prefetch depths;
stream lengths span orders of magnitude; DSS streams are the longest, with a
step near the 4KB OS page size (64 blocks).
"""

from repro.experiments import figure4
from repro.mem.trace import MULTI_CHIP, SINGLE_CHIP


def test_figure4_stream_length_cdf(run_once, repro_size):
    result = run_once(figure4, size=repro_size)
    print()
    print(result.render())

    # Streams are long: median of at least a few misses for every workload
    # in the multi-chip context.
    for workload in ("Apache", "Zeus", "OLTP", "Qry1", "Qry2", "Qry17"):
        assert result.median_length(workload, MULTI_CHIP) >= 2

    # Web median stream length in the multi-chip context is in the several-
    # to-tens range, exceeding small fixed prefetch depths.
    assert result.median_length("Apache", MULTI_CHIP) >= 4

    # DSS streams (page-sized copies / scans) are much longer than Web ones.
    assert (result.median_length("Qry1", SINGLE_CHIP)
            >= 2 * result.median_length("Apache", SINGLE_CHIP))

    # Length distributions are genuine CDFs (monotone, ending at 1).
    for workload, contexts in result.lengths.items():
        for dist in contexts.values():
            if dist.lengths:
                assert dist.cumulative[-1] > 0.999
                assert dist.cumulative == sorted(dist.cumulative)
