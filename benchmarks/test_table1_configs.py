"""Benchmark T1: regenerate Table 1 (application parameters)."""

from repro.experiments import render_table1, table1


def test_table1_application_parameters(run_once):
    configs = run_once(table1)
    assert len(configs) == 6
    print()
    print(render_table1())
    by_name = {cfg.name: cfg for cfg in configs}
    assert "100 warehouses" in by_name["OLTP"].paper_parameters
    assert "16K connections" in by_name["Apache"].paper_parameters
    assert by_name["Qry1"].app_class == "DSS"
