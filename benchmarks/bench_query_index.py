"""Indexed-query vs full-unpickle benchmark for the run index.

Builds a synthetic cache with ``--cells`` pickled result artifacts plus a
telemetry run holding one worker-origin simulate span per cell, then
answers the same question — "which cells ran for workload W, and what was
the mean wall time per organisation?" — two ways:

* **indexed**: ``RunIndex.query("cells", ...)`` against the sqlite run
  index (ingest cost reported separately; it is paid once and amortised
  across every later query), and
* **unpickle**: the pre-index approach — walk every artifact in the
  result store, ``pickle.load`` it, and filter/aggregate in Python.

Emits ``BENCH_query_index.json`` and exits non-zero when the indexed
query is not faster, so CI tracks the speedup as data, not anecdotes.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_index.py \
        [--cells 120] [--repeats 5] [--out BENCH_query_index.json]

The script is standalone on purpose (not pytest-collected): CI runs it
after the test suite and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.experiments.store import ResultStore
from repro.obs.index import SCHEMA_VERSION, RunIndex
from repro.obs.store import TelemetryStore

WORKLOADS = ("Apache", "OLTP", "DSS", "Zeus")
ORGANISATIONS = ("single-chip", "multi-chip")

#: Per-artifact ballast so each unpickle moves a realistic payload
#: (a bundle of per-class miss counters, not a toy scalar).
PAYLOAD_FLOATS = 6000


def _timed(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_cache(root: Path, n_cells: int) -> None:
    store = ResultStore(root)
    telemetry = TelemetryStore(root)
    run_id = telemetry.create_run(
        {"spec": "bench-query-index", "executor": "process",
         "n_stages": n_cells})
    for i in range(n_cells):
        workload = WORKLOADS[i % len(WORKLOADS)]
        organisation = ORGANISATIONS[(i // len(WORKLOADS)) % 2]
        params = {"workload": workload, "organisation": organisation,
                  "scale": 64, "warmup": 0.25, "cell": i}
        wall = 0.1 + (i % 17) * 0.05
        store.save("simulate", params, {
            "workload": workload, "organisation": organisation,
            "cell": i, "wall_s": wall,
            "misses": [float(j % 97) for j in range(PAYLOAD_FLOATS)],
        })
        telemetry.append_span(run_id, {
            "stage": f"simulate:{workload}/{organisation}#{i}",
            "kind": "simulate", "origin": "worker", "status": "ran",
            "wall_s": wall, "cpu_s": wall * 0.9, "rss_peak_kib": 4096,
            "params": params,
        })
    telemetry.update_manifest(run_id, ok=True, wall_s=1.0)


def _query_indexed(index: RunIndex, workload: str):
    return index.query(
        "cells", where=[("workload", "=", workload)],
        group_by=["organisation"],
        aggregates=["count", "mean:wall_s"], order_by="organisation")


def _query_unpickle(store: ResultStore, workload: str):
    groups: dict = {}
    for path in store.entries():
        with open(path, "rb") as fh:
            bundle = pickle.load(fh)
        if bundle.get("workload") != workload:
            continue
        groups.setdefault(bundle["organisation"], []).append(
            bundle["wall_s"])
    return sorted((org, len(walls), sum(walls) / len(walls))
                  for org, walls in groups.items())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=120,
                        help="synthetic result artifacts to index "
                             "(default: 120)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats (default: 5)")
    parser.add_argument("--out", default="BENCH_query_index.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-index-") as root:
        base = Path(root)
        _build_cache(base, args.cells)
        store = ResultStore(base)
        index = RunIndex(base)

        start = time.perf_counter()
        counts = index.ingest()
        ingest_s = time.perf_counter() - start

        workload = WORKLOADS[0]
        labels, indexed_rows = _query_indexed(index, workload)
        unpickled_rows = _query_unpickle(store, workload)
        agree = (
            [(row[0], row[1], round(row[2], 6)) for row in indexed_rows]
            == [(org, n, round(mean, 6))
                for org, n, mean in unpickled_rows])

        query_s = _timed(lambda: _query_indexed(index, workload),
                         args.repeats)
        unpickle_s = _timed(lambda: _query_unpickle(store, workload),
                            args.repeats)

    speedup = unpickle_s / max(query_s, 1e-9)
    ok = agree and query_s < unpickle_s
    payload = {
        "benchmark": "query_index",
        "repro_version": __version__,
        "index_schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "params": {"cells": args.cells, "repeats": args.repeats,
                   "payload_floats": PAYLOAD_FLOATS},
        "ingested": counts,
        "results": {
            "ingest_s": round(ingest_s, 4),
            "query_s": round(query_s, 6),
            "unpickle_s": round(unpickle_s, 6),
            "speedup": round(speedup, 2),
            "answers_agree": agree,
            "ok": ok,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{args.cells} cells: ingest {ingest_s:.3f}s once, then query "
          f"{query_s * 1e3:.2f}ms indexed vs {unpickle_s * 1e3:.2f}ms "
          f"unpickled ({speedup:.1f}x); answers "
          f"{'agree' if agree else 'DISAGREE'}")
    print(f"wrote {out}")
    if not ok:
        print("indexed query did not beat the full unpickle",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
