"""Benchmark T2: regenerate Table 2 (miss-category taxonomy)."""

from repro.experiments import render_table2, table2


def test_table2_miss_categories(run_once):
    categories = run_once(table2)
    print()
    print(render_table2())
    names = {c.name for c in categories}
    assert {"Bulk memory copies", "Kernel task scheduler",
            "Kernel STREAMS subsystem", "DB2 SQL runtime interpreter"} <= names
    scopes = {c.scope for c in categories}
    assert scopes == {"cross", "web", "db2", "other"}
