"""Repo-level pytest configuration shared by tests/ and benchmarks/."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    """Point the on-disk result store at a session-scoped temp directory.

    Keeps test and benchmark runs from reading results persisted by earlier
    runs (or by the user's own experiments) in ``~/.cache/repro`` while
    still exercising the disk-cache code paths.
    """
    from repro.experiments.store import CACHE_DIR_ENV
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
