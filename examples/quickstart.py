#!/usr/bin/env python3
"""Quickstart: find temporal streams in one workload's miss trace.

This walks the full pipeline on a small OLTP run:

1. *stream* a synthetic TPC-C-style access trace on 16 CPUs directly into
2. the multi-chip (16-node, MSI) system model — chunk-wise, so the full
   access trace is never materialised — to obtain the off-chip read-miss
   trace,
3. run the SEQUITUR-based temporal-stream analysis,
4. print the Figure 1 / Figure 2 / Figure 4 style summaries for that trace.

(The same pipeline is available pre-packaged as
``python -m repro run OLTP multi-chip --size small``.)

Run with:  python examples/quickstart.py
"""

from repro.core import (analyze_trace, classify_offchip, length_distribution,
                        module_breakdown, reuse_distance_distribution)
from repro.core.report import (format_offchip_classification,
                               format_stream_fractions, format_length_cdf)
from repro.mem import MultiChipSystem, multichip_config
from repro.workloads import stream_accesses


def main() -> None:
    print("Streaming OLTP accesses (16 CPUs, small preset) through the "
          "multi-chip memory system (MSI, 16 nodes)...")
    system = MultiChipSystem(multichip_config())
    miss_trace = system.run_stream(
        stream_accesses("OLTP", n_cpus=16, size="small", seed=42))
    print(f"  {len(miss_trace):,} off-chip read misses "
          f"({miss_trace.misses_per_kilo_instruction():.2f} per 1000 instr)")

    print("\n--- Miss classification (Figure 1 style) ---")
    print(format_offchip_classification("OLTP / multi-chip",
                                        classify_offchip(miss_trace)))

    print("\n--- Temporal streams (Figure 2 style) ---")
    analysis = analyze_trace(miss_trace)
    print(format_stream_fractions({"OLTP / multi-chip": analysis}))
    print(f"\nDistinct temporal streams found: {analysis.n_distinct_streams():,}")

    print("\n--- Stream length distribution (Figure 4 left style) ---")
    print(format_length_cdf("OLTP / multi-chip",
                            length_distribution(analysis.occurrences)))

    print("\n--- Stream reuse distance (Figure 4 right style) ---")
    reuse = reuse_distance_distribution(analysis, miss_trace)
    for edge, fraction in reuse.bins():
        print(f"  distance >= {edge:>9,}: {fraction:6.2%} of misses")

    print("\n--- Top code-module origins (Table 4 style) ---")
    breakdown = module_breakdown(miss_trace, analysis)
    for row in breakdown.top_categories(8):
        print(f"  {row.category:<42s} {row.pct_misses:6.1%} of misses, "
              f"{row.pct_in_streams:6.1%} in streams")
    print(f"  {'Overall in streams':<42s} {breakdown.overall_in_streams:6.1%}")


if __name__ == "__main__":
    main()
