#!/usr/bin/env python3
"""Example one from the paper (Section 2.1): B+-tree range scans.

Overlapping range scans follow the same sibling-leaf pointers, so the leaf
misses of a later scan repeat the miss sequence of an earlier one — a
temporal stream that a stride prefetcher cannot capture because the leaves
are scattered in memory.  This example builds a B+-tree, issues overlapping
range scans from different processors, runs them through the multi-chip
system model, and shows (a) that the leaf misses are repetitive and
(b) that they are not stride-predictable.

Run with:  python examples/btree_range_scans.py
"""

from repro.core import analyze_trace, stride_stream_breakdown
from repro.mem import Access, AccessKind, MultiChipSystem, multichip_config
from repro.workloads import BPlusTree, TraceBuilder
from repro.workloads.base import Job, WorkloadDriver


def main() -> None:
    builder = TraceBuilder(n_cpus=4, seed=7)
    tree = BPlusTree(builder, "orders", n_keys=20_000, keys_per_leaf=32)
    print(f"B+-tree: {tree.n_leaves} leaves, height {tree.height}, "
          f"leaves scattered (non-contiguous) in memory")

    # Issue overlapping range scans; the driver spreads them over 4 CPUs, as
    # different database agents would execute them in a real system.
    scans = []
    for i in range(24):
        start = 4_000 + (i % 6) * 500          # six overlapping windows
        scans.append(Job(name=f"scan[{i}]",
                         factory=lambda s=start: tree.range_scan(s, 3_000),
                         thread=i))
    WorkloadDriver(builder, quantum=64).run(scans)
    print(f"Generated {len(builder.trace):,} index accesses")

    system = MultiChipSystem(multichip_config())
    miss_trace = system.run(builder.trace)
    print(f"Off-chip read misses: {len(miss_trace):,}")

    analysis = analyze_trace(miss_trace)
    print(f"\nFraction of misses in temporal streams: "
          f"{analysis.fraction_in_streams:.1%}")
    print(f"  (new {analysis.fraction_new:.1%}, "
          f"recurring {analysis.fraction_recurring:.1%})")

    breakdown = stride_stream_breakdown(miss_trace, analysis)
    print(f"Stride-predictable misses: {breakdown.fraction_strided:.1%}")
    print(f"Repetitive but NOT strided: "
          f"{breakdown.repetitive_non_strided:.1%}  <- the temporal-stream "
          "opportunity stride prefetchers miss")

    lengths = sorted(occ.length for occ in analysis.occurrences)
    if lengths:
        print(f"\nStream occurrences: {len(lengths)}, "
              f"longest {lengths[-1]} misses "
              f"(leaf chains along the scanned key range)")


if __name__ == "__main__":
    main()
