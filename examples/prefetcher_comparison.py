#!/usr/bin/env python3
"""Replay miss traces against temporal-streaming and stride prefetchers.

The characterization predicts which prefetcher family helps which workload:
temporal streaming covers the repetitive, pointer-chasing misses of Web and
OLTP, while the strided, single-pass misses of DSS are already served by a
stride prefetcher.  This example quantifies that with the idealised
prefetcher models in :mod:`repro.prefetch`.

Run with:  python examples/prefetcher_comparison.py
"""

from repro.api import Session
from repro.mem.trace import MULTI_CHIP
from repro.prefetch import (StridePrefetcher, TemporalPrefetcher,
                            evaluate_coverage)


def main() -> None:
    session = Session()
    print(f"{'workload':>10s} {'temporal cov':>14s} {'stride cov':>12s} "
          f"{'winner':>10s}")
    for workload in ("Apache", "Zeus", "OLTP", "Qry1", "Qry17"):
        result = session.run(workload, MULTI_CHIP, size="small")
        trace = result.miss_trace
        temporal = evaluate_coverage(TemporalPrefetcher(depth=8), trace)
        stride = evaluate_coverage(StridePrefetcher(degree=4), trace)
        winner = "temporal" if temporal.coverage > stride.coverage else "stride"
        print(f"{workload:>10s} {temporal.coverage:14.1%} "
              f"{stride.coverage:12.1%} {winner:>10s}")

    print("\nDepth sensitivity on OLTP (why fixed depths are a compromise, "
          "Section 4.4):")
    result = session.run("OLTP", MULTI_CHIP, size="small")
    for depth in (1, 2, 4, 8, 16, 32):
        coverage = evaluate_coverage(TemporalPrefetcher(depth=depth),
                                     result.miss_trace)
        print(f"  depth {depth:>3d}: coverage {coverage.coverage:6.1%}, "
              f"accuracy {coverage.accuracy:6.1%}")


if __name__ == "__main__":
    main()
