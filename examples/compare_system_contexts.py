#!/usr/bin/env python3
"""Compare temporal-stream behaviour across system organisations.

The paper's central architectural observation is that the *same* workload
looks completely different to a prefetcher depending on where the cores are:
in a multi-chip system most off-chip misses are coherence misses with short
stream reuse distances, while a single-chip CMP absorbs that communication
on chip and its off-chip misses are capacity/I/O-driven with far longer
reuse distances.  This example runs one web and one DSS workload through
both organisations and prints the side-by-side comparison.

Run with:  python examples/compare_system_contexts.py [small|default]
"""

import sys

from repro.api import Session
from repro.mem import MissClass
from repro.mem.trace import INTRA_CHIP, MULTI_CHIP, SINGLE_CHIP


def describe(result) -> str:
    classification = result.classification
    if result.context == INTRA_CHIP:
        class_summary = "intra-chip"
    else:
        coherence = classification.fraction(MissClass.COHERENCE)
        io = classification.fraction(MissClass.IO_COHERENCE)
        compulsory = classification.fraction(MissClass.COMPULSORY)
        class_summary = (f"coh {coherence:4.0%} io {io:4.0%} "
                         f"comp {compulsory:4.0%}")
    reuse = result.reuse.dominant_bin()
    return (f"misses {result.n_misses:7,}  "
            f"in-streams {result.stream_analysis.fraction_in_streams:6.1%}  "
            f"median-len {result.lengths.median:4d}  "
            f"reuse-bin >= {reuse if reuse is not None else '-':>8}  "
            f"[{class_summary}]")


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    session = Session()
    for workload in ("Apache", "Qry1"):
        print(f"\n=== {workload} (size={size}) ===")
        results = session.run_all(workload, size=size)
        for context in (MULTI_CHIP, SINGLE_CHIP, INTRA_CHIP):
            print(f"  {context:<12s} {describe(results[context])}")

        multi = results[MULTI_CHIP]
        single = results[SINGLE_CHIP]
        print("  -> storage implication: the single-chip context needs "
              f"{'MORE' if (single.reuse.dominant_bin() or 0) >= (multi.reuse.dominant_bin() or 0) else 'LESS'} "
              "history to capture the same streams (longer reuse distances).")


if __name__ == "__main__":
    main()
