"""CLI smoke tests: ``python -m repro`` subcommands end to end.

The subcommands run in subprocesses (the real user entry point) with the
disk cache pointed at a per-test temp directory.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def run_cli(args, cache_dir, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                         capture_output=True, text=True, env=env,
                         cwd=REPO_ROOT, timeout=600)
    if check and proc.returncode != 0:
        raise AssertionError(
            f"CLI failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}")
    return proc


def test_help_lists_subcommands(tmp_path):
    proc = run_cli(["--help"], tmp_path)
    for sub in ("run", "suite", "report", "trace", "checkpoint",
                "worker", "serve", "submit", "queue", "query", "stats",
                "clear-cache"):
        assert sub in proc.stdout


def test_run_prints_bundle_summary(tmp_path):
    proc = run_cli(["run", "Apache", "multi-chip", "--size", "tiny"],
                   tmp_path)
    assert "Apache / multi-chip" in proc.stdout
    assert "misses:" in proc.stdout
    assert "in temporal streams:" in proc.stdout
    # The run persisted its bundle.
    assert list(Path(tmp_path).glob("v*/context/*.pkl"))


def test_run_rejects_unknown_workload(tmp_path):
    proc = run_cli(["run", "NotAWorkload", "multi-chip", "--size", "tiny"],
                   tmp_path, check=False)
    assert proc.returncode != 0


def test_suite_then_cached_rerun(tmp_path):
    args = ["suite", "--size", "tiny", "--workloads", "Apache", "OLTP",
            "--jobs", "2"]
    first = run_cli(args, tmp_path)
    assert "Apache" in first.stdout and "OLTP" in first.stdout
    entries = list(Path(tmp_path).glob("v*/context/*.pkl"))
    assert len(entries) == 6  # 2 workloads x 3 contexts
    mtimes = {p: p.stat().st_mtime_ns for p in entries}

    second = run_cli(args, tmp_path)
    assert "Apache" in second.stdout
    # Cache-served: no entry rewritten, none added.
    entries_after = list(Path(tmp_path).glob("v*/context/*.pkl"))
    assert len(entries_after) == 6
    assert {p: p.stat().st_mtime_ns for p in entries_after} == mtimes


def test_report_renders_tables(tmp_path):
    proc = run_cli(["report", "--artifact", "table2"], tmp_path)
    assert "table2" in proc.stdout


def test_report_figure_uses_cache(tmp_path):
    run_cli(["suite", "--size", "tiny", "--workloads", "Apache",
             "--jobs", "1"], tmp_path)
    proc = run_cli(["report", "--artifact", "figure2", "--size", "tiny",
                    "--workloads", "Apache"], tmp_path)
    assert "figure2" in proc.stdout
    assert "Apache" in proc.stdout


def test_clear_cache_removes_entries(tmp_path):
    run_cli(["run", "Zeus", "multi-chip", "--size", "tiny"], tmp_path)
    assert list(Path(tmp_path).glob("v*/context/*.pkl"))
    assert list(Path(tmp_path).glob("traces/v*/*/meta.json"))
    assert list(Path(tmp_path).glob("checkpoints/v*/*/epoch-*.chain.json"))
    proc = run_cli(["clear-cache"], tmp_path)
    assert "removed" in proc.stdout
    assert not list(Path(tmp_path).glob("v*/context/*.pkl"))
    # clear-cache covers captured traces and checkpoints too.
    assert not list(Path(tmp_path).glob("traces/v*/*/meta.json"))
    assert not list(Path(tmp_path).glob("checkpoints/v*/*/epoch-*.chain.json"))


def test_trace_capture_list_info(tmp_path):
    proc = run_cli(["trace", "capture", "Apache", "--size", "tiny",
                    "--cpus", "4", "--seed", "3"], tmp_path)
    assert "captured" in proc.stdout
    assert list(Path(tmp_path).glob("traces/v*/*/meta.json"))

    again = run_cli(["trace", "capture", "Apache", "--size", "tiny",
                     "--cpus", "4", "--seed", "3"], tmp_path)
    assert "already captured" in again.stdout

    listing = run_cli(["trace", "list"], tmp_path)
    assert "workload=Apache" in listing.stdout
    assert "1 trace" in listing.stdout

    info = run_cli(["trace", "info", "Apache", "--size", "tiny",
                    "--cpus", "4", "--seed", "3", "--jobs", "2"], tmp_path)
    assert "epoch" in info.stdout
    assert "merged" in info.stdout


def test_trace_capture_force_replaces_existing(tmp_path):
    args = ["trace", "capture", "Zeus", "--size", "tiny", "--cpus", "4"]
    run_cli(args, tmp_path)
    meta = next(Path(tmp_path).glob("traces/v*/*/meta.json"))
    before = meta.stat().st_mtime_ns
    forced = run_cli([*args, "--force"], tmp_path)
    assert "captured" in forced.stdout and "already" not in forced.stdout
    metas = list(Path(tmp_path).glob("traces/v*/*/meta.json"))
    assert len(metas) == 1
    assert metas[0].stat().st_mtime_ns != before  # actually re-captured


def test_trace_list_tolerates_foreign_versions(tmp_path):
    run_cli(["trace", "capture", "Qry2", "--size", "tiny", "--cpus", "4"],
            tmp_path)
    # Simulate a trace left behind by another format/package version.
    stale = Path(tmp_path) / "traces" / "v0-0.0.1" / "old-trace"
    stale.mkdir(parents=True)
    (stale / "meta.json").write_text("{}")
    proc = run_cli(["trace", "list"], tmp_path)
    assert "workload=Qry2" in proc.stdout
    assert "unreadable" in proc.stdout


def test_trace_info_missing_trace_fails(tmp_path):
    proc = run_cli(["trace", "info", "OLTP", "--size", "tiny"], tmp_path,
                   check=False)
    assert proc.returncode == 1
    assert "no stored trace" in proc.stderr


def test_run_replay_produces_identical_results(tmp_path):
    base = ["run", "Qry1", "multi-chip", "--size", "tiny"]
    replayed = run_cli(base, tmp_path)  # capture on first run
    # The access trace was captured alongside the result bundle.
    assert list(Path(tmp_path).glob("traces/v*/*/meta.json"))
    fresh = run_cli([*base, "--no-replay", "--no-disk-cache"], tmp_path)

    def misses(stdout):
        return [l for l in stdout.splitlines() if "misses:" in l]

    assert misses(replayed.stdout) == misses(fresh.stdout)


def test_suite_replay_flag_roundtrip(tmp_path):
    run_cli(["suite", "--size", "tiny", "--workloads", "Apache",
             "--jobs", "1", "--no-replay"], tmp_path)
    assert not list(Path(tmp_path).glob("traces/v*/*/meta.json"))


def test_no_disk_cache_flag(tmp_path):
    run_cli(["run", "Qry2", "multi-chip", "--size", "tiny",
             "--no-disk-cache"], tmp_path)
    assert not list(Path(tmp_path).glob("v*/context/*.pkl"))


def test_run_writes_checkpoints_and_checkpoint_list_info(tmp_path):
    run_cli(["run", "Apache", "multi-chip", "--size", "tiny"], tmp_path)
    files = list(Path(tmp_path).glob("checkpoints/v*/*/epoch-*.chain.json"))
    assert files  # epoch-boundary snapshots written during the run

    listing = run_cli(["checkpoint", "list"], tmp_path)
    assert "checkpoint store" in listing.stdout
    assert "workload=Apache" in listing.stdout

    info = run_cli(["checkpoint", "info", "Apache",
                    "--organisation", "multi-chip", "--size", "tiny"],
                   tmp_path)
    assert "epoch" in info.stdout
    assert "resume point" in info.stdout


def test_run_no_checkpoint_flag(tmp_path):
    run_cli(["run", "Apache", "multi-chip", "--size", "tiny",
             "--no-checkpoint"], tmp_path)
    assert not list(Path(tmp_path).glob("checkpoints/v*/*/epoch-*.chain.json"))


def test_checkpoint_info_missing_run_fails(tmp_path):
    proc = run_cli(["checkpoint", "info", "OLTP", "--size", "tiny"],
                   tmp_path, check=False)
    assert proc.returncode == 1
    assert "no checkpoints" in proc.stderr


def test_run_resume_is_bit_identical(tmp_path):
    base = ["run", "Qry1", "multi-chip", "--size", "tiny"]
    first = run_cli(base, tmp_path)
    # Drop the result bundles but keep the trace and its checkpoints: the
    # rerun restores the final checkpoint instead of resimulating.
    for entry in Path(tmp_path).glob("v*/context/*.pkl"):
        entry.unlink()
    resumed = run_cli(base, tmp_path)

    def misses(stdout):
        return [line for line in stdout.splitlines() if "misses" in line]

    assert misses(first.stdout) == misses(resumed.stdout)


# --------------------------------------------------------------------------- #
# Declarative specs (--spec and the `spec` subcommand)
# --------------------------------------------------------------------------- #
SPEC_TOML = """\
name = "cli-spec"
size = "tiny"
workloads = ["Apache"]
organisations = ["multi-chip", "single-chip"]
analyses = ["figure2"]
"""


def _write_spec(tmp_path, text=SPEC_TOML):
    pytest.importorskip("tomllib")  # TOML specs need Python 3.11+
    path = Path(tmp_path) / "spec.toml"
    path.write_text(text)
    return str(path)


def test_spec_validate_ok(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["spec", "validate", spec], tmp_path)
    assert "OK:" in proc.stdout
    assert "cli-spec" in proc.stdout


def test_spec_validate_reports_every_error(tmp_path):
    spec = _write_spec(tmp_path, SPEC_TOML.replace("Apache", "NotAWorkload")
                       .replace("figure2", "figure9"))
    proc = run_cli(["spec", "validate", spec], tmp_path, check=False)
    assert proc.returncode == 2
    assert "NotAWorkload" in proc.stderr
    assert "figure9" in proc.stderr


def test_spec_plan_prints_stage_dag(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["spec", "plan", spec], tmp_path)
    for fragment in ("capture:Apache@16cpu", "simulate:Apache/multi-chip",
                     "analyze:Apache/intra-chip", "render:figure2"):
        assert fragment in proc.stdout
    # Planning must not execute anything.
    assert not list(Path(tmp_path).glob("v*/context/*.pkl"))


def test_suite_with_spec_runs_grid(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["suite", "--spec", spec, "--jobs", "1"], tmp_path)
    assert "Apache" in proc.stdout
    assert len(list(Path(tmp_path).glob("v*/context/*.pkl"))) == 3


def test_report_with_spec_renders_requested_analyses(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["report", "--spec", spec, "--jobs", "1"], tmp_path)
    assert "figure2" in proc.stdout
    assert "Apache / multi-chip" in proc.stdout


def test_run_with_spec_prints_every_cell(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["run", "--spec", spec, "--jobs", "1"], tmp_path)
    assert "Apache / multi-chip" in proc.stdout
    assert "Apache / intra-chip" in proc.stdout
    assert "3 cell bundles" in proc.stdout


def test_run_without_workload_or_spec_fails(tmp_path):
    proc = run_cli(["run"], tmp_path, check=False)
    assert proc.returncode == 2
    assert "--spec" in proc.stderr


def test_spec_plan_format_json_exports_dag(tmp_path):
    import json
    spec = _write_spec(tmp_path)
    proc = run_cli(["spec", "plan", spec, "--format", "json"], tmp_path)
    data = json.loads(proc.stdout)
    assert data["spec"]["name"] == "cli-spec"
    kinds = {entry["kind"] for entry in data["stages"]}
    assert {"capture", "summarize", "simulate", "analyze",
            "render"} <= kinds
    keyed = {entry["key"]: entry for entry in data["stages"]}
    assert "capture:Apache@16cpu" in keyed["simulate:Apache/multi-chip"
                                           "@scale64-warmup0.25"]["deps"]


def test_spec_plan_format_dot_exports_graph(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["spec", "plan", spec, "--format", "dot"], tmp_path)
    assert proc.stdout.startswith('digraph "cli-spec"')
    assert ('"capture:Apache@16cpu" -> "summarize:Apache@16cpu";'
            in proc.stdout)


def test_suite_with_spec_accepts_executor_and_progress(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["suite", "--spec", spec, "--jobs", "2", "--executor",
                    "process", "--progress"], tmp_path)
    assert "Apache" in proc.stdout
    # The live progress stream renders stage lifecycle events on stderr.
    assert "simulate:Apache/multi-chip" in proc.stderr
    assert len(list(Path(tmp_path).glob("v*/context/*.pkl"))) == 3


def test_executor_flag_requires_spec(tmp_path):
    proc = run_cli(["suite", "--executor", "thread", "--size", "tiny"],
                   tmp_path, check=False)
    assert proc.returncode == 2
    assert "--executor" in proc.stderr and "--spec" in proc.stderr


def test_spec_conflicts_with_run_parameter_flags(tmp_path):
    spec = _write_spec(tmp_path)
    proc = run_cli(["suite", "--spec", spec, "--size", "large"], tmp_path,
                   check=False)
    assert proc.returncode == 2
    assert "--size" in proc.stderr and "--spec" in proc.stderr
    proc = run_cli(["run", "Apache", "multi-chip", "--spec", spec], tmp_path,
                   check=False)
    assert proc.returncode == 2
    proc = run_cli(["report", "--spec", spec, "--artifact", "figure3"],
                   tmp_path, check=False)
    assert proc.returncode == 2
    assert "--artifact" in proc.stderr


# ---------------------------------------------------------------------- #
# dispatch service subcommands: worker / serve / submit / queue
# ---------------------------------------------------------------------- #
def _enqueue_noop_item(cache_dir, number=1):
    """A fast no-op work item (capture with replay disabled)."""
    import json
    run = Path(cache_dir) / "dispatch" / "run-cli"
    run.mkdir(parents=True, exist_ok=True)
    item = run / f"item-{number:04d}-capture.json"
    item.write_text(json.dumps({
        "stage": f"capture:noop{number}", "kind": "capture",
        "params": {"workload": "Apache", "n_cpus": 4, "seed": number,
                   "size": "tiny"},
        "config": {"replay": False}}))
    return item


def test_worker_executes_and_exits(tmp_path):
    item = _enqueue_noop_item(tmp_path)
    proc = run_cli(["worker", "--max-items", "1", "--poll", "0.05",
                    "--worker-id", "cli-w"], tmp_path)
    assert "worker cli-w polling" in proc.stdout
    assert "1 executed" in proc.stdout
    assert item.with_name("item-0001-capture.done.json").exists()


def test_worker_idle_exit_on_empty_queue(tmp_path):
    proc = run_cli(["worker", "--idle-exit", "0.2", "--poll", "0.05"],
                   tmp_path)
    assert "0 executed" in proc.stdout


def test_worker_rejects_bad_knobs(tmp_path):
    proc = run_cli(["worker", "--lease", "0"], tmp_path, check=False)
    assert proc.returncode == 2
    assert "--lease" in proc.stderr


def test_queue_status_and_list(tmp_path):
    _enqueue_noop_item(tmp_path)
    proc = run_cli(["queue", "status"], tmp_path)
    assert "1 work item across 1 run" in proc.stdout
    assert "1 pending" in proc.stdout
    proc = run_cli(["queue", "list"], tmp_path)
    assert "item-0001-capture.json: pending" in proc.stdout
    run_cli(["worker", "--max-items", "1", "--poll", "0.05"], tmp_path)
    proc = run_cli(["queue", "list"], tmp_path)
    assert "done (skipped on" in proc.stdout


def test_clear_cache_covers_dispatch_queue(tmp_path):
    _enqueue_noop_item(tmp_path)
    _enqueue_noop_item(tmp_path, number=2)
    proc = run_cli(["clear-cache"], tmp_path)
    assert "dispatch queue" in proc.stdout
    assert "2 work items" in proc.stdout
    assert "removed 2 cached entries" in proc.stdout
    assert "dispatch items" in proc.stdout
    assert not list((Path(tmp_path) / "dispatch").iterdir())


# ---------------------------------------------------------------------- #
# run telemetry: stats / --profile / plan cost annotations
# ---------------------------------------------------------------------- #
TELEMETRY_SPEC_TOML = """\
name = "cli-telemetry"
size = "tiny"
workloads = ["Apache"]
organisations = ["multi-chip"]
prefetchers = ["temporal"]
analyses = ["table1"]
"""


def test_stats_tables_plan_costs_and_clear(tmp_path):
    """One spec run feeds stats, plan annotations, and the clear path."""
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    run_cli(["run", "--spec", spec, "--executor", "serial"], tmp_path)
    listing = run_cli(["stats"], tmp_path)
    assert "telemetry store" in listing.stdout
    assert "cli-telemetry via serial" in listing.stdout
    last = run_cli(["stats", "--last"], tmp_path)
    for kind in ("capture", "summarize", "simulate", "analyze",
                 "prefetch", "render"):
        assert kind in last.stdout, f"stage kind {kind} missing from stats"
    assert "worker" in last.stdout and "scheduler" in last.stdout
    assert "wall s" in last.stdout and "rss MiB" in last.stdout
    # The run id printed by the listing addresses the same tables.
    run_id = listing.stdout.splitlines()[1].strip().split(":")[0]
    by_id = run_cli(["stats", run_id], tmp_path)
    assert by_id.stdout == last.stdout
    # spec plan now annotates kinds with observed mean costs.
    plan = run_cli(["spec", "plan", spec], tmp_path)
    assert "observed over" in plan.stdout
    # clear-cache removes the telemetry runs along with everything else.
    cleared = run_cli(["clear-cache"], tmp_path)
    assert "telemetry store" in cleared.stdout
    assert "telemetry)" in cleared.stdout
    empty = run_cli(["stats", "--last"], tmp_path, check=False)
    assert empty.returncode == 1
    assert "no telemetry runs" in empty.stderr


def test_profile_flag_writes_per_stage_prof_files(tmp_path):
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    run_cli(["run", "--spec", spec, "--executor", "serial", "--profile"],
            tmp_path)
    profs = list((Path(tmp_path) / "telemetry").glob("*/*.prof"))
    assert profs, "each profiled stage should drop a .prof file"
    last = run_cli(["stats", "--last"], tmp_path)
    assert "profile" in last.stdout and ".prof" in last.stdout


def test_profile_flag_requires_spec(tmp_path):
    proc = run_cli(["run", "Apache", "multi-chip", "--profile"], tmp_path,
                   check=False)
    assert proc.returncode == 2
    assert "--profile" in proc.stderr and "--spec" in proc.stderr


def test_stats_unknown_run_fails(tmp_path):
    proc = run_cli(["stats", "no-such-run"], tmp_path, check=False)
    assert proc.returncode == 1
    assert "no telemetry run" in proc.stderr


def test_stats_rejects_run_id_with_last(tmp_path):
    proc = run_cli(["stats", "some-run", "--last"], tmp_path, check=False)
    assert proc.returncode == 2


def test_submit_without_server_fails_cleanly(tmp_path):
    spec = REPO_ROOT / "examples" / "spec_tiny.toml"
    proc = run_cli(["submit", str(spec), "--url", "http://127.0.0.1:1",
                    "--timeout", "5"], tmp_path, check=False)
    assert proc.returncode == 1
    assert "error" in proc.stderr


def test_submit_missing_file_fails(tmp_path):
    proc = run_cli(["submit", str(tmp_path / "nope.toml")], tmp_path,
                   check=False)
    assert proc.returncode == 2


def test_serve_submit_roundtrip(tmp_path):
    """End to end over HTTP: serve with an embedded worker, submit a spec."""
    import json
    spec = tmp_path / "grid.toml"
    spec.write_text('name = "cli-serve"\nsize = "tiny"\n'
                    'workloads = ["Apache"]\n'
                    'organisations = ["multi-chip"]\n'
                    'analyses = ["table1"]\n')
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--local-workers", "2", "--verbose"],
        env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        banner = server.stdout.readline()
        assert "repro serve on http://" in banner
        url = banner.split(" on ", 1)[1].split()[0].rstrip("/")
        proc = run_cli(["submit", str(spec), "--url", url, "--progress"],
                       tmp_path)
        assert "==== table1" in proc.stdout
        assert "[     plan] cli-serve:" in proc.stderr
        assert "finish" not in proc.stdout  # events stream to stderr only
    finally:
        server.terminate()
        server.wait(timeout=30)


# ---------------------------------------------------------------------- #
# the run index: ``repro query`` and ``report --where``
# ---------------------------------------------------------------------- #
def test_query_filters_aggregates_and_formats(tmp_path):
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    run_cli(["run", "--spec", spec, "--executor", "serial"], tmp_path)

    table = run_cli(["query"], tmp_path)
    assert "workload" in table.stdout and "Apache" in table.stdout
    assert "(1 row)" in table.stdout

    as_json = run_cli(["query", "cells", "--agg", "count",
                       "--format", "json"], tmp_path)
    assert json.loads(as_json.stdout) == [{"count": 1}]

    as_csv = run_cli(["query", "cells", "--select", "workload,status",
                      "--format", "csv"], tmp_path)
    lines = as_csv.stdout.strip().splitlines()
    assert lines[0] == "workload,status"
    assert lines[1].startswith("Apache,")

    grouped = run_cli(["query", "cells", "--group-by", "workload",
                       "--agg", "count,mean:wall_s"], tmp_path)
    assert "mean_wall_s" in grouped.stdout

    filtered = run_cli(["query", "cells", "--where", "workload=DSS",
                        "--format", "json"], tmp_path)
    assert json.loads(filtered.stdout) == []

    stages = run_cli(["query", "stages", "--where", "kind=simulate",
                      "--agg", "count", "--format", "json"], tmp_path)
    assert json.loads(stages.stdout) == [{"count": 1}]


def test_query_rejects_bad_input(tmp_path):
    bad_col = run_cli(["query", "cells", "--where", "nope=1"], tmp_path,
                      check=False)
    assert bad_col.returncode == 2
    assert "unknown column" in bad_col.stderr
    bad_expr = run_cli(["query", "cells", "--where", "no-operator"],
                       tmp_path, check=False)
    assert bad_expr.returncode == 2
    assert "bad --where" in bad_expr.stderr


def test_report_where_answers_from_the_index(tmp_path):
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    run_cli(["run", "--spec", spec, "--executor", "serial"], tmp_path)
    report = run_cli(["report", "--where", "workload=Apache"], tmp_path)
    assert "indexed cells" in report.stdout
    assert "by workload / organisation" in report.stdout
    assert "Apache" in report.stdout
    empty = run_cli(["report", "--where", "workload=DSS"], tmp_path)
    assert "(0 rows)" in empty.stdout


def test_report_where_conflicts_with_spec(tmp_path):
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    proc = run_cli(["report", "--spec", spec, "--where", "workload=Apache"],
                   tmp_path, check=False)
    assert proc.returncode == 2
    assert "cannot be combined" in proc.stderr


def test_clear_cache_reports_run_index(tmp_path):
    spec = _write_spec(tmp_path, TELEMETRY_SPEC_TOML)
    run_cli(["run", "--spec", spec, "--executor", "serial"], tmp_path)
    run_cli(["query"], tmp_path)  # materialise the index database
    cleared = run_cli(["clear-cache"], tmp_path)
    assert "run index" in cleared.stdout
    assert "run index + telemetry)" in cleared.stdout
    assert not (Path(tmp_path) / "index" / "runs.sqlite").exists()


def test_queue_status_renders_fleet(tmp_path):
    status = run_cli(["queue", "status"], tmp_path)
    assert "0 worker records" in status.stdout
